"""``repro top``: rendering, fetching, and the refresh loop."""

import io

import pytest

from repro.errors import ReproError
from repro.observability.server import ObservabilityServer, StatusBoard
from repro.observability.top import CLEAR, fetch_status, format_top, run_top


def _run_status():
    return {
        "state": "running",
        "network": "Brunel",
        "current_step": 250,
        "n_steps_planned": 1000,
        "steps_per_sec": 123.4,
        "phases": {
            "stimulus": {"p50_us": 10.0, "p95_us": 20.0},
            "neuron": {"p50_us": 100.0, "p95_us": 250.0},
            "synapse": {"p50_us": 50.0, "p95_us": 80.0},
        },
        "populations": {
            "excitatory": {"neurons": 800, "ops_per_sec": 98720.0},
            "inhibitory": {
                "neurons": 200,
                "ops_per_sec": 24680.0,
                "p50_us": 42.0,
                "p95_us": 99.0,
            },
        },
        "updated_ts": 1.0,
    }


class TestFormatTop:
    def test_run_view_renders_every_section(self):
        frame = format_top(_run_status())
        assert "Brunel [running]" in frame
        assert "step 250 / 1,000 ( 25.0%)" in frame
        assert "123.4 steps/s" in frame
        assert "neuron" in frame and "250.0us" in frame
        assert "excitatory" in frame and "98.7k" in frame
        # Populations without kernel spans show dashes, not zeros.
        excitatory_line = next(
            line for line in frame.splitlines() if "excitatory" in line
        )
        assert "-" in excitatory_line
        inhibitory_line = next(
            line for line in frame.splitlines() if "inhibitory" in line
        )
        assert "42.0us" in inhibitory_line
        assert "updated" in frame

    def test_sweep_view_renders_jobs_and_totals(self):
        frame = format_top(
            {
                "state": "running",
                "sweep": "chaos-sweep",
                "jobs": {
                    "Brunel-reference": {
                        "state": "running",
                        "backend": "reference",
                        "attempt": 1,
                        "step": 120,
                        "retries": 1,
                    },
                },
                "sweep_totals": {
                    "total": 2,
                    "completed": 1,
                    "failed": 0,
                    "retries": 1,
                    "breaker_trips": 0,
                },
            }
        )
        assert "chaos-sweep [running]" in frame
        assert "Brunel-reference" in frame
        # attempt is displayed 1-based
        assert "       2" in frame or " 2 " in frame
        assert "jobs 1/2 done, 0 failed, 1 retries, 0 breaker trip(s)" in frame

    def test_empty_status_still_renders_header(self):
        frame = format_top({})
        assert "? [unknown]" in frame


class TestFetchStatus:
    def test_fetches_live_status(self):
        status = StatusBoard(state="running")
        with ObservabilityServer(status=status, port=0) as server:
            document = fetch_status(server.url)
        assert document["state"] == "running"

    def test_unreachable_server_raises_repro_error(self):
        with pytest.raises(ReproError):
            fetch_status("http://127.0.0.1:1", timeout=0.5)


class TestRunTop:
    def test_once_prints_single_frame_without_clear(self):
        status = StatusBoard(state="running", network="Brunel")
        with ObservabilityServer(status=status, port=0) as server:
            out = io.StringIO()
            code = run_top(server.url, iterations=1, stream=out)
        assert code == 0
        assert "Brunel [running]" in out.getvalue()
        assert CLEAR not in out.getvalue()

    def test_refresh_clears_between_frames(self):
        status = StatusBoard(state="running", network="Brunel")
        with ObservabilityServer(status=status, port=0) as server:
            out = io.StringIO()
            code = run_top(server.url, interval=0.01, iterations=3, stream=out)
        assert code == 0
        assert out.getvalue().count(CLEAR) == 2

    def test_no_clear_flag(self):
        status = StatusBoard()
        with ObservabilityServer(status=status, port=0) as server:
            out = io.StringIO()
            run_top(
                server.url, interval=0.01, iterations=2, stream=out,
                clear=False,
            )
        assert CLEAR not in out.getvalue()

    def test_server_going_away_after_first_frame_is_clean_exit(self):
        status = StatusBoard(state="running")
        server = ObservabilityServer(status=status, port=0)
        server.start()
        url = server.url
        out = io.StringIO()
        frames = {"count": 0}

        original_fetch = fetch_status

        def fetch_then_kill(target, timeout=5.0):
            document = original_fetch(target, timeout=timeout)
            frames["count"] += 1
            server.stop()  # the run finished; the plane shut down
            return document

        import repro.observability.top as top_module

        original = top_module.fetch_status
        top_module.fetch_status = fetch_then_kill
        try:
            code = run_top(url, interval=0.01, iterations=None, stream=out)
        finally:
            top_module.fetch_status = original
            server.stop()
        assert code == 0
        assert frames["count"] == 1
        assert "server went away" in out.getvalue()

    def test_unreachable_server_on_first_fetch_raises(self):
        with pytest.raises(ReproError):
            run_top("http://127.0.0.1:1", iterations=1, stream=io.StringIO())


class TestFormatTopHealthPanes:
    def test_alert_pane_renders_counts_and_active_lines(self):
        frame = format_top({
            "state": "running",
            "network": "Brunel",
            "alerts": {
                "rules": 8,
                "pending": 1,
                "firing": 2,
                "resolved": 3,
                "fired_total": 5,
                "active": [
                    "[critical] exploding-rate (exc): 99.0 Hz vs 1.2 Hz",
                ],
            },
        })
        assert "alerts: 2 firing, 1 pending, 3 resolved (8 rule(s))" in frame
        assert "  ! [critical] exploding-rate (exc): 99.0 Hz vs 1.2 Hz" in frame

    def test_sse_pane_renders_drop_accounting(self):
        frame = format_top({
            "state": "running",
            "network": "Brunel",
            "sse": {
                "subscribers": 2,
                "published_total": 41,
                "dropped_events_total": 7,
            },
        })
        assert "sse: 2 subscriber(s), 41 event(s) published, 7 dropped" in frame

    def test_panes_absent_when_blocks_missing(self):
        frame = format_top({"state": "running", "network": "Brunel"})
        assert "alerts:" not in frame
        assert "sse:" not in frame
