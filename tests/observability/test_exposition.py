"""Prometheus text exposition: golden file, line grammar, round-trip.

The serve endpoint's contract is the exposition format itself — any
scrape pipeline must be able to ingest ``GET /metrics`` verbatim. These
tests pin the format three ways: a golden file (byte-exact output for a
representative registry), a line-grammar check (the structural rules a
real Prometheus parser enforces), and a round-trip through a live
``ObservabilityServer``.
"""

import os
import re
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.observability.server import ObservabilityServer
from repro.telemetry.registry import MetricsRegistry

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_metrics.txt")

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>[^ ]+)$"
)


def _representative_registry() -> MetricsRegistry:
    """The registry the golden file was generated from."""
    from repro.health.resources import declare_process_metrics

    registry = MetricsRegistry()
    # The process self-telemetry families every serving process
    # exposes, pinned with fixed values (live values are unstable).
    rss, cpu, fds = declare_process_metrics(registry)
    rss.set(123456789.0)
    cpu.set_total(12.5)
    fds.set(32)
    registry.counter(
        "sim_steps_total",
        "Total simulated steps.",
        labels={"backend": "reference"},
    ).inc(400)
    registry.counter("sim_steps_total", labels={"backend": "flexon"}).inc(25)
    registry.gauge("run_steps_per_sec", "Instantaneous throughput.").set(1234.5)
    registry.gauge(
        "labels_need_escaping",
        "Help with a backslash \\ and\nnewline.",
        labels={"path": 'a\\b "quoted"\nline'},
    ).set(1)
    histogram = registry.histogram(
        "step_seconds", "Wall time of one step.", buckets=(0.001, 0.01, 0.1)
    )
    for value in (0.0005, 0.005, 0.005, 0.05, 2.0):
        histogram.observe(value)
    return registry


class TestGoldenFile:
    def test_output_matches_golden_byte_for_byte(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = handle.read()
        assert _representative_registry().to_prometheus() == golden


def _parse_exposition(text):
    """Minimal exposition parser: returns (help, type, samples) per family.

    Enforces, while parsing, the structural rules this test module pins:
    every line is a HELP/TYPE comment or a well-formed sample, HELP (if
    present) immediately precedes TYPE, and samples follow their TYPE.
    """
    families = {}
    current = None
    pending_help = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert _NAME_RE.fullmatch(name), line
            assert "\n" not in help_text  # escaped, by construction
            pending_help = (name, help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert _NAME_RE.fullmatch(name), line
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in families, f"duplicate TYPE for {name}"
            if pending_help is not None:
                assert pending_help[0] == name, (
                    f"HELP for {pending_help[0]} not followed by its TYPE"
                )
            families[name] = {
                "help": pending_help[1] if pending_help else None,
                "type": kind,
                "samples": [],
            }
            pending_help = None
            current = name
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparsable sample line: {line!r}"
        sample_name = match.group("name")
        assert current is not None, f"sample before any TYPE: {line!r}"
        base = sample_name
        if families[current]["type"] == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    base = sample_name[: -len(suffix)]
                    break
        assert base == current, (
            f"sample {sample_name!r} under TYPE {current!r}"
        )
        labels = {}
        if match.group("labels"):
            body = match.group("labels")[1:-1]
            # Split on commas outside quotes.
            for pair in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', body):
                labels[pair[0]] = pair[1]
        families[current]["samples"].append(
            (sample_name, labels, match.group("value"))
        )
    return families


class TestLineGrammar:
    def test_representative_registry_parses_cleanly(self):
        families = _parse_exposition(
            _representative_registry().to_prometheus()
        )
        assert set(families) == {
            "labels_need_escaping",
            "process_cpu_seconds_total",
            "process_open_fds",
            "process_resident_memory_bytes",
            "run_steps_per_sec",
            "sim_steps_total",
            "step_seconds",
        }

    def test_families_are_sorted_and_contiguous(self):
        text = _representative_registry().to_prometheus()
        type_names = [
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert type_names == sorted(type_names)

    def test_label_values_are_escaped(self):
        text = _representative_registry().to_prometheus()
        (line,) = [
            candidate for candidate in text.splitlines()
            if candidate.startswith("labels_need_escaping{")
        ]
        assert '\\\\b' in line  # backslash escaped
        assert '\\"quoted\\"' in line  # quotes escaped
        assert "\\n" in line  # newline escaped
        # The raw newline never leaks into the sample line.
        assert "\n" not in line

    def test_help_text_is_escaped(self):
        text = _representative_registry().to_prometheus()
        (line,) = [
            candidate for candidate in text.splitlines()
            if candidate.startswith("# HELP labels_need_escaping")
        ]
        assert "\\\\" in line and "\\n" in line

    def test_histogram_buckets_cumulative_and_terminated(self):
        families = _parse_exposition(
            _representative_registry().to_prometheus()
        )
        samples = families["step_seconds"]["samples"]
        buckets = [
            (labels["le"], float(value))
            for name, labels, value in samples
            if name == "step_seconds_bucket"
        ]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1][0] == "+Inf"
        (count_value,) = [
            float(value)
            for name, _, value in samples
            if name == "step_seconds_count"
        ]
        assert buckets[-1][1] == count_value, "+Inf bucket must equal _count"
        (sum_value,) = [
            float(value)
            for name, _, value in samples
            if name == "step_seconds_sum"
        ]
        assert sum_value == pytest.approx(2.0605)

    def test_empty_registry_exports_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_values_parse_as_floats(self):
        families = _parse_exposition(
            _representative_registry().to_prometheus()
        )
        for family in families.values():
            for _, _, value in family["samples"]:
                float(value.replace("+Inf", "inf"))


class TestNameValidation:
    def test_leading_digit_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("9starts_with_digit")

    def test_punctuation_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().gauge("has-dash")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().gauge("")

    def test_underscore_prefix_allowed(self):
        MetricsRegistry().gauge("_private_ok")


class TestRoundTrip:
    def test_live_metrics_endpoint_serves_current_registry_state(self):
        registry = MetricsRegistry()
        counter = registry.counter("scraped_total", "Scrapes observed.")
        server = ObservabilityServer(
            metrics_text=registry.to_prometheus, port=0
        )
        with server:
            counter.inc(3)
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5.0
            ) as response:
                first = response.read().decode("utf-8")
            counter.inc(4)
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5.0
            ) as response:
                second = response.read().decode("utf-8")
        families = _parse_exposition(first)
        assert families["scraped_total"]["samples"][0][2] == "3"
        families = _parse_exposition(second)
        # The endpoint reflects live registry state, not a start-time copy.
        assert families["scraped_total"]["samples"][0][2] == "7"
