"""The HTTP plane: spec parsing, event bus, status board, endpoints."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.observability.server import (
    EVENTS_SCHEMA,
    EventBus,
    ObservabilityServer,
    StatusBoard,
    parse_serve_spec,
)


class TestParseServeSpec:
    def test_bare_port_defaults_to_loopback(self):
        assert parse_serve_spec("8080") == ("127.0.0.1", 8080)

    def test_colon_port(self):
        assert parse_serve_spec(":9090") == ("127.0.0.1", 9090)

    def test_host_and_port(self):
        assert parse_serve_spec("0.0.0.0:7070") == ("0.0.0.0", 7070)

    def test_port_zero_allowed(self):
        assert parse_serve_spec(":0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["", "abc", "host:", "host:port", ":70000"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_serve_spec(bad)


class TestEventBus:
    def test_publish_stamps_schema_type_ts_seq(self):
        bus = EventBus()
        event = bus.publish("progress", {"step": 5})
        assert event["schema"] == EVENTS_SCHEMA == "repro-events/1"
        assert event["type"] == "progress"
        assert event["step"] == 5
        assert event["seq"] == 0
        assert bus.publish("progress")["seq"] == 1

    def test_subscriber_receives_events(self):
        bus = EventBus()
        with bus.subscribe() as subscription:
            bus.publish("a")
            bus.publish("b")
            assert subscription.get(timeout=1.0)["type"] == "a"
            assert subscription.get(timeout=1.0)["type"] == "b"
            assert subscription.get(timeout=0.01) is None

    def test_unsubscribe_on_close(self):
        bus = EventBus()
        subscription = bus.subscribe()
        assert bus.subscriber_count == 1
        subscription.close()
        assert bus.subscriber_count == 0

    def test_full_queue_drops_instead_of_blocking(self):
        bus = EventBus(queue_depth=2)
        with bus.subscribe() as subscription:
            for _ in range(5):
                bus.publish("tick")
            # The publisher never blocked; the overflow was counted.
            assert subscription.dropped == 3
            assert bus.published_total == 5

    def test_drop_total_survives_unsubscribe(self):
        bus = EventBus(queue_depth=1)
        with bus.subscribe():
            bus.publish("a")
            bus.publish("b")  # dropped: queue full
        assert bus.subscriber_count == 0
        assert bus.dropped_total == 1

    def test_stats_reports_per_subscriber_drops(self):
        bus = EventBus(queue_depth=1)
        with bus.subscribe() as slow:
            bus.publish("a")
            with bus.subscribe() as fresh:
                bus.publish("b")  # drops on slow only; fresh has room
                stats = bus.stats()
        assert stats["subscribers"] == 2
        assert stats["published_total"] == 2
        assert stats["dropped_events_total"] == 1
        assert sorted(stats["dropped_events"]) == [0, 1]
        assert slow.dropped == 1
        assert fresh.dropped == 0


class TestStatusBoard:
    def test_update_and_snapshot(self):
        status = StatusBoard(state="starting")
        status.update(current_step=10, steps_per_sec=100.0)
        snapshot = status.snapshot()
        assert snapshot["state"] == "starting"
        assert snapshot["current_step"] == 10
        assert snapshot["updated_ts"] > 0

    def test_merge_updates_one_row(self):
        status = StatusBoard()
        status.merge("jobs", job_a={"state": "running"})
        status.merge("jobs", job_b={"state": "pending"})
        assert status.snapshot()["jobs"] == {
            "job_a": {"state": "running"},
            "job_b": {"state": "pending"},
        }

    def test_merge_into_non_dict_rejected(self):
        status = StatusBoard(state="running")
        with pytest.raises(ConfigurationError):
            status.merge("state", nested=1)

    def test_snapshot_isolated_from_later_updates(self):
        status = StatusBoard()
        status.update(phases={"neuron": {"p50_us": 1.0}})
        snapshot = status.snapshot()
        status.update(phases={"neuron": {"p50_us": 9.0}})
        assert snapshot["phases"]["neuron"]["p50_us"] == 1.0


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8"), dict(
            response.headers
        )


class TestObservabilityServer:
    def test_endpoints_end_to_end(self):
        status = StatusBoard(state="running")
        bus = EventBus()
        server = ObservabilityServer(
            metrics_text=lambda: "# TYPE up gauge\nup 1\n",
            status=status,
            bus=bus,
            port=0,
        )
        with server:
            code, body, headers = _get(f"{server.url}/metrics")
            assert code == 200
            assert "up 1" in body
            assert headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )

            code, body, _ = _get(f"{server.url}/healthz")
            assert (code, body) == (200, "ok\n")
            code, body, _ = _get(f"{server.url}/readyz")
            assert code == 200

            code, body, _ = _get(f"{server.url}/status")
            snapshot = json.loads(body)
            assert snapshot["state"] == "running"
            assert snapshot["sse"]["subscribers"] == 0
            assert snapshot["sse"]["dropped_events_total"] == 0

            code, body, _ = _get(f"{server.url}/")
            assert code == 200 and "/metrics" in body

    def test_unknown_path_is_404(self):
        with ObservabilityServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/nope")
            assert caught.value.code == 404

    def test_failing_probe_is_503_with_reason(self):
        server = ObservabilityServer(
            health_check=lambda: (False, "breaker open"), port=0
        )
        with server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/healthz")
            assert caught.value.code == 503
            assert "breaker open" in caught.value.read().decode("utf-8")

    def test_raising_probe_is_unhealthy_not_fatal(self):
        def broken():
            raise RuntimeError("probe exploded")

        with ObservabilityServer(ready_check=broken, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/readyz")
            assert caught.value.code == 503

    def test_sse_stream_delivers_published_events(self):
        bus = EventBus()
        with ObservabilityServer(bus=bus, port=0) as server:
            frames = []
            done = threading.Event()

            def consume():
                request = urllib.request.urlopen(
                    f"{server.url}/events", timeout=10.0
                )
                # ": stream open" comment arrives first, then frames of
                # event:/id:/data: lines — read until a data line lands.
                for _ in range(50):
                    line = request.readline().decode("utf-8")
                    if not line:
                        break
                    if line.strip():
                        frames.append(line.strip())
                    if line.startswith("data: "):
                        break
                request.close()
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            # Publish until the consumer has its frames (it subscribes
            # asynchronously, so early events may precede it).
            for _ in range(100):
                bus.publish("progress", {"step": 1})
                if done.wait(timeout=0.05):
                    break
            assert done.is_set(), "SSE consumer never saw the event"
            text = "\n".join(frames)
            assert ": stream open" in text
            assert "event: progress" in text
            data_line = next(f for f in frames if f.startswith("data: "))
            payload = json.loads(data_line[len("data: "):])
            assert payload["schema"] == EVENTS_SCHEMA
            assert payload["step"] == 1

    def test_runs_endpoint_serves_the_ledger_document(self):
        document = {
            "schema": "repro-runs/1",
            "n_runs": 2,
            "runs": [{"run_id": "run-b"}, {"run_id": "run-a"}],
        }
        with ObservabilityServer(
            runs_source=lambda: document, port=0
        ) as server:
            code, body, _ = _get(f"{server.url}/runs")
            assert code == 200
            assert json.loads(body) == document

            code, body, _ = _get(f"{server.url}/runs?limit=1")
            truncated = json.loads(body)
            assert truncated["n_runs"] == 2
            assert [row["run_id"] for row in truncated["runs"]] == ["run-b"]

            code, body, _ = _get(f"{server.url}/")
            assert "/runs" in body

    def test_runs_endpoint_bad_limit_is_400(self):
        with ObservabilityServer(
            runs_source=lambda: {"runs": []}, port=0
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/runs?limit=soon")
            assert caught.value.code == 400

    def test_runs_endpoint_without_ledger_is_404(self):
        with ObservabilityServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/runs")
            assert caught.value.code == 404
            assert "no run ledger" in caught.value.read().decode("utf-8")

    def test_double_start_rejected(self):
        server = ObservabilityServer(port=0)
        with server:
            with pytest.raises(ConfigurationError):
                server.start()

    def test_bind_conflict_is_configuration_error(self):
        with ObservabilityServer(port=0) as server:
            with pytest.raises(ConfigurationError):
                ObservabilityServer(port=server.port).start()

    def test_stop_is_idempotent_and_frees_the_port(self):
        server = ObservabilityServer(port=0)
        server.start()
        port = server.port
        server.stop()
        server.stop()
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()


class TestEventBusConcurrency:
    def test_close_mid_publish_still_tallies_the_drop(self):
        # publish() snapshots the subscriber list under the lock but
        # offers outside it, so a subscriber can close between the
        # snapshot and its offer. The in-flight offer must still count
        # the drop on the bus total even though the subscriber is gone.
        bus = EventBus(queue_depth=1)
        subscription = bus.subscribe()
        bus.publish("fill")  # queue now full
        subscription.close()
        assert bus.subscriber_count == 0
        subscription.offer({"type": "in-flight"})  # what publish() does
        assert subscription.dropped == 1
        assert bus.dropped_total == 1
        # And the accounting is visible on the /status sse block.
        assert bus.stats()["dropped_events_total"] == 1

    def test_concurrent_publishers_never_lose_seq_or_counts(self):
        bus = EventBus(queue_depth=4)
        with bus.subscribe():
            threads = [
                threading.Thread(
                    target=lambda: [bus.publish("tick") for _ in range(50)]
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = bus.stats()
        assert stats["published_total"] == 200
        # Everything not queued was dropped — no event vanishes untallied.
        assert stats["dropped_events_total"] == 200 - 4


class TestStatusBoardConcurrency:
    def test_merge_under_concurrent_writers_keeps_every_row(self):
        status = StatusBoard(state="running")
        n_writers, n_rounds = 8, 50
        errors = []

        def writer(index):
            try:
                for round_no in range(n_rounds):
                    status.merge(
                        "jobs", **{f"job_{index}": {"step": round_no}}
                    )
                    status.snapshot()
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(n_writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        jobs = status.snapshot()["jobs"]
        assert set(jobs) == {f"job_{i}" for i in range(n_writers)}
        # Every row holds its own writer's final round — no torn rows.
        assert all(
            jobs[f"job_{i}"]["step"] == n_rounds - 1
            for i in range(n_writers)
        )


class TestAlertsEndpoint:
    def test_alerts_endpoint_serves_the_manager_document(self):
        document = {
            "schema": "repro-alerts/1",
            "rules": [],
            "counts": {"pending": 0, "firing": 1, "resolved": 0},
            "fired_total": 1,
            "alerts": [],
        }
        with ObservabilityServer(
            alerts_source=lambda: document, port=0
        ) as server:
            code, body, _ = _get(f"{server.url}/alerts")
            assert code == 200
            assert json.loads(body) == document
            code, body, _ = _get(f"{server.url}/")
            assert "/alerts" in body

    def test_alerts_endpoint_without_rules_is_404(self):
        with ObservabilityServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server.url}/alerts")
            assert caught.value.code == 404
            assert "no alert rules" in caught.value.read().decode("utf-8")
