"""Structured logging: records, context, sinks, and the merged stream."""

import pytest

from repro.observability.log import (
    LOG_SCHEMA,
    StructuredLogger,
    log_stream_document,
    merge_records,
    new_run_id,
)


class TestRunId:
    def test_format(self):
        run_id = new_run_id()
        assert run_id.startswith("run-")
        assert len(run_id) == 4 + 12
        int(run_id[4:], 16)  # the suffix is hex

    def test_unique(self):
        assert new_run_id() != new_run_id()


class TestStructuredLogger:
    def test_record_shape(self):
        records = []
        log = StructuredLogger(
            {"run_id": "run-abc", "job": "j1"}, sinks=[records.append]
        )
        log.info("worker-started", "attempt 0", attempt=0)
        (record,) = records
        assert record["level"] == "info"
        assert record["event"] == "worker-started"
        assert record["message"] == "attempt 0"
        assert record["run_id"] == "run-abc"
        assert record["job"] == "j1"
        assert record["attempt"] == 0
        assert isinstance(record["ts"], float)
        assert isinstance(record["pid"], int)

    def test_seq_is_monotone(self):
        records = []
        log = StructuredLogger(sinks=[records.append])
        for _ in range(3):
            log.info("tick")
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_level_threshold(self):
        records = []
        log = StructuredLogger(sinks=[records.append], level="warning")
        assert log.debug("quiet") is None
        assert log.info("quiet") is None
        assert log.warning("loud") is not None
        assert log.error("loud") is not None
        assert len(records) == 2

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger(level="loud")
        with pytest.raises(ValueError):
            StructuredLogger().log("loud", "event")

    def test_raising_sink_is_dropped_not_fatal(self):
        good = []

        def bad_sink(record):
            raise RuntimeError("sink broke")

        log = StructuredLogger(sinks=[bad_sink, good.append])
        log.info("first")
        log.info("second")
        # Both records reached the good sink; the bad one was removed
        # after its first failure instead of failing every log call.
        assert [r["event"] for r in good] == ["first", "second"]

    def test_child_extends_context_and_shares_sinks(self):
        records = []
        parent = StructuredLogger({"run_id": "run-abc"}, sinks=[records.append])
        parent.info("parent-event")
        child = parent.child(job="j2", attempt=1)
        child.info("child-event")
        assert records[1]["run_id"] == "run-abc"
        assert records[1]["job"] == "j2"
        assert records[1]["attempt"] == 1
        assert "job" not in records[0]
        # The child's seq continues past the parent's.
        assert records[1]["seq"] > records[0]["seq"]


class TestMergeRecords:
    def test_orders_by_ts_then_pid_then_seq(self):
        stream_a = [
            {"ts": 2.0, "pid": 10, "seq": 0, "event": "c"},
            {"ts": 1.0, "pid": 10, "seq": 1, "event": "b"},
        ]
        stream_b = [
            {"ts": 1.0, "pid": 5, "seq": 9, "event": "a"},
            {"ts": 2.0, "pid": 10, "seq": 1, "event": "d"},
        ]
        merged = merge_records(stream_a, stream_b)
        assert [r["event"] for r in merged] == ["a", "b", "c", "d"]

    def test_deterministic_for_missing_keys(self):
        merged = merge_records([{"event": "x"}], [{"ts": 1.0, "event": "y"}])
        assert [r["event"] for r in merged] == ["x", "y"]


class TestLogStreamDocument:
    def test_schema_and_counts(self):
        records = [{"ts": 1.0, "event": "a"}, {"ts": 2.0, "event": "b"}]
        document = log_stream_document(records)
        assert document["schema"] == LOG_SCHEMA == "repro-log/1"
        assert document["n_records"] == 2
        assert document["records"] == records
