"""Flight recorder: bounded ring, atomic sidecar, post-mortem reads."""

import json

import pytest

from repro.observability.recorder import FLIGHT_SCHEMA, FlightRecorder


class TestRing:
    def test_events_carry_context_and_ts(self):
        recorder = FlightRecorder(context={"run_id": "run-abc", "job": "j"})
        event = recorder.record("heartbeat", step=7)
        assert event["kind"] == "heartbeat"
        assert event["step"] == 7
        assert event["run_id"] == "run-abc"
        assert isinstance(event["ts"], float)

    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=3)
        for step in range(10):
            recorder.record("heartbeat", step=step)
        dump = recorder.dump()
        assert [e["step"] for e in dump["events"]] == [7, 8, 9]
        assert dump["recorded_total"] == 10
        assert dump["dropped"] == 7

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_observe_log_mirrors_records(self):
        recorder = FlightRecorder()
        recorder.observe_log({"level": "info", "event": "worker-started"})
        (event,) = recorder.dump()["events"]
        assert event["kind"] == "log"
        assert event["event"] == "worker-started"

    def test_dump_schema(self):
        dump = FlightRecorder(capacity=5).dump()
        assert dump["schema"] == FLIGHT_SCHEMA == "repro-flight/1"
        assert dump["capacity"] == 5
        assert dump["events"] == []


class TestSidecar:
    def test_sync_writes_atomically_readable_json(self, tmp_path):
        path = str(tmp_path / "flight.json")
        recorder = FlightRecorder(sidecar_path=path, sync_interval=0.0)
        recorder.record("chaos", action="kill", step=3)
        assert recorder.sync() is True
        dump = FlightRecorder.load_dump(path)
        assert dump is not None
        assert dump["events"][0]["action"] == "kill"

    def test_sync_is_throttled_until_forced(self, tmp_path):
        path = str(tmp_path / "flight.json")
        recorder = FlightRecorder(sidecar_path=path, sync_interval=3600.0)
        recorder.record("heartbeat", step=1)
        assert recorder.sync(force=True) is True
        recorder.record("heartbeat", step=2)
        # Within the throttle window: no write happens.
        assert recorder.sync() is False
        dump = FlightRecorder.load_dump(path)
        assert [e["step"] for e in dump["events"]] == [1]
        # Forcing bypasses the throttle.
        assert recorder.sync(force=True) is True
        dump = FlightRecorder.load_dump(path)
        assert [e["step"] for e in dump["events"]] == [1, 2]

    def test_no_sidecar_path_never_writes(self):
        recorder = FlightRecorder()
        recorder.record("heartbeat", step=1)
        assert recorder.sync(force=True) is False


class TestLoadDump:
    def test_missing_file_is_none(self, tmp_path):
        assert FlightRecorder.load_dump(str(tmp_path / "nope.json")) is None

    def test_unparsable_file_is_none(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text("{not json", encoding="utf-8")
        assert FlightRecorder.load_dump(str(path)) is None

    def test_wrong_schema_is_none(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "other/1"}), encoding="utf-8")
        assert FlightRecorder.load_dump(str(path)) is None
