"""ServeHook: the simulation loop feeding the live plane (real tiny runs)."""

from repro.network.simulator import Simulator
from repro.observability.hooks import ServeHook
from repro.observability.server import EventBus, StatusBoard
from repro.telemetry.registry import MetricsRegistry
from repro.workloads import build_workload
from repro.workloads.builders import DT


def _simulator(scale=0.02, seed=7):
    network = build_workload("Brunel", scale=scale, seed=seed)
    return network, Simulator(network, dt=DT, seed=seed + 1)


def _serve_hook(**kwargs):
    status = StatusBoard(state="starting")
    bus = EventBus()
    hook = ServeHook(
        status, bus, publish_interval=kwargs.pop("publish_interval", 0.0),
        **kwargs,
    )
    return status, bus, hook


class TestServeHookLiveRun:
    def test_status_board_tracks_a_run_end_to_end(self):
        network, simulator = _simulator()
        status, bus, hook = _serve_hook()
        simulator.run(10, record_spikes=False, hooks=[hook])
        snapshot = status.snapshot()
        assert snapshot["state"] == "finished"
        assert snapshot["network"] == "Brunel"
        assert snapshot["n_steps_planned"] == 10
        assert snapshot["n_neurons"] == network.n_neurons
        assert snapshot["current_step"] == 9
        assert snapshot["steps_per_sec"] > 0
        assert set(snapshot["phases"]) == {"stimulus", "neuron", "synapse"}
        assert snapshot["phases"]["neuron"]["p95_us"] >= (
            snapshot["phases"]["neuron"]["p50_us"]
        )
        assert "total_spikes" in snapshot
        for name, population in network.populations.items():
            entry = snapshot["populations"][name]
            assert entry["neurons"] == population.n
            assert entry["ops_per_sec"] > 0

    def test_events_bracket_the_run(self):
        _, simulator = _simulator()
        status, bus, hook = _serve_hook()
        with bus.subscribe() as subscription:
            simulator.run(5, record_spikes=False, hooks=[hook])
            events = []
            while True:
                event = subscription.get(timeout=0.1)
                if event is None:
                    break
                events.append(event)
        types = [event["type"] for event in events]
        assert types[0] == "run-start"
        assert types[-1] == "run-end"
        assert "progress" in types
        run_end = events[-1]
        assert run_end["steps"] == 5
        assert "total_spikes" in run_end

    def test_metrics_gauges_published(self):
        _, simulator = _simulator()
        metrics = MetricsRegistry()
        status, bus, hook = _serve_hook(metrics=metrics)
        simulator.run(8, record_spikes=False, hooks=[hook])
        snapshot = metrics.snapshot()
        assert snapshot["run_current_step"]["values"][0]["value"] == 7
        assert snapshot["run_steps_per_sec"]["values"][0]["value"] > 0

    def test_population_spans_are_opt_in(self):
        _, simulator = _simulator()
        status, bus, hook = _serve_hook(population_spans=False)
        assert hook.wants_population_spans is False
        simulator.run(5, record_spikes=False, hooks=[hook])
        for entry in status.snapshot()["populations"].values():
            # Without spans the view estimates ops/sec but has no
            # per-population percentiles.
            assert "p50_us" not in entry

    def test_population_spans_when_requested(self):
        _, simulator = _simulator()
        status, bus, hook = _serve_hook(population_spans=True)
        assert hook.wants_population_spans is True
        simulator.run(5, record_spikes=False, hooks=[hook])
        for entry in status.snapshot()["populations"].values():
            assert entry["p50_us"] >= 0.0
            assert entry["p95_us"] >= entry["p50_us"]

    def test_throttled_hook_publishes_at_run_end_anyway(self):
        _, simulator = _simulator()
        status, bus, hook = _serve_hook(publish_interval=3600.0)
        simulator.run(5, record_spikes=False, hooks=[hook])
        snapshot = status.snapshot()
        # No mid-run publish fired, but on_run_end forces a final one.
        assert snapshot["current_step"] == 4
        assert snapshot["state"] == "finished"

    def test_hook_is_reusable_across_runs(self):
        _, simulator = _simulator()
        status, bus, hook = _serve_hook()
        simulator.run(5, record_spikes=False, hooks=[hook])
        simulator.run(7, record_spikes=False, hooks=[hook])
        snapshot = status.snapshot()
        assert snapshot["n_steps_planned"] == 7
        # Step indices continue across runs of one simulator (5 + 7).
        assert snapshot["current_step"] == 11
