"""Bench history and regression comparison (no timing — synthetic records)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.bench import (
    BENCH_SCHEMA,
    PLASTICITY_KIND,
    append_history,
    best_prior,
    compare_record,
    engine_seed_baselines,
    load_history,
    make_plasticity_record,
    make_record,
    measure_plasticity,
    measure_workload,
)


def _record(backend="reference", scale=0.05, **workloads):
    return {
        "schema": BENCH_SCHEMA,
        "ts": 0.0,
        "backend": backend,
        "scale": scale,
        "workloads": {
            name: {"steps_per_sec": value} for name, value in workloads.items()
        },
    }


class TestHistory:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_append_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, _record(Brunel=100.0))
        append_history(path, _record(Brunel=120.0))
        history = load_history(path)
        assert len(history) == 2
        assert history[1]["workloads"]["Brunel"]["steps_per_sec"] == 120.0

    def test_bad_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            json.dumps(_record(Brunel=100.0))
            + "\n{torn line\n"
            + json.dumps({"schema": "other/1"})
            + "\n\n"
            + json.dumps(_record(Brunel=90.0))
            + "\n",
            encoding="utf-8",
        )
        history = load_history(str(path))
        assert [r["workloads"]["Brunel"]["steps_per_sec"] for r in history] == [
            100.0,
            90.0,
        ]

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps(_record(Brunel=1.0)), encoding="utf-8")
        append_history(str(path), _record(Brunel=2.0))
        assert len(load_history(str(path))) == 2


class TestBestPrior:
    def test_none_without_history_or_seed(self):
        assert best_prior([], "Brunel", "reference") is None

    def test_best_not_latest(self):
        history = [
            _record(Brunel=100.0),
            _record(Brunel=150.0),
            _record(Brunel=90.0),  # a slow host cannot ratchet down
        ]
        assert best_prior(history, "Brunel", "reference") == 150.0

    def test_backend_filtered(self):
        history = [
            _record(backend="reference", Brunel=100.0),
            _record(backend="flexon", Brunel=999.0),
        ]
        assert best_prior(history, "Brunel", "reference") == 100.0

    def test_scale_filtered(self):
        history = [
            _record(scale=0.05, Brunel=100.0),
            _record(scale=1.0, Brunel=10.0),
        ]
        assert best_prior(history, "Brunel", "reference", scale=1.0) == 10.0
        assert best_prior(history, "Brunel", "reference", scale=0.05) == 100.0

    def test_engine_seed_competes_for_reference_only(self):
        seed = {"Brunel": 200.0}
        history = [_record(Brunel=100.0)]
        assert (
            best_prior(history, "Brunel", "reference", engine_seed=seed)
            == 200.0
        )
        assert (
            best_prior(
                [_record(backend="flexon", Brunel=100.0)],
                "Brunel",
                "flexon",
                engine_seed=seed,
            )
            == 100.0
        )

    def test_malformed_entries_skipped(self):
        history = [
            {"schema": BENCH_SCHEMA, "backend": "reference",
             "workloads": {"Brunel": "not-a-dict"}},
            {"schema": BENCH_SCHEMA, "backend": "reference",
             "workloads": {"Brunel": {"steps_per_sec": "fast"}}},
        ]
        assert best_prior(history, "Brunel", "reference") is None


class TestCompareRecord:
    def test_first_record_seeds_baseline(self):
        ok, lines = compare_record(_record(Brunel=100.0), [])
        assert ok
        assert "seeds the baseline" in lines[0]

    def test_within_threshold_passes(self):
        ok, lines = compare_record(
            _record(Brunel=90.0), [_record(Brunel=100.0)], threshold=0.15
        )
        assert ok
        assert "ok" in lines[0]

    def test_regression_beyond_threshold_fails(self):
        ok, lines = compare_record(
            _record(Brunel=80.0), [_record(Brunel=100.0)], threshold=0.15
        )
        assert not ok
        assert "REGRESSION" in lines[0]

    def test_improvement_passes(self):
        ok, lines = compare_record(
            _record(Brunel=130.0), [_record(Brunel=100.0)]
        )
        assert ok
        assert "+30.0%" in lines[0]

    def test_one_regressed_workload_fails_the_whole_record(self):
        ok, lines = compare_record(
            _record(Brunel=100.0, Izhikevich=10.0),
            [_record(Brunel=100.0, Izhikevich=100.0)],
        )
        assert not ok
        assert len(lines) == 2

    def test_different_scale_history_does_not_compare(self):
        ok, lines = compare_record(
            _record(scale=1.0, Brunel=10.0), [_record(scale=0.05, Brunel=100.0)]
        )
        assert ok
        assert "seeds the baseline" in lines[0]

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_threshold_must_be_a_fraction(self, bad):
        with pytest.raises(ConfigurationError):
            compare_record(_record(Brunel=1.0), [], threshold=bad)


class TestEngineSeed:
    def test_missing_file_is_empty(self, tmp_path):
        assert engine_seed_baselines(str(tmp_path / "nope.json")) == {}

    def test_reads_reference_engine_entries(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(
            json.dumps(
                {
                    "scale": 0.05,
                    "workloads": {
                        "Brunel": {"reference-engine": 123.0},
                        "Izhikevich": {
                            "reference-engine": {"steps_per_sec": 456.0}
                        },
                        "Other": {"some-backend": 1.0},
                    },
                }
            ),
            encoding="utf-8",
        )
        assert engine_seed_baselines(str(path)) == {
            "Brunel": 123.0,
            "Izhikevich": 456.0,
        }

    def test_scale_mismatch_withholds_seed(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(
            json.dumps(
                {"scale": 0.05, "workloads": {"Brunel": {"reference-engine": 1.0}}}
            ),
            encoding="utf-8",
        )
        assert engine_seed_baselines(str(path), scale=1.0) == {}
        assert engine_seed_baselines(str(path), scale=0.05) == {
            "Brunel": 1.0
        }

    def test_repo_seed_file_parses(self):
        # The committed genesis baseline must stay readable.
        baselines = engine_seed_baselines("BENCH_engine.json", scale=0.05)
        assert "Brunel" in baselines
        assert all(v > 0 for v in baselines.values())


class TestMeasurement:
    def test_measure_workload_tiny_run(self):
        entry = measure_workload(
            "Brunel", steps=5, scale=0.02, reps=1
        )
        assert entry["steps_per_sec"] > 0
        assert entry["neurons"] > 0
        assert len(entry["reps"]) == 1

    def test_make_record_shape(self):
        progress_lines = []
        record = make_record(
            ["Brunel"], steps=5, scale=0.02, reps=1,
            progress=progress_lines.append,
        )
        assert record["schema"] == BENCH_SCHEMA
        assert record["scale"] == 0.02
        assert "Brunel" in record["workloads"]
        assert len(progress_lines) == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_workload("Brunel", steps=0)
        with pytest.raises(ConfigurationError):
            measure_workload("Brunel", reps=0)


class TestPlasticityBench:
    def test_lazy_and_dense_digests_pin_each_other(self):
        entry = measure_plasticity("Vogels et al.", steps=300, scale=0.04)
        assert entry["digest_match"]
        assert entry["modes"]["lazy"]["digest"] == (
            entry["modes"]["eager"]["digest"]
        )
        lazy = entry["modes"]["lazy"]
        assert lazy["deferred_updates"] > 0
        assert lazy["total_spikes"] > 0
        # Cost scales with spike traffic: the lazy schedule evaluates
        # strictly fewer traces than the dense one refreshes.
        assert lazy["trace_refreshes"] < (
            entry["modes"]["eager"]["trace_refreshes"]
        )
        assert entry["modes"]["off"]["steps_per_sec"] > 0

    def test_plasticity_record_rides_history_without_polluting_it(
        self, tmp_path
    ):
        record = make_plasticity_record(
            ["Vogels et al."], steps=150, scale=0.03, progress=lambda _: None
        )
        assert record["kind"] == PLASTICITY_KIND
        assert record["workloads"] == {}
        path = str(tmp_path / "hist.jsonl")
        append_history(path, record)
        history = load_history(path)
        assert len(history) == 1
        # A plasticity record must never become a throughput baseline.
        assert best_prior(history, "Vogels et al.", "reference") is None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_plasticity("Brunel", steps=0)
        with pytest.raises(ConfigurationError):
            measure_plasticity("Brunel", reps=0)
