"""Tests for the per-population spike router."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network import Network
from repro.routing import SpikeRouter
from repro.telemetry import MetricsRegistry


def _network():
    net = Network("routed")
    net.add_population("a", 6, "LIF")
    net.add_population("b", 4, "LIF")
    net.add_population("isolated", 3, "LIF")
    rng = np.random.default_rng(0)
    net.connect("a", "b", probability=1.0, delay_steps=3, delay_jitter=4,
                rng=rng)
    net.connect("b", "b", probability=1.0, delay_steps=2, rng=rng)
    net.connect("b", "a", probability=1.0, delay_steps=5, rng=rng)
    return net


class TestSizing:
    def test_rings_sized_from_incoming_delays(self):
        router = SpikeRouter.from_network(_network())
        # a receives only the delay-5 projection from b.
        assert router.ring("a").depth == 6
        assert router.ring("a").min_delay == 5
        # b receives delays 3..7 (jittered) from a and fixed 2 from b.
        assert router.ring("b").depth >= 4
        assert router.ring("b").min_delay == 2

    def test_population_without_incoming_gets_minimal_ring(self):
        router = SpikeRouter.from_network(_network())
        ring = router.ring("isolated")
        assert ring.depth == 2
        assert ring.min_delay == 1

    def test_unknown_population_raises_with_known_names(self):
        router = SpikeRouter.from_network(_network())
        with pytest.raises(SimulationError, match="isolated"):
            router.ring("nope")


class TestStepping:
    def test_rotate_all_advances_every_ring(self):
        router = SpikeRouter.from_network(_network())
        router.ring("a").enqueue(
            np.array([0]), np.array([1.0]), np.array([5]), 0
        )
        router.ring("b").enqueue(
            np.array([1]), np.array([2.0]), np.array([2]), 0
        )
        assert router.pending_total() == 2
        assert router.enqueued_total() == 2
        for _ in range(5):
            router.rotate_all()
        # The delay-5 event now sits in the current bucket, consumed
        # this step; the next rotation clears it.
        assert router.ring("a").current_events() == 1
        router.rotate_all()
        assert router.pending_total() == 0
        assert router.enqueued_total() == 2


class TestSnapshotRestore:
    def test_round_trip(self):
        router = SpikeRouter.from_network(_network())
        router.ring("b").enqueue(
            np.array([0, 3]), np.array([0.5, 0.25]), np.array([2, 3]), 0
        )
        payload = router.snapshot()
        other = SpikeRouter.from_network(_network())
        other.restore(payload)
        assert other.pending_total() == router.pending_total()
        np.testing.assert_array_equal(
            other.ring("b").flush_window(other.ring("b").depth),
            router.ring("b").flush_window(router.ring("b").depth),
        )

    def test_restore_rejects_population_mismatch(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        del payload["isolated"]
        with pytest.raises(SimulationError, match="isolated"):
            router.restore(payload)

    def test_restore_rejects_unexpected_population(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        payload["ghost"] = payload["a"]
        with pytest.raises(SimulationError, match="ghost"):
            router.restore(payload)

    def test_restore_names_population_on_non_dict_payload(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        payload["b"] = [1, 2, 3]
        with pytest.raises(SimulationError, match="'b'.*must be a dict"):
            router.restore(payload)

    def test_restore_names_population_on_missing_field(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        del payload["a"]["head"]
        with pytest.raises(SimulationError, match="'a'.*'head'"):
            router.restore(payload)

    def test_restore_names_population_on_depth_mismatch(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        ring = payload["b"]["ring"]
        payload["b"]["ring"] = np.zeros((ring.shape[0] + 2,) + ring.shape[1:])
        with pytest.raises(SimulationError, match="'b'.*depth mismatch"):
            router.restore(payload)

    def test_restore_names_population_on_size_mismatch(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        ring = payload["a"]["ring"]
        payload["a"]["ring"] = np.zeros(ring.shape[:2] + (ring.shape[2] + 1,))
        with pytest.raises(SimulationError, match="'a'.*size mismatch"):
            router.restore(payload)

    def test_restore_names_population_on_bad_head(self):
        router = SpikeRouter.from_network(_network())
        payload = router.snapshot()
        payload["b"]["head"] = router.ring("b").depth
        with pytest.raises(SimulationError, match="'b'.*head"):
            router.restore(payload)

    def test_failed_validation_mutates_nothing(self):
        # Validation happens for every ring before any restore touches
        # state: a payload bad in one population leaves the whole
        # router untouched, not half-restored.
        router = SpikeRouter.from_network(_network())
        router.ring("a").enqueue(
            np.array([1]), np.array([3.0]), np.array([5]), 0
        )
        payload = router.snapshot()
        payload["isolated"]["head"] = 99
        before = router.ring("a").flush_window(router.ring("a").depth).copy()
        with pytest.raises(SimulationError, match="'isolated'"):
            router.restore(payload)
        np.testing.assert_array_equal(
            router.ring("a").flush_window(router.ring("a").depth), before
        )


class TestTelemetry:
    def test_publish_metrics_keeps_counts_integral(self):
        router = SpikeRouter.from_network(_network())
        router.ring("a").enqueue(
            np.array([0]), np.array([1.0]), np.array([5]), 0
        )
        metrics = MetricsRegistry()
        router.publish_metrics(metrics)
        snapshot = metrics.snapshot()
        enqueued = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in snapshot["ring_events_enqueued_total"]["values"]
        }
        assert enqueued[(("population", "a"),)] == 1
        assert type(enqueued[(("population", "a"),)]) is int
        pending = {
            entry["labels"]["population"]: entry["value"]
            for entry in snapshot["ring_pending_events"]["values"]
        }
        assert pending["a"] == 1
        assert type(pending["a"]) is int
        horizons = {
            entry["labels"]["population"]: entry["value"]
            for entry in snapshot["ring_flush_horizon_steps"]["values"]
        }
        assert horizons["a"] == 5
