"""Tests for the delay-bucketed spike ring."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.routing import DelayRing


def _enqueue(ring, target, weight, delay, syn_type=0):
    ring.enqueue(
        np.array([target]),
        np.array([weight]),
        np.array([delay]),
        syn_type,
    )


class TestConstruction:
    def test_rejects_bad_max_delay(self):
        with pytest.raises(SimulationError):
            DelayRing(4, 1, 0)

    def test_rejects_min_delay_out_of_range(self):
        with pytest.raises(SimulationError):
            DelayRing(4, 1, 3, min_delay=0)
        with pytest.raises(SimulationError):
            DelayRing(4, 1, 3, min_delay=4)

    def test_depth_and_flush_horizon(self):
        ring = DelayRing(4, 2, 5, min_delay=3)
        assert ring.depth == 6
        assert ring.flush_horizon == 3


class TestEventAccounting:
    def test_pending_total_is_exact_int(self):
        ring = DelayRing(8, 1, 4)
        _enqueue(ring, 0, 0.25, 2)
        _enqueue(ring, 3, -1.5, 4)
        ring.enqueue_now(np.array([1]), np.array([0.5]), 0)
        assert ring.pending_total() == 3
        assert type(ring.pending_total()) is int
        assert ring.pending_weight() == pytest.approx(0.25 - 1.5 + 0.5)

    def test_current_events_tracks_head_bucket(self):
        ring = DelayRing(8, 1, 4)
        assert ring.current_events() == 0
        _enqueue(ring, 0, 1.0, 1)
        assert ring.current_events() == 0
        ring.rotate()
        assert ring.current_events() == 1
        assert type(ring.current_events()) is int
        ring.rotate()
        assert ring.current_events() == 0
        assert ring.pending_total() == 0

    def test_enqueued_events_is_lifetime_monotone(self):
        ring = DelayRing(8, 1, 4)
        _enqueue(ring, 0, 1.0, 1)
        ring.rotate()
        ring.rotate()
        _enqueue(ring, 1, 1.0, 2)
        assert ring.enqueued_events == 2

    def test_zero_weight_delivery_still_counts(self):
        # The event count tracks deliveries, not magnitudes — a fault
        # injector zeroing weights in place must not turn the bucket
        # "provably silent" (current() stays a writable view).
        ring = DelayRing(4, 1, 2)
        _enqueue(ring, 0, 1.0, 1)
        ring.rotate()
        ring.current()[:] = 0.0
        assert ring.current_events() == 1


class TestFlushWindow:
    def test_window_equals_future_pops(self):
        ring = DelayRing(5, 2, 6, min_delay=3)
        rng = np.random.default_rng(0)
        for _ in range(12):
            _enqueue(
                ring,
                int(rng.integers(0, 5)),
                float(rng.random()),
                int(rng.integers(1, 7)),
                int(rng.integers(0, 2)),
            )
        window = ring.flush_window()
        events = ring.flush_events()
        assert window.shape == (3, 2, 5)
        for offset in range(3):
            np.testing.assert_array_equal(window[offset], ring.current())
            assert events[offset] == ring.current_events()
            ring.rotate()

    def test_min_delay_traffic_cannot_invalidate_window(self):
        # Once a step's enqueues are done, future synaptic spikes
        # (delay >= min_delay, enqueued at strictly later steps) land
        # beyond the window — the batching contract a sharded
        # exchange relies on.
        ring = DelayRing(3, 1, 5, min_delay=2)
        _enqueue(ring, 0, 1.0, 1)
        _enqueue(ring, 1, 2.0, 2)
        window = ring.flush_window()
        for offset in range(ring.flush_horizon):
            np.testing.assert_array_equal(window[offset], ring.current())
            ring.rotate()
            _enqueue(ring, 2, 5.0, 2)  # later-step spike, min delay

    def test_window_bounds_validated(self):
        ring = DelayRing(3, 1, 4)
        with pytest.raises(SimulationError):
            ring.flush_window(0 - 1)
        with pytest.raises(SimulationError):
            ring.flush_window(ring.depth + 1)
        with pytest.raises(SimulationError):
            ring.flush_events(ring.depth + 1)

    def test_min_delay_equal_to_max_delay(self):
        # The degenerate single-delay network: the flush horizon spans
        # every bucket but the newest (depth - 1 of them), and the
        # window still equals the future pops bucket-for-bucket.
        ring = DelayRing(4, 2, 3, min_delay=3)
        assert ring.depth == 4
        assert ring.flush_horizon == ring.depth - 1
        _enqueue(ring, 0, 1.5, 3, syn_type=1)
        _enqueue(ring, 2, -0.5, 3)
        window = ring.flush_window()
        events = ring.flush_events()
        assert window.shape == (3, 2, 4)
        for offset in range(3):
            np.testing.assert_array_equal(window[offset], ring.current())
            assert events[offset] == ring.current_events()
            ring.rotate()

    def test_explicit_full_depth_window(self):
        # horizon == depth is legal (a whole-ring snapshot view) even
        # though the newest bucket can still receive traffic.
        ring = DelayRing(3, 1, 4, min_delay=2)
        for delay in (1, 2, 3, 4):
            _enqueue(ring, delay % 3, float(delay), delay)
        window = ring.flush_window(ring.depth)
        events = ring.flush_events(ring.depth)
        assert window.shape == (ring.depth, 1, 3)
        assert events.shape == (ring.depth,)
        assert events.sum() == 4
        for offset in range(ring.depth):
            np.testing.assert_array_equal(window[offset], ring.current())
            ring.rotate()

    def test_flush_after_restore_at_rotation_offsets(self):
        # A restored ring must flush the same window the original
        # would, wherever the head happens to sit — the property the
        # sharded resume path leans on.
        for rotations in range(6):
            ring = DelayRing(5, 2, 5, min_delay=2)
            rng = np.random.default_rng(rotations)
            for _ in range(rotations):
                _enqueue(
                    ring,
                    int(rng.integers(0, 5)),
                    float(rng.random()),
                    int(rng.integers(1, 6)),
                    int(rng.integers(0, 2)),
                )
                ring.rotate()
            other = DelayRing(5, 2, 5, min_delay=2)
            other.restore(ring.snapshot())
            np.testing.assert_array_equal(
                other.flush_window(), ring.flush_window()
            )
            np.testing.assert_array_equal(
                other.flush_events(), ring.flush_events()
            )
            # ...and they evolve identically afterwards.
            ring.rotate()
            other.rotate()
            np.testing.assert_array_equal(other.current(), ring.current())
            assert other.current_events() == ring.current_events()

    def test_empty_window_is_all_zero(self):
        ring = DelayRing(4, 2, 6, min_delay=3)
        window = ring.flush_window()
        events = ring.flush_events()
        assert window.shape == (3, 2, 4)
        assert not window.any()
        assert events.shape == (3,)
        assert not events.any()
        # Consuming an empty window leaves the accounting at zero.
        for _ in range(3):
            ring.rotate()
        assert ring.pending_total() == 0
        assert ring.enqueued_events == 0


class TestSnapshotRestore:
    def test_round_trip(self):
        ring = DelayRing(6, 2, 4, min_delay=2)
        _enqueue(ring, 2, 0.75, 3, syn_type=1)
        ring.rotate()
        _enqueue(ring, 4, -0.5, 1)
        payload = ring.snapshot()

        other = DelayRing(6, 2, 4, min_delay=2)
        other.restore(payload)
        assert other.pending_total() == ring.pending_total()
        assert other.pending_weight() == ring.pending_weight()
        assert other.enqueued_events == ring.enqueued_events
        for _ in range(ring.depth):
            np.testing.assert_array_equal(other.current(), ring.current())
            assert other.current_events() == ring.current_events()
            other.rotate()
            ring.rotate()

    def test_restore_rejects_wrong_shape(self):
        ring = DelayRing(6, 2, 4)
        payload = ring.snapshot()
        with pytest.raises(SimulationError):
            DelayRing(6, 2, 5).restore(payload)

    def test_restore_rejects_bad_head(self):
        ring = DelayRing(6, 2, 4)
        payload = ring.snapshot()
        payload["head"] = ring.depth
        with pytest.raises(SimulationError):
            ring.restore(payload)

    def test_restore_defaults_missing_counts(self):
        # Pre-ring snapshots carried no event counts; restoring one
        # must still work, with counts conservatively zeroed.
        ring = DelayRing(6, 2, 4)
        _enqueue(ring, 1, 1.0, 2)
        payload = ring.snapshot()
        del payload["counts"]
        del payload["enqueued_events"]
        ring.restore(payload)
        assert ring.pending_total() == 0
        assert ring.pending_weight() == pytest.approx(1.0)
