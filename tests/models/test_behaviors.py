"""Behavioural tests of the biologically common features (Figures 4-8).

Each test drives a single neuron and asserts the qualitative behaviour
the paper's feature figures depict: exponential vs linear decay shapes,
instant vs kernel-shaped accumulation, reversal saturation, delayed
spike initiation, adaptation, subthreshold oscillation, and both
refractory mechanisms.
"""

import numpy as np
import pytest

from repro.features import Feature, FeatureSet
from repro.models import ModelParameters
from repro.models.feature_model import FeatureModel
from tests.conftest import DT, drive_single


def _model(features, **overrides):
    return FeatureModel(
        FeatureSet(features), ModelParameters(**overrides)
    )


def _decay_trace(model, v0: float, steps: int):
    state = model.initial_state(1)
    state["v"][:] = v0
    n_types = model.parameters.n_synapse_types
    zeros = np.zeros((n_types, 1))
    trace = [v0]
    for _ in range(steps):
        model.step(state, zeros.copy(), DT)
        trace.append(float(state["v"][0]))
    return np.array(trace)


class TestMembraneDecay:
    """Figure 4: exponential vs linear decay."""

    def test_exd_decays_exponentially(self):
        model = _model([Feature.EXD, Feature.CUB], tau=20e-3)
        trace = _decay_trace(model, 0.8, 400)
        # v(t) = 0.8 (1 - eps)^t: constant per-step ratio.
        ratios = trace[1:] / trace[:-1]
        np.testing.assert_allclose(ratios, 1 - DT / 20e-3, rtol=1e-9)

    def test_lid_decays_linearly(self):
        model = _model([Feature.LID, Feature.CUB], leak_rate=20.0)
        trace = _decay_trace(model, 0.8, 100)
        steps_per_decrement = np.diff(trace)
        np.testing.assert_allclose(steps_per_decrement, -20.0 * DT, rtol=1e-9)

    def test_lid_clamps_at_rest(self):
        # Figure 4's steady state: linear decay stops at v0.
        model = _model([Feature.LID, Feature.CUB], leak_rate=20.0)
        trace = _decay_trace(model, 0.01, 200)
        assert trace[-1] == pytest.approx(0.0, abs=1e-12)
        assert np.all(trace >= -1e-12)

    def test_exd_reaches_steady_state_at_rest(self):
        model = _model([Feature.EXD, Feature.CUB], tau=5e-3)
        trace = _decay_trace(model, 0.8, 5000)
        assert abs(trace[-1]) < 1e-6

    def test_exd_decay_faster_with_smaller_tau(self):
        slow = _decay_trace(_model([Feature.EXD, Feature.CUB], tau=50e-3), 0.8, 100)
        fast = _decay_trace(_model([Feature.EXD, Feature.CUB], tau=5e-3), 0.8, 100)
        assert fast[-1] < slow[-1]


class TestInputAccumulation:
    """Figure 5: CUB (instant) vs COBE/COBA (kernel-shaped) inputs."""

    def _pulse_response(self, features, **overrides):
        model = _model(features, **overrides)
        state = model.initial_state(1)
        n_types = model.parameters.n_synapse_types
        inputs = np.zeros((n_types, 1))
        trace = []
        for step in range(300):
            inputs[0, 0] = 0.5 if step == 0 else 0.0
            model.step(state, inputs.copy(), DT)
            trace.append(float(state["v"][0]))
        return np.array(trace)

    def test_cub_jump_is_instant(self):
        trace = self._pulse_response([Feature.EXD, Feature.CUB])
        # Peak membrane response happens at the very first step.
        assert np.argmax(trace) == 0

    def test_cobe_peaks_immediately_then_decays(self):
        # COBE: conductance jumps, membrane integrates: peak is delayed
        # relative to CUB but the conductance itself starts decaying.
        trace = self._pulse_response([Feature.EXD, Feature.COBE])
        assert np.argmax(trace) > 0

    def test_coba_rise_is_slower_than_cobe(self):
        cobe = self._pulse_response([Feature.EXD, Feature.COBE])
        coba = self._pulse_response([Feature.EXD, Feature.COBA])
        # The alpha function ramps up: peak arrives later.
        assert np.argmax(coba) > np.argmax(cobe)

    def test_coba_alpha_conductance_peak_near_tau_g(self):
        model = _model([Feature.EXD, Feature.COBA], tau_g=(5e-3, 5e-3))
        state = model.initial_state(1)
        inputs = np.zeros((2, 1))
        g_trace = []
        for step in range(600):
            inputs[0, 0] = 1.0 if step == 0 else 0.0
            model.step(state, inputs.copy(), DT)
            g_trace.append(float(state["g0"][0]))
        peak_time = np.argmax(g_trace) * DT
        assert peak_time == pytest.approx(5e-3, rel=0.15)

    def test_rev_contribution_shrinks_near_reversal(self):
        # Drive hard toward the excitatory reversal: v cannot cross it.
        model = _model(
            [Feature.EXD, Feature.COBE, Feature.REV],
            v_g=(1.2, -1.0),
            theta=10.0,  # disable firing to watch saturation
            v_theta=10.0,
        )
        state = model.initial_state(1)
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 5.0
        for _ in range(5000):
            model.step(state, inputs.copy(), DT)
        assert state["v"][0] <= 1.2 + 1e-6

    def test_separate_synapse_types_keep_separate_conductances(self):
        model = _model([Feature.EXD, Feature.COBE])
        state = model.initial_state(1)
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 0.3
        model.step(state, inputs, DT)
        assert state["g0"][0] > 0.0
        assert state["g1"][0] == 0.0


class TestSpikeInitiation:
    """Figure 6: QDI/EXI fire at v_theta, not theta."""

    def test_qdi_does_not_fire_at_theta(self):
        model = _model(
            [Feature.EXD, Feature.COBE, Feature.QDI],
            v_theta=2.0, v_c=0.5,
        )
        state = model.initial_state(1)
        state["v"][:] = 1.05  # just above theta
        zeros = np.zeros((2, 1))
        fired = model.step(state, zeros, DT)
        assert not fired[0]

    def test_qdi_self_accelerates_above_critical_voltage(self):
        model = _model(
            [Feature.EXD, Feature.COBE, Feature.QDI],
            v_theta=2.0, v_c=0.5,
        )
        state = model.initial_state(1)
        # The quadratic drive beats the leak once v > v_c + 1 (solve
        # v (v - v_c) > v); start just past that point.
        state["v"][:] = 1.6
        zeros = np.zeros((2, 1))
        fired_any = False
        for _ in range(5000):
            if model.step(state, zeros.copy(), DT)[0]:
                fired_any = True
                break
        # Past the balance point the neuron fires on its own, without
        # any further input — the non-instant initiation of Figure 6.
        assert fired_any

    def test_exi_self_accelerates_near_threshold(self):
        model = _model(
            [Feature.EXD, Feature.COBE, Feature.EXI],
            v_theta=2.0, delta_t=0.133,
        )
        state = model.initial_state(1)
        # Past the point where delta_T * exp((v - theta)/delta_T)
        # exceeds the leak, the exponential drive runs away.
        state["v"][:] = 1.4
        zeros = np.zeros((2, 1))
        fired_any = any(
            model.step(state, zeros.copy(), DT)[0] for _ in range(5000)
        )
        assert fired_any

    def test_exi_below_threshold_still_decays(self):
        model = _model(
            [Feature.EXD, Feature.COBE, Feature.EXI],
            v_theta=2.0, delta_t=0.133,
        )
        state = model.initial_state(1)
        state["v"][:] = 0.3  # far below theta: exp term negligible
        zeros = np.zeros((2, 1))
        for _ in range(100):
            model.step(state, zeros.copy(), DT)
        assert state["v"][0] < 0.3

    def test_instant_initiation_fires_at_theta(self):
        model = _model([Feature.EXD, Feature.CUB])
        state = model.initial_state(1)
        state["v"][:] = 1.05
        fired = model.step(state, np.zeros((2, 1)), DT)
        assert fired[0]
        assert state["v"][0] == 0.0  # reset


class TestSpikeTriggeredCurrent:
    """Figure 7: adaptation slows firing; SBT oscillates."""

    def test_adt_reduces_firing_rate(self):
        plain = _model([Feature.EXD, Feature.CUB])
        adapted = _model(
            [Feature.EXD, Feature.CUB, Feature.ADT],
            tau_w=200e-3, b=0.3,
        )
        fired_plain, _, _ = drive_single(plain, 2.0, 3000)
        fired_adapted, _, _ = drive_single(adapted, 2.0, 3000)
        assert fired_adapted[0] < fired_plain[0]

    def test_adt_interspike_intervals_grow(self):
        # The w coupling is per step (unscaled by eps_m), so the jump
        # size must be small relative to the per-step drive.
        adapted = _model(
            [Feature.EXD, Feature.CUB, Feature.ADT],
            tau_w=200e-3, b=0.01,
        )
        _, _, spikes = drive_single(adapted, 2.0, 8000)
        assert len(spikes) >= 3
        intervals = np.diff(spikes)
        assert intervals[-1] > intervals[0]

    def test_adt_w_decays_back_toward_zero(self):
        model = _model(
            [Feature.EXD, Feature.CUB, Feature.ADT], tau_w=50e-3, b=0.2
        )
        state = model.initial_state(1)
        state["w"][:] = -0.2
        zeros = np.zeros((2, 1))
        for _ in range(5000):
            model.step(state, zeros.copy(), DT)
        assert abs(state["w"][0]) < 1e-3

    def test_sbt_pulls_membrane_toward_oscillation_level(self):
        # Negative a in our +w coupling convention: w opposes
        # deviations from v_w (the hardware constant absorbs the sign).
        model = _model(
            [Feature.EXD, Feature.CUB, Feature.ADT, Feature.SBT],
            a=-0.02, v_w=0.4, tau_w=200e-3,
        )
        state = model.initial_state(1)
        zeros = np.zeros((2, 1))
        for _ in range(20000):
            model.step(state, zeros.copy(), DT)
        # The subthreshold coupling holds v near the oscillation level
        # v_w instead of letting it decay to rest.
        assert 0.2 < state["v"][0] < 0.6


class TestRefractory:
    """Figure 8: AR gates inputs; RR limits rate via strong current."""

    def test_ar_blocks_inputs_during_window(self):
        model = _model([Feature.EXD, Feature.CUB, Feature.AR], t_ref=2e-3)
        state = model.initial_state(1)
        state["v"][:] = 1.05
        inputs = np.zeros((2, 1))
        fired = model.step(state, inputs.copy(), DT)
        assert fired[0]
        assert state["cnt"][0] == 20
        # A huge input during the window must be ignored.
        inputs[0, 0] = 100.0
        fired = model.step(state, inputs.copy(), DT)
        assert not fired[0]
        assert state["v"][0] < 0.1

    def test_ar_window_expires(self):
        model = _model([Feature.EXD, Feature.CUB, Feature.AR], t_ref=5e-4)
        state = model.initial_state(1)
        state["v"][:] = 1.05
        model.step(state, np.zeros((2, 1)), DT)
        for _ in range(5):
            model.step(state, np.zeros((2, 1)), DT)
        inputs = np.zeros((2, 1))
        # CUB currents are scaled by eps_m = 0.005: 300 units give a
        # one-step jump of 1.5, comfortably across threshold.
        inputs[0, 0] = 300.0
        fired = model.step(state, inputs, DT)
        assert fired[0]

    def test_ar_caps_firing_rate(self):
        model = _model([Feature.EXD, Feature.CUB, Feature.AR], t_ref=2e-3)
        fired, _, _ = drive_single(model, 50.0, 10000)
        # 1 s of simulation, >= 2 ms between accepted inputs ->
        # bounded close to 500 Hz (one-step slack for re-charging).
        assert fired[0] <= 510

    def test_rr_limits_firing_rate(self):
        plain = _model([Feature.EXD, Feature.CUB])
        # Per-step reversal couplings need r, w << 1 for stability
        # (the update multiplies v by (1 - eps_m - r) each step).
        limited = _model(
            [Feature.EXD, Feature.CUB, Feature.RR],
            tau_r=5e-3, q_r=0.05, v_rr=-1.0, tau_w=100e-3, b=0.02, v_ar=-0.5,
        )
        fired_plain, _, _ = drive_single(plain, 3.0, 4000)
        fired_limited, _, _ = drive_single(limited, 3.0, 4000)
        assert fired_limited[0] < fired_plain[0]

    def test_rr_conductances_grow_on_spike(self):
        model = _model(
            [Feature.EXD, Feature.CUB, Feature.RR],
            q_r=0.3, b=0.1,
        )
        state = model.initial_state(1)
        state["v"][:] = 1.05
        model.step(state, np.zeros((2, 1)), DT)
        assert state["r"][0] > 0.0
        assert state["w"][0] > 0.0
