"""Tests for ModelParameters and the NeuronModel base plumbing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import ModelParameters, create_model, available_models
from repro.models.registry import canonical_name, register_model
from repro.models.lif import LIF


class TestModelParameters:
    def test_defaults_are_shift_and_scaled(self):
        p = ModelParameters()
        assert p.v_rest == 0.0
        assert p.theta == 1.0

    def test_eps_m(self):
        p = ModelParameters(tau=20e-3)
        assert p.eps_m(1e-4) == pytest.approx(0.005)

    def test_eps_g_per_type(self):
        p = ModelParameters(tau_g=(5e-3, 10e-3))
        assert p.eps_g(1e-4) == pytest.approx((0.02, 0.01))

    def test_refractory_steps(self):
        p = ModelParameters(t_ref=2e-3)
        assert p.refractory_steps(1e-4) == 20
        assert p.refractory_steps(1e-3) == 2

    def test_refractory_steps_at_least_one(self):
        p = ModelParameters(t_ref=1e-6)
        assert p.refractory_steps(1e-3) == 1

    def test_reset_voltage_defaults_to_rest(self):
        assert ModelParameters().reset_voltage == 0.0
        assert ModelParameters(v_reset=0.1).reset_voltage == 0.1

    def test_with_overrides(self):
        p = ModelParameters().with_overrides(tau=10e-3)
        assert p.tau == 10e-3

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(tau=0.0)

    def test_rejects_too_few_synapse_time_constants(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(n_synapse_types=3, tau_g=(5e-3, 5e-3))

    def test_rejects_too_few_reversal_voltages(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(n_synapse_types=3, v_g=(1.0, 1.0))

    def test_rejects_theta_below_rest(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(theta=-1.0)

    def test_rejects_zero_synapse_types(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(n_synapse_types=0)


class TestBaseModel:
    def test_initial_state_at_rest(self):
        model = LIF()
        state = model.initial_state(7)
        np.testing.assert_array_equal(state["v"], np.zeros(7))

    def test_initial_state_respects_custom_rest(self):
        model = LIF(ModelParameters(v_rest=0.1, theta=1.0))
        assert np.all(model.initial_state(3)["v"] == 0.1)


class TestRegistry:
    def test_all_table_models_registered(self):
        names = available_models()
        for expected in (
            "LIF", "LLIF", "SLIF", "DSRM0", "DLIF", "QIF", "EIF",
            "Izhikevich", "AdEx", "AdEx_COBA", "IF_psc_alpha",
            "IF_cond_exp_gsfa_grr", "HH", "NativeIzhikevich",
        ):
            assert expected in names

    def test_aliases_resolve(self):
        assert canonical_name("lif") == "LIF"
        assert canonical_name("adex_coba") == "AdEx_COBA"
        assert canonical_name("hodgkin-huxley") == "HH"

    def test_create_by_alias(self):
        assert create_model("izhikevich").name == "Izhikevich"

    def test_unknown_name_raises(self):
        from repro.errors import UnknownModelError

        with pytest.raises(UnknownModelError):
            create_model("nonexistent-model")

    def test_register_custom_model(self):
        register_model("CustomLIF", LIF)
        assert create_model("CustomLIF").name == "LIF"

    def test_create_with_custom_parameters(self):
        p = ModelParameters(tau=5e-3)
        assert create_model("LIF", parameters=p).parameters.tau == 5e-3
