"""Tests for the named reference models (Table III + HH + native Izh)."""

import numpy as np
import pytest

from repro.features import MODEL_FEATURES
from repro.models import (
    HodgkinHuxley,
    LIF,
    LLIF,
    ModelParameters,
    NativeIzhikevich,
    create_model,
)
from repro.models.feature_model import FeatureModel
from tests.conftest import DT, drive_single


class TestCatalogConsistency:
    @pytest.mark.parametrize("name", list(MODEL_FEATURES))
    def test_model_features_match_catalog(self, name):
        model = create_model(name)
        assert isinstance(model, FeatureModel)
        assert model.features == MODEL_FEATURES[name]
        assert model.name == name

    @pytest.mark.parametrize("name", list(MODEL_FEATURES))
    def test_state_variables_match_feature_requirements(self, name):
        model = create_model(name)
        expected = MODEL_FEATURES[name].state_variables(
            model.parameters.n_synapse_types
        )
        assert model.state_variable_names() == expected

    def test_ops_grow_with_feature_count(self):
        def total_ops(name):
            ops = create_model(name).ops_per_update()
            return sum(ops.values())

        assert total_ops("LIF") < total_ops("DLIF") < total_ops("AdEx_COBA")

    def test_hh_is_most_expensive(self):
        hh_ops = sum(HodgkinHuxley().ops_per_update().values())
        for name in MODEL_FEATURES:
            assert hh_ops > sum(create_model(name).ops_per_update().values())


class TestIzhikevichCrossCheck:
    """The feature mapping and the native (v, u) formulation agree
    on qualitative behaviour even though their state spaces differ."""

    def test_both_adapt_under_sustained_input(self):
        feature_based = create_model("Izhikevich")
        _, _, feature_spikes = drive_single(feature_based, 2.0, 8000)

        native = NativeIzhikevich()  # regular spiking defaults
        state = native.initial_state(1)
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 10.0
        native_spikes = [
            step
            for step in range(8000)
            if native.step(state, inputs.copy(), DT)[0]
        ]
        for spikes in (feature_spikes, native_spikes):
            assert len(spikes) >= 3
            intervals = np.diff(spikes)
            assert intervals[-1] >= intervals[0]

    def test_native_regimes_differ(self):
        def count(kwargs):
            model = NativeIzhikevich(**kwargs)
            state = model.initial_state(1)
            inputs = np.zeros((2, 1))
            inputs[0, 0] = 10.0
            return sum(
                int(model.step(state, inputs.copy(), DT)[0])
                for _ in range(10000)
            )

        regular = count({})  # a=0.02, d=8: regular spiking
        fast = count({"a": 0.1, "b": 0.2, "c": -65.0, "d": 2.0})  # FS
        assert fast > regular

    def test_native_resets_to_c(self):
        model = NativeIzhikevich(c=-60.0)
        state = model.initial_state(1)
        state["v"][:] = 29.9
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 20.0
        fired = model.step(state, inputs, DT)
        assert fired[0]
        assert state["v"][0] == -60.0


class TestHodgkinHuxley:
    def test_action_potentials_under_current_step(self):
        model = HodgkinHuxley()
        state = model.initial_state(1)
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 10.0
        spikes = sum(
            int(model.step(state, inputs.copy(), DT)[0]) for _ in range(2000)
        )
        # ~68 Hz tonic firing for 10 uA/cm^2 over 200 ms.
        assert 5 <= spikes <= 30

    def test_gates_stay_in_unit_interval(self):
        model = HodgkinHuxley()
        state = model.initial_state(2)
        inputs = np.full((2, 2), 15.0)
        for _ in range(500):
            model.step(state, inputs, DT)
            for gate in ("m", "h", "n"):
                assert np.all((0.0 <= state[gate]) & (state[gate] <= 1.0))

    def test_silent_without_input(self):
        model = HodgkinHuxley()
        state = model.initial_state(1)
        zeros = np.zeros((2, 1))
        spikes = sum(
            int(model.step(state, zeros.copy(), DT)[0]) for _ in range(1000)
        )
        assert spikes == 0

    def test_rest_is_stable(self):
        model = HodgkinHuxley()
        state = model.initial_state(1)
        zeros = np.zeros((2, 1))
        for _ in range(1000):
            model.step(state, zeros.copy(), DT)
        assert state["v"][0] == pytest.approx(-65.0, abs=1.5)

    def test_internal_substepping_keeps_coarse_dt_stable(self):
        # At the simulator's 0.1 ms step HH would diverge without the
        # internal substepping; assert it stays finite under drive.
        model = HodgkinHuxley()
        state = model.initial_state(4)
        inputs = np.full((2, 4), 30.0)
        for _ in range(3000):
            model.step(state, inputs, DT)
        assert np.all(np.isfinite(state["v"]))


class TestLinearVsExponentialDecay:
    def test_llif_outlives_lif_near_rest(self):
        # Exponential decay slows near rest; linear decay keeps its
        # rate and reaches rest sooner from a low start...
        def settle_steps(model, v0):
            state = model.initial_state(1)
            state["v"][:] = v0
            zeros = np.zeros((2, 1))
            for step in range(20000):
                model.step(state, zeros.copy(), DT)
                if abs(state["v"][0]) < 1e-3:
                    return step
            return 20000

        lif = LIF(ModelParameters(tau=20e-3))
        llif = LLIF(ModelParameters(leak_rate=10.0))
        assert settle_steps(llif, 0.5) < settle_steps(lif, 0.5)

    def test_llif_needs_no_multiplication(self):
        # The reason TrueNorth adopts LLIF (Section III-A): mul-free.
        from repro.features import features_for_model
        from repro.hardware.constants import prepare_constants
        from repro.hardware.microcode import assemble
        from repro.hardware.control import AOperand

        features = features_for_model("LLIF")
        constants = prepare_constants(ModelParameters(), features, DT)
        program = assemble(features, constants)
        # Every LLIF multiply is by the trivial constants 0 or 1.
        trivial = {0, constants.one}
        for signal in program.signals:
            assert signal.a is AOperand.CONSTANT
            assert program.mul_constants[signal.ca] in trivial
