"""Tests for the shared atomic write-then-rename helpers."""

import json
import os

import pytest

from repro.io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)


class TestAtomicWriter:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_writer(path) as handle:
            handle.write(b"payload")
        assert path.read_bytes() == b"payload"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_failure_preserves_previous_contents(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("good")
        with pytest.raises(RuntimeError):
            with atomic_writer(path, "w") as handle:
                handle.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "good"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        with pytest.raises(RuntimeError):
            with atomic_writer(path, "w"):
                raise RuntimeError
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_read_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_writer(tmp_path / "x", "rb"):
                pass  # pragma: no cover


class TestOneShotHelpers:
    def test_bytes(self, tmp_path):
        path = tmp_path / "b.bin"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_json_round_trips_with_trailing_newline(self, tmp_path):
        path = tmp_path / "d.json"
        payload = {"schema": "x/1", "values": [1, 2, 3]}
        atomic_write_json(path, payload)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload

    def test_accepts_string_paths(self, tmp_path):
        path = str(tmp_path / "s.txt")
        atomic_write_text(path, "via str path")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "via str path"
