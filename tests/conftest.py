"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus

#: The paper's simulation time step (0.1 ms).
DT = 1e-4


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def compiler():
    return FlexonCompiler()


@pytest.fixture
def lif_model():
    return create_model("LIF")


@pytest.fixture
def small_network(rng):
    """A tiny two-population DLIF network with stimulus."""
    network = Network("test-net")
    exc = network.add_population("exc", 40, "DLIF")
    network.add_population("inh", 10, "DLIF")
    network.connect(
        "exc", "exc", probability=0.15, weight=0.05, syn_type=0, rng=rng,
        delay_steps=1, delay_jitter=4,
    )
    network.connect(
        "exc", "inh", probability=0.15, weight=0.05, syn_type=0, rng=rng
    )
    network.connect(
        "inh", "exc", probability=0.15, weight=0.2, syn_type=1, rng=rng
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=500.0, weight=0.08, dt=DT, n_sources=10)
    )
    return network


def drive_single(model, current, steps, dt=DT, syn_type=0, n=1):
    """Drive one (or n) neurons with a constant per-step input weight.

    Returns (fired_count_per_neuron, final_state, spike_steps_of_n0).
    """
    state = model.initial_state(n)
    n_types = model.parameters.n_synapse_types
    inputs = np.zeros((n_types, n))
    inputs[syn_type, :] = current
    fired_counts = np.zeros(n, dtype=int)
    spike_steps = []
    for step in range(steps):
        fired = model.step(state, inputs.copy(), dt)
        fired_counts += fired
        if fired[0]:
            spike_steps.append(step)
    return fired_counts, state, spike_steps
