"""Tests for the Table V microprogram assembler."""


from repro.features import Feature, FeatureSet, features_for_model
from repro.hardware.constants import prepare_constants
from repro.hardware.control import AOperand, BOperand
from repro.hardware.microcode import (
    MAX_ADD_CONSTANTS,
    MAX_MUL_CONSTANTS,
    assemble,
)
from repro.models import ModelParameters

DT = 1e-4


def _program(features, n_types=1, **overrides):
    params = ModelParameters(
        n_synapse_types=n_types,
        tau_g=(5e-3, 10e-3, 8e-3, 8e-3)[: max(2, n_types)],
        v_g=(4.33, -1.0, 4.33, -1.0)[: max(2, n_types)],
        **overrides,
    )
    fs = FeatureSet(features)
    return assemble(fs, prepare_constants(params, fs, DT))


class TestSignalCounts:
    """Section V-B's cycle-count claims."""

    def test_lif_is_a_single_signal(self):
        # "to simulate CUB and EXD (i.e., LIF model), only a single
        # control signal is necessary"
        program = _program([Feature.EXD, Feature.CUB], n_types=1)
        assert program.n_signals == 1

    def test_qdi_needs_two_multiplier_passes(self):
        # "to simulate QDI, two control signals should be executed to
        # use the single multiplication unit twice"
        lif = _program([Feature.EXD, Feature.CUB], n_types=1)
        qif_like = _program([Feature.EXD, Feature.CUB, Feature.QDI], n_types=1)
        assert qif_like.n_signals - lif.n_signals == 2

    def test_qdi_three_cycle_latency(self):
        # "due to pipelining, the latency of QDI simulation is three
        # cycles" (2 signals through the 2-stage pipeline).
        program = _program([Feature.EXD, Feature.QDI], n_types=1)
        assert program.n_signals == 3  # EXD + 2 QDI signals
        qdi_only = [s for s in program.signals if "tmp * v" in s.note or "eps_m * v" in s.note]
        assert len(qdi_only) == 2

    def test_cobe_one_signal_per_type(self):
        one = _program([Feature.EXD, Feature.COBE], n_types=1)
        two = _program([Feature.EXD, Feature.COBE], n_types=2)
        assert two.n_signals - one.n_signals == 1

    def test_coba_three_signals_per_type(self):
        cobe = _program([Feature.EXD, Feature.COBE], n_types=1)
        coba = _program([Feature.EXD, Feature.COBA], n_types=1)
        assert coba.n_signals - cobe.n_signals == 2

    def test_rev_adds_two_signals_per_type(self):
        without = _program([Feature.EXD, Feature.COBE], n_types=1)
        with_rev = _program([Feature.EXD, Feature.COBE, Feature.REV], n_types=1)
        assert with_rev.n_signals - without.n_signals == 2

    def test_rr_is_six_signals(self):
        base = _program([Feature.EXD, Feature.CUB], n_types=1)
        with_rr = _program([Feature.EXD, Feature.CUB, Feature.RR], n_types=1)
        assert with_rr.n_signals - base.n_signals == 6

    def test_adt_single_signal(self):
        base = _program([Feature.EXD, Feature.CUB], n_types=1)
        adt = _program([Feature.EXD, Feature.CUB, Feature.ADT], n_types=1)
        assert adt.n_signals - base.n_signals == 1

    def test_sbt_two_signals(self):
        base = _program([Feature.EXD, Feature.CUB], n_types=1)
        sbt = _program(
            [Feature.EXD, Feature.CUB, Feature.ADT, Feature.SBT], n_types=1
        )
        assert sbt.n_signals - base.n_signals == 2

    def test_exi_two_signals(self):
        base = _program([Feature.EXD, Feature.COBE], n_types=1)
        exi = _program([Feature.EXD, Feature.COBE, Feature.EXI], n_types=1)
        assert exi.n_signals - base.n_signals == 2

    def test_ar_costs_no_signals(self):
        base = _program([Feature.EXD, Feature.CUB], n_types=1)
        with_ar = _program([Feature.EXD, Feature.CUB, Feature.AR], n_types=1)
        assert with_ar.n_signals == base.n_signals

    def test_cycles_per_neuron_is_signals_plus_writeback(self):
        program = _program([Feature.EXD, Feature.CUB], n_types=1)
        assert program.cycles_per_neuron == program.n_signals + 1


class TestProgramStructure:
    def test_exi_is_last(self):
        # EXI clobbers the v register with the exp output (Table V), so
        # every v-reading op must precede it.
        program = assemble(
            features_for_model("AdEx"),
            prepare_constants(ModelParameters(), features_for_model("AdEx"), DT),
        )
        exp_positions = [
            i for i, s in enumerate(program.signals) if s.exp
        ]
        assert exp_positions, "AdEx must use the exp unit"
        assert exp_positions[0] == program.n_signals - 2

    def test_constant_buffers_within_table4_limits(self):
        for name in (
            "LIF", "LLIF", "DSRM0", "DLIF", "QIF", "EIF", "Izhikevich",
            "AdEx", "AdEx_COBA", "IF_psc_alpha", "IF_cond_exp_gsfa_grr",
        ):
            fs = features_for_model(name)
            program = assemble(
                fs, prepare_constants(ModelParameters(), fs, DT)
            )
            assert len(program.mul_constants) <= MAX_MUL_CONSTANTS, name
            assert len(program.add_constants) <= MAX_ADD_CONSTANTS, name

    def test_constant_pool_deduplicates(self):
        program = _program([Feature.EXD, Feature.COBE], n_types=2)
        assert len(set(program.mul_constants)) == len(program.mul_constants)

    def test_every_signal_references_valid_constants(self):
        fs = features_for_model("AdEx_COBA")
        program = assemble(fs, prepare_constants(ModelParameters(), fs, DT))
        for signal in program.signals:
            if signal.a is AOperand.CONSTANT:
                assert signal.ca < len(program.mul_constants)
            if signal.b is BOperand.CONSTANT:
                assert signal.cb < len(program.add_constants)

    def test_rev_suppresses_direct_conductance_accumulation(self):
        program = _program([Feature.EXD, Feature.COBE, Feature.REV], n_types=1)
        cobe_ops = [s for s in program.signals if s.s_wr and "g0" in s.note]
        assert len(cobe_ops) == 1
        assert not cobe_ops[0].v_acc  # REV takes over the contribution

    def test_listing_renders(self):
        program = _program([Feature.EXD, Feature.CUB], n_types=1)
        listing = program.listing()
        assert "1 signals" in listing

    def test_lid_uses_leak_operand(self):
        program = _program([Feature.LID, Feature.CUB], n_types=1)
        assert any(s.b is BOperand.LEAK for s in program.signals)
