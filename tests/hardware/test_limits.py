"""Failure-injection tests: hardware limits fail loudly, not silently."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    FixedPointOverflowError,
    SimulationError,
)
from repro.features import features_for_model
from repro.fixedpoint import (
    FLEXON_FORMAT,
    SaturationStats,
    fx_from_float,
    observe_saturation,
)
from repro.hardware.backend import FlexonBackend
from repro.hardware.compiler import FlexonCompiler
from repro.hardware.constants import prepare_constants
from repro.models import ModelParameters
from repro.models.registry import create_model
from repro.network.simulator import Simulator
from repro.workloads import build_workload, workload_names

DT = 1e-4


class TestSynapseTypeLimit:
    def test_four_types_supported(self):
        params = ModelParameters(
            n_synapse_types=4,
            tau_g=(5e-3,) * 4,
            v_g=(4.33, 4.33, -1.0, -1.0),
        )
        constants = prepare_constants(params, features_for_model("DLIF"), DT)
        assert constants.n_synapse_types == 4

    def test_five_types_rejected_with_table4_reason(self):
        params = ModelParameters(
            n_synapse_types=5,
            tau_g=(5e-3,) * 5,
            v_g=(1.0,) * 5,
        )
        with pytest.raises(ConfigurationError, match="2 bits"):
            prepare_constants(params, features_for_model("DLIF"), DT)

    def test_four_type_model_runs_bit_exact(self):
        params = ModelParameters(
            n_synapse_types=4,
            tau_g=(5e-3, 10e-3, 8e-3, 6e-3),
            v_g=(4.33, 4.33, -1.0, -1.0),
        )
        from repro.models.feature_model import FeatureModel

        model = FeatureModel(features_for_model("DLIF"), params)
        compiled = FlexonCompiler().compile(model, DT)
        flexon = compiled.instantiate_flexon(8)
        folded = compiled.instantiate_folded(8)
        rng = np.random.default_rng(1)
        for _ in range(150):
            weights = (rng.random((4, 8)) < 0.1) * 1.0
            raw = fx_from_float(
                weights * compiled.weight_scale, FLEXON_FORMAT
            )
            assert np.array_equal(
                flexon.step(raw.copy()), folded.step(raw.copy())
            )


class TestShapeErrors:
    def test_flexon_rejects_wrong_input_shape(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        neuron = compiled.instantiate_flexon(4)
        with pytest.raises(SimulationError):
            neuron.step(np.zeros((3, 4), dtype=np.int64))
        with pytest.raises(SimulationError):
            neuron.step(np.zeros((2, 5), dtype=np.int64))

    def test_folded_rejects_wrong_input_shape(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        neuron = compiled.instantiate_folded(4)
        with pytest.raises(SimulationError):
            neuron.step(np.zeros((2, 3), dtype=np.int64))


class TestSaturationBehaviour:
    def test_oversized_weights_saturate_not_wrap(self):
        # A pathological weight saturates the 32-bit format and the
        # neuron fires; nothing wraps to negative.
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        neuron = compiled.instantiate_flexon(1)
        huge = fx_from_float(
            np.full((2, 1), 1e12) * compiled.weight_scale, FLEXON_FORMAT
        )
        assert huge[0, 0] == FLEXON_FORMAT.raw_max
        fired = neuron.step(huge)
        assert fired[0]
        assert neuron.state["v"][0] == compiled.constants.v_reset

    def test_strict_quantisation_flags_out_of_range_constants(self):
        with pytest.raises(FixedPointOverflowError):
            fx_from_float(1e9, FLEXON_FORMAT, strict=True)

    def test_membrane_clamp_engages_under_extreme_inhibition(self):
        # Inject absurd inhibitory conductance: the truncated membrane
        # store clamps at its rail instead of wrapping.
        compiled = FlexonCompiler().compile(create_model("DLIF"), DT)
        neuron = compiled.instantiate_flexon(1)
        weights = np.zeros((2, 1))
        weights[1, 0] = 500.0  # inhibitory (reversal -1.0)
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        for _ in range(50):
            neuron.step(raw.copy())
        v = neuron.state["v"][0]
        membrane = compiled.membrane_format
        assert membrane.raw_min <= v <= membrane.raw_max

    def test_reference_model_rejects_bad_input_shapes(self):
        model = create_model("LIF")
        state = model.initial_state(4)
        with pytest.raises(SimulationError):
            model.step(state, np.zeros((1, 4)), DT)
        with pytest.raises(SimulationError):
            model.step(state, np.zeros((2, 3)), DT)


#: Workloads whose dynamics transiently exceed the Q9.22 datapath range
#: at this scale — a real (rare, ~1e-4 rate) clip the accounting layer
#: made visible; every other Table I workload runs clip-free.
_KNOWN_SATURATING = {"Destexhe-LTS", "Destexhe-UpDown"}


def _saturation_after(workload, steps=100, scale=0.02, seed=7):
    network = build_workload(workload, scale=scale, seed=seed)
    simulator = Simulator(network, FlexonBackend(DT), dt=DT, seed=seed + 1)
    return simulator.run(steps).diagnostics


class TestSaturationAccounting:
    """The paper's formats hold registry workloads without clipping."""

    @pytest.mark.parametrize(
        "workload",
        [n for n in workload_names() if n not in _KNOWN_SATURATING],
    )
    def test_paper_formats_never_clip_on_workload(self, workload):
        diagnostics = _saturation_after(workload)
        assert diagnostics.total_saturations == 0, (
            f"{workload} clipped: "
            + "; ".join(
                f"{pop}: {stats.describe()}"
                for pop, stats in diagnostics.saturation.items()
                if stats.total_clipped
            )
        )
        # The zero is meaningful: millions of values were screened.
        assert all(
            stats.checked > 0
            for stats in diagnostics.saturation.values()
        )

    @pytest.mark.parametrize("workload", sorted(_KNOWN_SATURATING))
    def test_destexhe_transients_are_counted_not_silent(self, workload):
        # Before the accounting layer these clips were invisible; now
        # they are quantified (and rare) instead of silently absorbed.
        diagnostics = _saturation_after(workload, steps=150)
        clipped = diagnostics.total_saturations
        checked = sum(s.checked for s in diagnostics.saturation.values())
        assert 0 < clipped < checked * 1e-3
        assert any(
            fmt.frac_bits == FLEXON_FORMAT.frac_bits
            and fmt.total_bits == FLEXON_FORMAT.total_bits
            for stats in diagnostics.saturation.values()
            for fmt in stats.clipped
        )

    def test_stats_sink_counts_array_clips(self):
        stats = SaturationStats()
        with observe_saturation(stats):
            fx_from_float(np.array([0.5, 1e9, -1e9]), FLEXON_FORMAT)
        assert stats.total_clipped == 2
        assert stats.checked == 3

    def test_no_active_sink_costs_nothing_and_counts_nothing(self):
        stats = SaturationStats()
        fx_from_float(np.array([1e9]), FLEXON_FORMAT)  # outside any sink
        assert stats.total_clipped == 0 and stats.checked == 0

    def test_sinks_nest_and_restore(self):
        outer, inner = SaturationStats(), SaturationStats()
        with observe_saturation(outer):
            fx_from_float(1e9, FLEXON_FORMAT)
            with observe_saturation(inner):
                fx_from_float(1e9, FLEXON_FORMAT)
            fx_from_float(1e9, FLEXON_FORMAT)
        assert outer.total_clipped == 2
        assert inner.total_clipped == 1

    def test_merge_accumulates_across_stats(self):
        a, b = SaturationStats(), SaturationStats()
        with observe_saturation(a):
            fx_from_float(1e9, FLEXON_FORMAT)
        with observe_saturation(b):
            fx_from_float(np.array([1e9, -1e9]), FLEXON_FORMAT)
        a.merge(b)
        assert a.total_clipped == 3
        assert a.checked == 3
