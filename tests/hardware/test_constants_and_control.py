"""Tests for constant preparation (shift & scale) and control encoding."""

import math

import pytest

from repro.errors import ConfigurationError, MicrocodeError
from repro.features import features_for_model
from repro.fixedpoint import FLEXON_FORMAT, fx_to_float
from repro.hardware.constants import prepare_constants
from repro.hardware.control import (
    AOperand,
    BOperand,
    ControlSignal,
    STATE_G,
    STATE_V,
    STATE_W,
)
from repro.models import ModelParameters

DT = 1e-4


def _value(raw):
    return fx_to_float(raw, FLEXON_FORMAT)


class TestPrepareConstants:
    def test_eps_m_complement(self):
        constants = prepare_constants(
            ModelParameters(tau=20e-3), features_for_model("LIF"), DT
        )
        assert _value(constants.eps_m_c) == pytest.approx(0.995, abs=1e-6)
        assert _value(constants.eps_m) == pytest.approx(0.005, abs=1e-6)

    def test_v_leak_scales_with_dt(self):
        p = ModelParameters(leak_rate=20.0)
        fast = prepare_constants(p, features_for_model("LLIF"), 1e-4)
        slow = prepare_constants(p, features_for_model("LLIF"), 1e-3)
        assert _value(slow.v_leak) == pytest.approx(
            10 * _value(fast.v_leak), rel=1e-3
        )

    def test_conductance_constants_per_type(self):
        p = ModelParameters(tau_g=(5e-3, 10e-3))
        constants = prepare_constants(p, features_for_model("DLIF"), DT)
        assert _value(constants.eps_g_c[0]) == pytest.approx(0.98, abs=1e-6)
        assert _value(constants.eps_g_c[1]) == pytest.approx(0.99, abs=1e-6)
        assert _value(constants.e_eps_g[0]) == pytest.approx(
            math.e * 0.02, abs=1e-5
        )

    def test_signs_absorbed_into_stored_constants(self):
        constants = prepare_constants(
            ModelParameters(), features_for_model("AdEx"), DT
        )
        assert constants.neg_theta_inv_delta_t < 0
        assert constants.neg_eps_m_a_v_w * constants.eps_m_a <= 0
        assert constants.neg_eps_m_v_c < 0

    def test_threshold_is_v_theta_for_initiation_models(self):
        qif = prepare_constants(
            ModelParameters(v_theta=2.0), features_for_model("QIF"), DT
        )
        lif = prepare_constants(
            ModelParameters(), features_for_model("LIF"), DT
        )
        assert _value(qif.threshold) == pytest.approx(2.0)
        assert _value(lif.threshold) == pytest.approx(1.0)

    def test_weight_scale_eps_m_for_exd(self):
        constants = prepare_constants(
            ModelParameters(tau=20e-3), features_for_model("LIF"), DT
        )
        assert constants.weight_scale == pytest.approx(0.005)

    def test_weight_scale_unity_for_lid(self):
        constants = prepare_constants(
            ModelParameters(), features_for_model("LLIF"), DT
        )
        assert constants.weight_scale == 1.0

    def test_cnt_max_from_t_ref(self):
        constants = prepare_constants(
            ModelParameters(t_ref=2e-3), features_for_model("SLIF"), DT
        )
        assert constants.cnt_max == 20

    def test_rejects_nonzero_rest(self):
        with pytest.raises(ConfigurationError):
            prepare_constants(
                ModelParameters(v_rest=0.2, theta=1.0),
                features_for_model("LIF"),
                DT,
            )

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            prepare_constants(ModelParameters(), features_for_model("LIF"), 0.0)

    def test_one_and_neg_one(self):
        constants = prepare_constants(
            ModelParameters(), features_for_model("LIF"), DT
        )
        assert _value(constants.one) == 1.0
        assert _value(constants.neg_one) == -1.0


class TestControlSignal:
    def test_defaults(self):
        signal = ControlSignal()
        assert signal.a is AOperand.CONSTANT
        assert signal.b is BOperand.ZERO
        assert not signal.exp

    def test_field_ranges_enforced(self):
        with pytest.raises(MicrocodeError):
            ControlSignal(ca=16)
        with pytest.raises(MicrocodeError):
            ControlSignal(cb=8)
        with pytest.raises(MicrocodeError):
            ControlSignal(syn_type=4)
        with pytest.raises(MicrocodeError):
            ControlSignal(s=16)

    def test_describe_mentions_targets(self):
        signal = ControlSignal(
            a=AOperand.CONSTANT, ca=2, b=BOperand.INPUT, syn_type=1,
            s=STATE_G[1], s_wr=True, v_acc=True,
        )
        text = signal.describe()
        assert "g1" in text
        assert "v'" in text
        assert "I[1]" in text

    def test_describe_exp(self):
        signal = ControlSignal(exp=True, s=STATE_V)
        assert "exp(" in signal.describe()

    def test_state_register_layout_distinct(self):
        indices = {STATE_V, STATE_W, *STATE_G.values()}
        assert len(indices) == 2 + len(STATE_G)
