"""Tests for event-driven execution: the skip must be provably exact."""

import numpy as np
import pytest

from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.hardware.event_driven import (
    EventDrivenMonitor,
    event_driven_power,
    idle_mask,
    supports_event_driven,
)
from repro.models.registry import create_model

DT = 1e-4


@pytest.mark.parametrize("name", ["LLIF", "LIF", "DLIF", "Izhikevich"])
def test_idle_neurons_are_fixed_points(name):
    """The invariant that makes counting a sound energy model:
    stepping an idle neuron changes nothing."""
    model = create_model(name)
    compiled = FlexonCompiler().compile(model, DT)
    neuron = compiled.instantiate_flexon(16)
    rng = np.random.default_rng(3)
    base = 40.0 if name in ("LLIF", "LIF") else 1.5
    assert supports_event_driven(model.features)
    for _ in range(300):
        weights = (rng.random((model.parameters.n_synapse_types, 16)) < 0.05)
        raw = fx_from_float(
            weights * base * compiled.weight_scale, FLEXON_FORMAT
        )
        idle = idle_mask(neuron, raw)
        before = {k: v.copy() for k, v in neuron.state.items()}
        neuron.step(raw)
        for key, values in neuron.state.items():
            np.testing.assert_array_equal(
                values[idle], before[key][idle],
                err_msg=f"{name}: idle neuron changed its {key}",
            )


def test_idle_mask_respects_inputs():
    compiled = FlexonCompiler().compile(create_model("LLIF"), DT)
    neuron = compiled.instantiate_flexon(4)
    raw = np.zeros((2, 4), dtype=np.int64)
    raw[0, 2] = 100
    idle = idle_mask(neuron, raw)
    assert idle.tolist() == [True, True, False, True]


def test_idle_mask_respects_state():
    compiled = FlexonCompiler().compile(create_model("LLIF"), DT)
    neuron = compiled.instantiate_flexon(3)
    neuron.state["v"][1] = 1000
    idle = idle_mask(neuron, np.zeros((2, 3), dtype=np.int64))
    assert idle.tolist() == [True, False, True]


def test_idle_mask_folded_design():
    compiled = FlexonCompiler().compile(create_model("SLIF"), DT)
    neuron = compiled.instantiate_folded(3)
    neuron.cnt[0] = 5  # refractory counter still draining
    idle = idle_mask(neuron, np.zeros((2, 3), dtype=np.int64))
    assert idle.tolist() == [False, True, True]


def test_monitor_tracks_activity_factor():
    compiled = FlexonCompiler().compile(create_model("LLIF"), DT)
    monitor = EventDrivenMonitor(compiled.instantiate_flexon(10))
    zeros = np.zeros((2, 10), dtype=np.int64)
    driven = zeros.copy()
    driven[0, :5] = fx_from_float(0.5, FLEXON_FORMAT)
    monitor.step(driven)  # 5 of 10 active
    monitor.step(zeros)  # the 5 still hold charge: active
    assert monitor.total_updates == 20
    assert 0.0 < monitor.activity_factor < 1.0


def test_quantised_exponential_decay_eventually_goes_idle():
    """Fixed-point EXD really reaches raw zero (unlike float EXD)."""
    compiled = FlexonCompiler().compile(create_model("LIF"), DT)
    neuron = compiled.instantiate_flexon(1)
    neuron.state["v"][:] = fx_from_float(0.5, FLEXON_FORMAT)
    zeros = np.zeros((2, 1), dtype=np.int64)
    for _ in range(60_000):
        neuron.step(zeros)
        if neuron.state["v"][0] == 0:
            break
    assert neuron.state["v"][0] == 0
    assert idle_mask(neuron, zeros)[0]


def test_exi_and_sbt_models_never_claim_idleness():
    # At rest, EXI still drives v by its exponential tail and SBT
    # drives w toward tracking v - v_w: no fixed point at zero.
    for name in ("EIF", "AdEx", "AdEx_COBA"):
        model = create_model(name)
        assert not supports_event_driven(model.features)
        compiled = FlexonCompiler().compile(model, DT)
        neuron = compiled.instantiate_flexon(4)
        zeros = np.zeros((2, 4), dtype=np.int64)
        assert not idle_mask(neuron, zeros).any()


class TestEventDrivenPower:
    def test_full_activity_is_no_saving(self):
        assert event_driven_power(1.0, 0.3, 1.0) == pytest.approx(1.0)

    def test_zero_activity_leaves_static_power(self):
        assert event_driven_power(1.0, 0.3, 0.0) == pytest.approx(0.3)

    def test_scales_linearly_between(self):
        assert event_driven_power(2.0, 0.5, 0.5) == pytest.approx(1.5)
