"""Unit tests for the per-feature data paths (Figure 9)."""

import math

import numpy as np
import pytest

from repro.features import features_for_model
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float, fx_to_float
from repro.hardware import datapaths as dp
from repro.hardware.constants import prepare_constants
from repro.models import ModelParameters

DT = 1e-4
FMT = FLEXON_FORMAT


def _constants(model="AdEx", **overrides):
    return prepare_constants(
        ModelParameters(**overrides), features_for_model(model), DT
    )


def _raw(value):
    return fx_from_float(np.asarray(value, dtype=np.float64), FMT)


def _val(raw):
    return fx_to_float(raw, FMT)


class TestCubExdLid:
    def test_exd_multiplies_by_complement(self):
        c = _constants(tau=20e-3)
        out = dp.CubExdLidPath.exd(_raw([0.8]), c)
        assert _val(out)[0] == pytest.approx(0.8 * 0.995, abs=1e-5)

    def test_lid_subtracts_clamped_leak(self):
        c = _constants("LLIF", leak_rate=20.0)
        # Above the leak: subtract the full V_leak.
        out = dp.CubExdLidPath.lid(_raw([0.5]), c)
        assert _val(out)[0] == pytest.approx(0.5 - 0.002, abs=1e-5)
        # Below the leak: clamp so v lands exactly at rest.
        out = dp.CubExdLidPath.lid(_raw([0.001]), c)
        assert _val(out)[0] == pytest.approx(0.0, abs=1e-6)
        # Below rest: no leak at all.
        out = dp.CubExdLidPath.lid(_raw([-0.3]), c)
        assert _val(out)[0] == pytest.approx(-0.3, abs=1e-6)

    def test_inventory_has_multiplier_and_clamp(self):
        inventory = dp.CubExdLidPath.unit_inventory()
        assert inventory["mul"] == 1
        assert inventory["cmp"] >= 1


class TestConductancePaths:
    def test_cobe_decay_and_accumulate(self):
        c = _constants(tau_g=(5e-3, 10e-3))
        g = _raw([0.5])
        out = dp.CobePath.update(g, _raw([0.1]), 0, c)
        assert _val(out)[0] == pytest.approx(0.5 * 0.98 + 0.1, abs=1e-5)

    def test_coba_cascade(self):
        c = _constants("AdEx_COBA", tau_g=(5e-3, 10e-3))
        g, y = _raw([0.0]), _raw([0.0])
        g1, y1 = dp.CobaPath.update(g, y, _raw([1.0]), 0, c)
        assert _val(y1)[0] == pytest.approx(1.0, abs=1e-5)
        assert _val(g1)[0] == pytest.approx(math.e * 0.02, abs=1e-4)

    def test_coba_peak_normalised_to_input(self):
        # The alpha kernel's peak equals the accumulated input weight.
        c = _constants("AdEx_COBA", tau_g=(5e-3, 10e-3))
        g, y = _raw([0.0]), _raw([0.0])
        zero = _raw([0.0])
        peak = 0.0
        for step in range(1500):
            inp = _raw([1.0]) if step == 0 else zero
            g, y = dp.CobaPath.update(g, y, inp, 0, c)
            peak = max(peak, _val(g)[0])
        assert peak == pytest.approx(1.0, rel=0.05)

    def test_rev_scales_by_driving_force(self):
        c = _constants(v_g=(4.33, -1.0))
        out = dp.RevPath.contribution(_raw([0.5]), _raw([0.2]), 0, c)
        assert _val(out)[0] == pytest.approx((4.33 - 0.5) * 0.2, abs=1e-4)

    def test_rev_inhibitory_type_is_negative_above_reversal(self):
        c = _constants(v_g=(4.33, -1.0))
        out = dp.RevPath.contribution(_raw([0.5]), _raw([0.2]), 1, c)
        assert _val(out)[0] < 0.0


class TestInitiationPaths:
    def test_qdi_quadratic_value(self):
        c = _constants("QIF", v_c=0.5, tau=20e-3)
        out = dp.QdiPath.contribution(_raw([1.6]), c)
        expected = 0.005 * (0.0 - 1.6) * (0.5 - 1.6)
        assert _val(out)[0] == pytest.approx(expected, abs=1e-4)

    def test_exi_grows_rapidly_past_threshold(self):
        c = _constants("EIF", delta_t=0.133, tau=20e-3)
        below = _val(dp.ExiPath.contribution(_raw([0.5]), c))[0]
        above = _val(dp.ExiPath.contribution(_raw([1.4]), c))[0]
        assert above > 100 * max(below, 1e-9)

    def test_exi_uses_saturating_exp(self):
        c = _constants("EIF")
        out = dp.ExiPath.contribution(_raw([50.0]), c)
        assert np.isfinite(_val(out)[0])


class TestSpikeTriggeredPaths:
    def test_adt_decay(self):
        c = _constants(tau_w=100e-3)
        out = dp.AdtPath.decay(_raw([-0.5]), c)
        assert _val(out)[0] == pytest.approx(-0.5 * 0.999, abs=1e-5)

    def test_sbt_adds_subthreshold_drive(self):
        c = _constants(a=-0.02, v_w=0.4, tau=20e-3, tau_w=100e-3)
        out = dp.SbtPath.update(_raw([0.0]), _raw([0.8]), c)
        expected = 0.005 * (-0.02) * (0.8 - 0.4)
        assert _val(out)[0] == pytest.approx(expected, abs=1e-5)

    def test_rr_returns_decayed_states_and_contribution(self):
        c = _constants(
            "IF_cond_exp_gsfa_grr",
            tau_w=110e-3, tau_r=1.97e-3, v_ar=-0.5, v_rr=-1.0,
        )
        w, r, contribution = dp.RrPath.update(
            _raw([0.1]), _raw([0.2]), _raw([0.5]), c
        )
        assert _val(w)[0] < 0.1
        assert _val(r)[0] < 0.2
        # Both couplings inhibit when v is above both reversals.
        assert _val(contribution)[0] < 0.0


class TestArPath:
    def test_gate_masks_refractory_rows(self):
        inputs = np.array([[10, 20, 30]], dtype=np.int64)
        cnt = np.array([0, 3, 0], dtype=np.int64)
        gated = dp.ArPath.gate(inputs, cnt)
        assert gated[0].tolist() == [10, 0, 30]

    def test_tick_saturates_at_zero(self):
        cnt = np.array([2, 1, 0], dtype=np.int64)
        assert dp.ArPath.tick(cnt).tolist() == [1, 0, 0]

    def test_no_multiplier_in_inventory(self):
        assert "mul" not in dp.ArPath.unit_inventory()


class TestInventories:
    def test_all_ten_datapaths_enumerated(self):
        assert len(dp.ALL_DATAPATHS) == 10

    def test_coba_embeds_cobe(self):
        cobe = dp.CobePath.unit_inventory()
        coba = dp.CobaPath.unit_inventory()
        for unit, count in cobe.items():
            assert coba.get(unit, 0) >= count

    def test_sbt_embeds_adt(self):
        adt = dp.AdtPath.unit_inventory()
        sbt = dp.SbtPath.unit_inventory()
        for unit, count in adt.items():
            assert sbt.get(unit, 0) >= count

    def test_only_exi_needs_the_exp_unit(self):
        for path in dp.ALL_DATAPATHS:
            if path is dp.ExiPath:
                assert path.unit_inventory().get("exp", 0) == 1
            else:
                assert path.unit_inventory().get("exp", 0) == 0
