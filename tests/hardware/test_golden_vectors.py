"""Golden-vector testbenches (the RTL-verification style of Sec VI-A).

``golden_vectors.json`` pins, for every Table III model, the exact
spike times and final raw membrane values produced by the folded-Flexon
model under a fixed deterministic stimulus. Any change to the
fixed-point semantics — rounding, operation ordering, constant
preparation, microcode scheduling — trips these tests, exactly like an
RTL regression suite. Both hardware designs are checked against the
same vectors (they are bit-identical by construction).

If a semantics change is *intentional*, regenerate the goldens with the
script documented at the bottom of this file.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.features import MODEL_FEATURES
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model

DT = 1e-4
GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_vectors.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _replay(name: str, folded: bool):
    model = create_model(name)
    compiled = FlexonCompiler().compile(model, DT)
    if folded:
        neuron = compiled.instantiate_folded(4)
    else:
        neuron = compiled.instantiate_flexon(4)
    rng = np.random.default_rng(2024)
    base = 40.0 if name in ("LIF", "LLIF", "SLIF") else 1.5
    n_types = model.parameters.n_synapse_types
    spikes = []
    for step in range(600):
        weights = (rng.random((n_types, 4)) < 0.08) * base
        if n_types > 1:
            weights[1] *= 0.2
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        fired = neuron.step(raw)
        for i in np.nonzero(fired)[0]:
            spikes.append([step, int(i)])
    if folded:
        final_v = [int(v) for v in neuron.regs[0]]
    else:
        final_v = [int(v) for v in neuron.state["v"]]
    return compiled.program.n_signals, final_v, spikes


@pytest.mark.parametrize("name", list(MODEL_FEATURES))
def test_golden_exists_for_every_model(name):
    assert name in GOLDEN


@pytest.mark.parametrize("name", list(MODEL_FEATURES))
def test_folded_matches_golden(name):
    signals, final_v, spikes = _replay(name, folded=True)
    golden = GOLDEN[name]
    assert signals == golden["signals"], "microprogram length changed"
    assert spikes == golden["spikes"], "spike times diverged from golden"
    assert final_v == golden["final_v_raw"], "final raw state diverged"


@pytest.mark.parametrize("name", ["LIF", "DLIF", "AdEx", "IF_cond_exp_gsfa_grr"])
def test_baseline_flexon_matches_same_golden(name):
    # The two designs are bit-identical, so one golden covers both.
    _, final_v, spikes = _replay(name, folded=False)
    assert spikes == GOLDEN[name]["spikes"]
    assert final_v == GOLDEN[name]["final_v_raw"]


def test_goldens_are_nontrivial():
    # Guard against a silently empty regeneration.
    assert all(len(entry["spikes"]) > 0 for entry in GOLDEN.values())


# Regeneration (run from the repo root, only for intentional changes):
#
#   python - <<'PY'
#   import json, numpy as np
#   from tests.hardware.test_golden_vectors import _replay, GOLDEN_PATH
#   from repro.features import MODEL_FEATURES
#   golden = {}
#   for name in MODEL_FEATURES:
#       signals, final_v, spikes = _replay(name, folded=True)
#       golden[name] = {"signals": signals, "final_v_raw": final_v,
#                       "spikes": spikes}
#   GOLDEN_PATH.write_text(json.dumps(golden, indent=1))
#   PY
