"""Tests for the array timing models and the Flexon compiler."""

import numpy as np
import pytest

from repro.errors import CompilationError, ConfigurationError
from repro.hardware.array import (
    FLEXON_CLOCK_HZ,
    FlexonArray,
    FoldedFlexonArray,
    NeuronArray,
)
from repro.hardware.compiler import FlexonCompiler, with_background_current
from repro.models import HodgkinHuxley, NativeIzhikevich
from repro.models.registry import create_model

DT = 1e-4


class TestFlexonArray:
    def test_default_configuration_matches_paper(self):
        array = FlexonArray()
        assert array.n_physical == 12
        assert array.clock_hz == 250e6

    def test_single_cycle_per_batch(self):
        array = FlexonArray()
        assert array.step_cycles(12) == 1
        assert array.step_cycles(13) == 2
        assert array.step_cycles(120) == 10

    def test_ignores_microprogram_length(self):
        array = FlexonArray()
        assert array.step_cycles(24, cycles_per_neuron=15) == 2

    def test_latency_includes_fixed_overhead(self):
        array = FlexonArray()
        assert array.step_latency_seconds(12) == pytest.approx(
            1 / FLEXON_CLOCK_HZ + 0.5e-6
        )

    def test_zero_neurons(self):
        assert FlexonArray().step_cycles(0) == 0


class TestFoldedArray:
    def test_default_configuration_matches_paper(self):
        array = FoldedFlexonArray()
        assert array.n_physical == 72
        assert array.clock_hz == 500e6

    def test_throughput_scales_with_signals(self):
        array = FoldedFlexonArray()
        lif = array.step_cycles(72, cycles_per_neuron=1)
        adex = array.step_cycles(72, cycles_per_neuron=11)
        assert adex > lif

    def test_pipeline_drain_cycle(self):
        array = FoldedFlexonArray()
        # one batch of 72 at II=1 -> 1 cycle + 1 drain
        assert array.step_cycles(72, cycles_per_neuron=1) == 2

    def test_folded_faster_than_flexon_for_short_programs(self):
        # DLIF: 7 signals -> folded wins; Destexhe AdEx (15 signals,
        # 3 synapse types) -> baseline Flexon wins. Section VI-C.
        flexon = FlexonArray()
        folded = FoldedFlexonArray()
        n = 7200
        assert folded.step_latency_seconds(
            n, cycles_per_neuron=7
        ) < flexon.step_latency_seconds(n)
        assert folded.step_latency_seconds(
            n, cycles_per_neuron=15
        ) > flexon.step_latency_seconds(n)

    def test_validation_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            NeuronArray(n_physical=0, clock_hz=1e6)
        with pytest.raises(ConfigurationError):
            NeuronArray(n_physical=1, clock_hz=0)
        with pytest.raises(ConfigurationError):
            FlexonArray().step_cycles(-1)


class TestCompiler:
    def test_supports_feature_models_only(self):
        compiler = FlexonCompiler()
        assert compiler.supports(create_model("AdEx"))
        assert not compiler.supports(HodgkinHuxley())
        assert not compiler.supports(NativeIzhikevich())

    def test_unsupported_model_raises_with_guidance(self):
        compiler = FlexonCompiler()
        with pytest.raises(CompilationError, match="HybridBackend"):
            compiler.compile(HodgkinHuxley(), DT)

    def test_compiled_model_carries_program_and_constants(self):
        compiled = FlexonCompiler().compile(create_model("DLIF"), DT)
        assert compiled.model_name == "DLIF"
        assert compiled.program.n_signals == 7
        assert compiled.cycles_per_neuron_folded == 8
        assert compiled.weight_scale == pytest.approx(0.005)

    def test_instantiate_both_designs(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        assert compiled.instantiate_flexon(4).n == 4
        assert compiled.instantiate_folded(4).n == 4


class TestBackgroundCurrent:
    """The Section VII-A workaround."""

    def test_adds_one_signal(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        augmented = with_background_current(compiled, i_bg=50.0)
        assert augmented.program.n_signals == compiled.program.n_signals + 1

    def test_background_current_drives_firing_without_input(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        # 300 current units * eps_m = 1.5 per step: fires immediately.
        augmented = with_background_current(compiled, i_bg=300.0)
        neuron = augmented.instantiate_folded(1)
        zeros = np.zeros((2, 1), dtype=np.int64)
        fired_any = any(neuron.step(zeros.copy())[0] for _ in range(50))
        assert fired_any

    def test_without_background_current_stays_silent(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)
        neuron = compiled.instantiate_folded(1)
        zeros = np.zeros((2, 1), dtype=np.int64)
        assert not any(neuron.step(zeros.copy())[0] for _ in range(50))

    def test_weaker_background_current_fires_slower(self):
        compiled = FlexonCompiler().compile(create_model("LIF"), DT)

        def rate(i_bg):
            neuron = with_background_current(
                compiled, i_bg
            ).instantiate_folded(1)
            zeros = np.zeros((2, 1), dtype=np.int64)
            return sum(int(neuron.step(zeros.copy())[0]) for _ in range(2000))

        # 150 units -> 0.75/step (fires every other step);
        # 400 units -> 2.0/step (fires every step).
        assert rate(150.0) < rate(400.0)
