"""The central hardware correctness tests.

Three properties, checked for every Table III model:

1. **Bit-exactness** — baseline Flexon and folded Flexon produce
   identical spikes *and* identical raw state at every step (the
   guarantee the Table V control-signal schedules must provide).
2. **Reference agreement** — the fixed-point hardware matches the
   float Euler reference to a high per-step spike agreement (the
   Section VI-A verification).
3. **No saturation** — on these stimuli, the chosen Q9.22 format never
   saturates (checked in strict mode at the datapath level via value
   range assertions).
"""

import numpy as np
import pytest

from repro.features import MODEL_FEATURES
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model

DT = 1e-4
ALL_MODELS = list(MODEL_FEATURES)
_CURRENT_MODELS = {"LIF", "LLIF", "SLIF"}


def _drive(name, steps=500, n=24, seed=11):
    """Run flexon + folded + reference side by side; return stats."""
    model = create_model(name)
    compiled = FlexonCompiler().compile(model, DT)
    flexon = compiled.instantiate_flexon(n)
    folded = compiled.instantiate_folded(n)
    reference = model.initial_state(n)
    rng = np.random.default_rng(seed)
    base = 40.0 if name in _CURRENT_MODELS else 1.5
    n_types = model.parameters.n_synapse_types
    stats = {
        "bit_exact": True,
        "agreement": 0,
        "hw_spikes": 0,
        "ref_spikes": 0,
        "max_abs_v": 0.0,
    }
    for _ in range(steps):
        weights = (rng.random((n_types, n)) < 0.08) * base
        if n_types > 1:
            weights[1] *= 0.2
        raw = fx_from_float(
            weights * compiled.weight_scale, FLEXON_FORMAT
        )
        fired_fx = flexon.step(raw.copy())
        fired_fd = folded.step(raw.copy())
        if not np.array_equal(fired_fx, fired_fd):
            stats["bit_exact"] = False
        fd_state = folded.float_state()
        fx_state = flexon.float_state()
        for key in fx_state:
            if not np.array_equal(fx_state[key], fd_state[key]):
                stats["bit_exact"] = False
        fired_ref = model.step(reference, weights.copy(), DT)
        stats["agreement"] += int((fired_fx == fired_ref).sum())
        stats["hw_spikes"] += int(fired_fx.sum())
        stats["ref_spikes"] += int(fired_ref.sum())
        stats["max_abs_v"] = max(
            stats["max_abs_v"], float(np.max(np.abs(fx_state["v"])))
        )
    stats["agreement"] /= steps * n
    return stats


@pytest.fixture(scope="module")
def driven():
    return {name: _drive(name) for name in ALL_MODELS}


@pytest.mark.parametrize("name", ALL_MODELS)
def test_flexon_and_folded_are_bit_identical(driven, name):
    assert driven[name]["bit_exact"], (
        f"{name}: folded microcode diverged from the baseline datapaths"
    )


@pytest.mark.parametrize("name", ALL_MODELS)
def test_hardware_matches_reference_spikes(driven, name):
    assert driven[name]["agreement"] >= 0.97, (
        f"{name}: only {driven[name]['agreement']:.3f} per-step agreement"
    )


@pytest.mark.parametrize("name", ALL_MODELS)
def test_spike_counts_close_to_reference(driven, name):
    hw = driven[name]["hw_spikes"]
    ref = driven[name]["ref_spikes"]
    assert abs(hw - ref) <= max(3, 0.05 * max(hw, ref)), (
        f"{name}: hw={hw} vs ref={ref}"
    )


@pytest.mark.parametrize("name", ALL_MODELS)
def test_models_actually_fire_under_test_stimulus(driven, name):
    # A silent model would make the agreement tests vacuous.
    assert driven[name]["hw_spikes"] > 0, f"{name} never fired"


@pytest.mark.parametrize("name", ALL_MODELS)
def test_membrane_stays_within_truncated_format(driven, name):
    # The truncate optimisation stores v in Q1.22 (|v| <= 2). Heavy
    # inhibition can legitimately push AdEx-family membranes onto the
    # -2 rail, where the storage format saturates; the invariant is
    # that values never escape the representable range.
    assert driven[name]["max_abs_v"] <= 2.0, (
        f"{name}: membrane escaped the truncated storage range"
    )


def test_equivalence_holds_across_time_steps():
    # The constants bake dt in; equivalence must hold for other dt too.
    for dt in (1e-3, 5e-4, 1e-4):
        model = create_model("AdEx")
        compiled = FlexonCompiler().compile(model, dt)
        flexon = compiled.instantiate_flexon(8)
        folded = compiled.instantiate_folded(8)
        rng = np.random.default_rng(0)
        for _ in range(200):
            weights = (rng.random((2, 8)) < 0.1) * 1.0
            raw = fx_from_float(
                weights * compiled.weight_scale, FLEXON_FORMAT
            )
            assert np.array_equal(
                flexon.step(raw.copy()), folded.step(raw.copy())
            )
