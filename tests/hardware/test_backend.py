"""Tests for the hardware network backends (incl. the hybrid path)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware.backend import (
    FlexonBackend,
    FoldedFlexonBackend,
    HybridBackend,
)
from repro.network import Network, PoissonStimulus, ReferenceBackend, Simulator

DT = 1e-4


def _net(model="DLIF", n=30, seed=0, weight=0.06):
    rng = np.random.default_rng(seed)
    net = Network("hw-net")
    pop = net.add_population("pop", n, model)
    net.connect("pop", "pop", probability=0.2, weight=weight, rng=rng)
    net.add_stimulus(
        PoissonStimulus(pop, rate_hz=600.0, weight=0.1, dt=DT, n_sources=10)
    )
    return net


class TestHardwareBackends:
    @pytest.mark.parametrize("backend_cls", [FlexonBackend, FoldedFlexonBackend])
    def test_runs_network_and_spikes(self, backend_cls):
        sim = Simulator(_net(), backend_cls(DT), dt=DT, seed=1)
        result = sim.run(400)
        assert result.total_spikes() > 0

    def test_flexon_and_folded_backends_agree_exactly(self):
        results = []
        for backend in (FlexonBackend(DT), FoldedFlexonBackend(DT)):
            sim = Simulator(_net(seed=3), backend, dt=DT, seed=4)
            result = sim.run(300)
            results.append(result.spikes.result("pop").spike_pairs())
        assert results[0] == results[1]

    def test_tracks_reference_closely(self):
        reference = Simulator(
            _net(seed=5), ReferenceBackend("Euler"), dt=DT, seed=6
        ).run(300)
        hardware = Simulator(
            _net(seed=5), FlexonBackend(DT), dt=DT, seed=6
        ).run(300)
        ref = reference.total_spikes()
        hw = hardware.total_spikes()
        assert abs(ref - hw) <= max(5, 0.1 * max(ref, hw))

    def test_dt_mismatch_rejected(self):
        backend = FlexonBackend(DT)
        backend.prepare(_net())
        with pytest.raises(SimulationError):
            backend.advance("pop", np.zeros((2, 30)), 1e-3)

    def test_unknown_population_rejected(self):
        backend = FlexonBackend(DT)
        backend.prepare(_net())
        with pytest.raises(SimulationError):
            backend.advance("ghost", np.zeros((2, 30)), DT)

    def test_state_of_returns_float_view(self):
        backend = FoldedFlexonBackend(DT)
        backend.prepare(_net())
        state = backend.state_of("pop")
        assert state["v"].dtype == np.float64
        assert "g0" in state

    def test_cycles_per_neuron_reported(self):
        flexon = FlexonBackend(DT)
        folded = FoldedFlexonBackend(DT)
        net = _net()
        flexon.prepare(net)
        folded.prepare(net)
        assert flexon.cycles_per_neuron("pop") == 1
        assert folded.cycles_per_neuron("pop") == 8  # DLIF: 7 signals + 1


class TestHybridBackend:
    """Section VII-A: mixed AdEx + HH networks."""

    def _mixed_net(self, seed=0):
        rng = np.random.default_rng(seed)
        net = Network("mixed")
        adex = net.add_population("adex", 20, "AdEx")
        net.add_population("hh", 5, "HH")
        net.connect("adex", "adex", probability=0.2, weight=0.1, rng=rng)
        net.connect("adex", "hh", probability=0.5, weight=3.0, rng=rng)
        net.add_stimulus(
            PoissonStimulus(adex, 700.0, 0.15, dt=DT, n_sources=10)
        )
        return net

    def test_offloads_supported_populations_only(self):
        backend = HybridBackend(DT)
        backend.prepare(self._mixed_net())
        assert backend.offloaded == {"adex": True, "hh": False}
        assert backend.offloaded_fraction() == pytest.approx(0.8)

    def test_mixed_network_simulates(self):
        sim = Simulator(self._mixed_net(), HybridBackend(DT), dt=DT, seed=2)
        result = sim.run(400)
        assert result.spikes.result("adex").n_spikes > 0

    def test_hh_population_state_lives_in_software(self):
        backend = HybridBackend(DT)
        backend.prepare(self._mixed_net())
        state = backend.state_of("hh")
        assert "m" in state  # HH gates exist only in the software model

    def test_pure_supported_network_fully_offloaded(self):
        backend = HybridBackend(DT)
        backend.prepare(_net())
        assert backend.offloaded_fraction() == 1.0

    def test_hybrid_matches_folded_for_supported_populations(self):
        hybrid = Simulator(
            _net(seed=7), HybridBackend(DT, folded=True), dt=DT, seed=8
        ).run(200)
        folded = Simulator(
            _net(seed=7), FoldedFlexonBackend(DT), dt=DT, seed=8
        ).run(200)
        assert (
            hybrid.spikes.result("pop").spike_pairs()
            == folded.spikes.result("pop").spike_pairs()
        )
