"""Tests for the ten Table I workloads."""

import numpy as np
import pytest

from repro.errors import UnknownModelError
from repro.network import ReferenceBackend, Simulator
from repro.workloads import (
    WORKLOADS,
    build_workload,
    get_spec,
)
from repro.workloads.spec import WorkloadSpec, scaled_probability

DT = 1e-4

#: Table I ground truth: (neurons, synapses, model, solver, framework).
TABLE1 = {
    "Brette et al.": (2_400, 2_400_000, "DLIF", "RKF45", "NEST"),
    "Brunel": (5_000, 2_500_000, "IF_psc_alpha", "Euler", "NEST"),
    "Destexhe-LTS": (500, 20_000, "AdEx", "RKF45", "NEST"),
    "Destexhe-UpDown": (2_500, 100_000, "AdEx", "RKF45", "NEST"),
    "Izhikevich": (10_000, 10_000_000, "Izhikevich", "Euler", "GeNN"),
    "Muller et al.": (1_728, 762_000, "IF_cond_exp_gsfa_grr", "RKF45", "NEST"),
    "Nowotny et al.": (1_220, 202_000, "Izhikevich", "Euler", "GeNN"),
    "Potjans-Diesmann": (8_000, 3_000_000, "DSRM0", "Euler", "NEST"),
    "Vogels et al.": (10_000, 1_920_000, "DLIF", "RKF45", "NEST"),
    "Vogels-Abbott": (4_000, 320_000, "DLIF", "RKF45", "NEST"),
}


class TestSpecs:
    def test_exactly_ten_workloads(self):
        assert len(WORKLOADS) == 10

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_table1_rows(self, name):
        spec = get_spec(name)
        neurons, synapses, model, solver, framework = TABLE1[name]
        assert spec.paper_neurons == neurons
        assert spec.paper_synapses == synapses
        assert spec.model_name == model
        assert spec.solver == solver
        assert spec.framework == framework

    def test_destexhe_uses_three_synapse_types(self):
        assert get_spec("Destexhe-LTS").n_synapse_types == 3
        assert get_spec("Destexhe-UpDown").n_synapse_types == 3

    def test_scaled_counts(self):
        spec = get_spec("Brunel")
        assert spec.scaled_neurons(1.0) == 5_000
        assert spec.scaled_neurons(0.1) == 500
        # Synapses scale quadratically so probability stays constant.
        assert spec.scaled_synapses(0.1) == pytest.approx(25_000, rel=0.01)

    def test_scale_floor(self):
        spec = get_spec("Destexhe-LTS")
        assert spec.scaled_neurons(1e-6) >= 20

    def test_connection_probability(self):
        spec = get_spec("Izhikevich")
        assert spec.connection_probability() == pytest.approx(0.1)

    def test_fan_in(self):
        assert get_spec("Izhikevich").fan_in() == pytest.approx(1000.0)

    def test_scaled_probability_floored_for_tiny_networks(self):
        spec = get_spec("Destexhe-LTS")
        assert scaled_probability(spec, 0.01) > spec.connection_probability()

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownModelError):
            get_spec("nope")
        with pytest.raises(UnknownModelError):
            build_workload("nope")

    def test_spec_validation(self):
        with pytest.raises(Exception):
            WorkloadSpec("x", 0, 1, "LIF", "Euler", "NEST")
        with pytest.raises(Exception):
            WorkloadSpec("x", 1, 1, "LIF", "RK4", "NEST")
        with pytest.raises(Exception):
            WorkloadSpec("x", 1, 1, "LIF", "Euler", "CUDA")


class TestBuilders:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_builds_at_small_scale(self, name):
        network = build_workload(name, scale=0.04, seed=1)
        spec = get_spec(name)
        assert network.n_neurons >= 20
        assert network.n_synapses > 0
        assert network.stimuli, "every workload needs external drive"
        model = next(iter(network.populations.values())).model
        assert model.name == spec.model_name

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_fires_at_biological_rates(self, name):
        network = build_workload(name, scale=0.05, seed=1)
        simulator = Simulator(
            network, ReferenceBackend("Euler"), dt=DT, seed=2
        )
        result = simulator.run(1000)
        rate = result.total_spikes() / network.n_neurons / (1000 * DT)
        assert 0.5 <= rate <= 200.0, f"{name} fires at {rate:.1f} Hz"

    def test_build_is_deterministic(self):
        a = build_workload("Brunel", scale=0.02, seed=7)
        b = build_workload("Brunel", scale=0.02, seed=7)
        assert a.n_synapses == b.n_synapses

    def test_seed_changes_topology(self):
        a = build_workload("Brunel", scale=0.02, seed=7)
        b = build_workload("Brunel", scale=0.02, seed=8)
        assert (
            a.projections[0].post_idx.tolist()
            != b.projections[0].post_idx.tolist()
        )

    def test_scaling_grows_network(self):
        small = build_workload("Vogels-Abbott", scale=0.02, seed=0)
        large = build_workload("Vogels-Abbott", scale=0.06, seed=0)
        assert large.n_neurons > small.n_neurons
        assert large.n_synapses > small.n_synapses

    def test_potjans_has_eight_layers(self):
        network = build_workload("Potjans-Diesmann", scale=0.1, seed=0)
        assert len(network.populations) == 8
        assert set(network.populations) == {
            "L23e", "L23i", "L4e", "L4i", "L5e", "L5i", "L6e", "L6i",
        }

    def test_nowotny_has_olfactory_structure(self):
        network = build_workload("Nowotny et al.", scale=0.1, seed=0)
        assert set(network.populations) == {"pn", "kc", "ln"}
        # Kenyon cells outnumber projection neurons.
        assert network.populations["kc"].n > network.populations["pn"].n

    def test_destexhe_models_carry_three_synapse_types(self):
        network = build_workload("Destexhe-LTS", scale=0.1, seed=0)
        model = next(iter(network.populations.values())).model
        assert model.parameters.n_synapse_types == 3

    def test_inhibitory_weights_negative_for_non_rev_models(self):
        # DSRM0 (Potjans) has no reversal voltages: inhibition must use
        # negative weights.
        network = build_workload("Potjans-Diesmann", scale=0.1, seed=0)
        inhibitory = [
            p for p in network.projections if p.pre.name.endswith("i")
        ]
        assert inhibitory
        for projection in inhibitory:
            assert np.all(projection.weights <= 0.0)

    def test_inhibitory_weights_positive_for_rev_models(self):
        # DLIF inhibition works through the reversal voltage, so the
        # conductance weights themselves are positive.
        network = build_workload("Vogels-Abbott", scale=0.05, seed=0)
        inh = [p for p in network.projections if p.syn_type == 1]
        assert inh
        for projection in inh:
            assert np.all(projection.weights >= 0.0)
