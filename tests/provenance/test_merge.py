"""Merging rings: clock-offset math, track layout, flow arrows."""

import pytest

from repro.provenance import (
    ProcessRing,
    SpanRecorder,
    TraceContext,
    barrier_recv_id,
    barrier_send_id,
    estimate_offset,
    merge_rings,
)


def _spans_by_tid(document):
    out = {}
    for event in document["traceEvents"]:
        if event["ph"] == "X":
            out.setdefault(event["tid"], []).append(event)
    return out


def _track_names(document):
    return [
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["name"] == "thread_name"
    ]


class TestEstimateOffset:
    def test_no_samples_means_zero(self):
        assert estimate_offset([]) == 0.0

    def test_single_sample_lower_bound(self):
        # worker clock 5s ahead, 0.1s latency: s - r = 5 - 0.1
        assert estimate_offset([(105.0, 100.1)]) == pytest.approx(4.9)

    def test_max_over_samples_tightens_the_bound(self):
        # the smallest-latency sample gives the tightest lower bound
        samples = [(105.0, 100.5), (106.0, 101.05), (107.0, 102.3)]
        assert estimate_offset(samples) == 106.0 - 101.05

    def test_negative_offset(self):
        assert estimate_offset([(99.0, 100.0)]) == -1.0


class TestBarrierIds:
    def test_send_and_recv_ids_never_collide(self):
        seen = set()
        for epoch in range(4):
            for shard in range(3):
                seen.add(barrier_send_id(epoch, shard, 3))
                seen.add(barrier_recv_id(epoch, shard, 3))
        assert len(seen) == 4 * 3 * 2


class TestProcessRing:
    def test_dict_round_trip(self):
        ring = ProcessRing(
            label="shard0#a0", pid=42, offset=0.25,
            spans=[{"name": "w", "cat": "window", "ts": 1.0, "dur": 0.5}],
            dropped=3,
        )
        assert ProcessRing.from_dict(ring.to_dict()) == ring

    def test_from_dump_uses_context_label(self):
        recorder = SpanRecorder(TraceContext(run_id="r", shard_id=2))
        recorder.record("w", "window", 1.0, 0.5)
        ring = ProcessRing.from_dump(recorder.dump(), offset=0.125)
        assert ring.label == "shard2#a0"
        assert ring.offset == 0.125
        assert len(ring.spans) == 1


class TestMergeRings:
    def test_one_track_per_ring_plus_process_name(self):
        rings = [
            ProcessRing("coordinator", pid=1, spans=[
                {"name": "barrier e0", "cat": "barrier", "ts": 10.0,
                 "dur": 0.1},
            ]),
            ProcessRing("shard0#a0", pid=2, spans=[
                {"name": "window e0", "cat": "window", "ts": 9.9,
                 "dur": 0.2},
            ]),
        ]
        document = merge_rings(rings, run_id="run-m", network="Brunel")
        assert document["otherData"]["run_id"] == "run-m"
        assert document["otherData"]["n_tracks"] == 2
        names = _track_names(document)
        assert names == ["coordinator (pid 1)", "shard0#a0 (pid 2)"]
        process_names = [
            event for event in document["traceEvents"]
            if event["name"] == "process_name"
        ]
        assert process_names[0]["args"]["name"] == "repro:Brunel"

    def test_offset_correction_aligns_clocks(self):
        # Same instant on both clocks; the worker clock reads 100s
        # ahead. After correction both spans start at ts 0.
        rings = [
            ProcessRing("parent", spans=[
                {"name": "a", "cat": "phase", "ts": 50.0, "dur": 1.0},
            ]),
            ProcessRing("worker", offset=100.0, spans=[
                {"name": "b", "cat": "phase", "ts": 150.0, "dur": 1.0},
            ]),
        ]
        document = merge_rings(rings)
        spans = _spans_by_tid(document)
        assert spans[1][0]["ts"] == spans[2][0]["ts"] == 0.0

    def test_per_track_timestamps_are_monotone(self):
        # Out-of-order input spans are sorted per ring before emission.
        ring = ProcessRing("p", spans=[
            {"name": "late", "cat": "phase", "ts": 5.0, "dur": 0.1},
            {"name": "early", "cat": "phase", "ts": 1.0, "dur": 0.1},
        ])
        (track,) = _spans_by_tid(merge_rings([ring])).values()
        timestamps = [event["ts"] for event in track]
        assert timestamps == sorted(timestamps)

    def test_flow_arrows_point_forward_in_time(self):
        send_id = barrier_send_id(0, 0, 1)
        rings = [
            ProcessRing("shard0#a0", spans=[
                {"name": "window e0", "cat": "window", "ts": 0.0,
                 "dur": 1.0, "flow_out": [send_id]},
            ]),
            ProcessRing("coordinator", spans=[
                {"name": "barrier e0", "cat": "barrier", "ts": 1.2,
                 "dur": 0.3, "flow_in": [send_id]},
            ]),
        ]
        events = merge_rings(rings)["traceEvents"]
        start = next(e for e in events if e["ph"] == "s")
        finish = next(e for e in events if e["ph"] == "f")
        assert start["id"] == finish["id"] == send_id
        assert finish["bp"] == "e"
        assert start["ts"] <= finish["ts"]

    def test_dropped_spans_are_summed(self):
        rings = [
            ProcessRing("a", dropped=2),
            ProcessRing("b", dropped=3),
        ]
        assert merge_rings(rings)["otherData"]["dropped_spans"] == 5

    def test_empty_rings_produce_a_valid_document(self):
        document = merge_rings([])
        assert document["traceEvents"][0]["name"] == "process_name"
        assert document["otherData"]["n_tracks"] == 0
