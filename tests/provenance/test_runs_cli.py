"""``repro runs``: list/show/diff/trace against a synthetic ledger."""

import json

import pytest

from repro.cli import main
from repro.provenance import append_entry, make_entry


@pytest.fixture()
def ledger(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    append_entry(path, make_entry(
        "run", "run-aaaa11112222",
        {"workload": "Brunel", "seed": 3},
        workload="Brunel", backend="reference", shards=0, steps=300,
        scale=0.05, seed=3, dt=1e-4, spike_digest="a" * 64,
        outcome="completed", duration=2.0,
    ))
    append_entry(path, make_entry(
        "run", "run-bbbb33334444",
        {"workload": "Brunel", "seed": 3, "shards": 2},
        workload="Brunel", backend="reference", shards=2, steps=300,
        scale=0.05, seed=3, dt=1e-4, spike_digest="a" * 64,
        outcome="completed", duration=3.0,
        trace_rings=[
            {
                "label": "coordinator", "pid": 1, "offset": 0.0,
                "spans": [
                    {"name": "barrier e0", "cat": "barrier", "ts": 1.0,
                     "dur": 0.1, "flow_in": [0]},
                ],
                "dropped": 0,
            },
            {
                "label": "shard0#a0", "pid": 2, "offset": 0.5,
                "spans": [
                    {"name": "window e0", "cat": "window", "ts": 1.2,
                     "dur": 0.3, "flow_out": [0]},
                ],
                "dropped": 0,
            },
        ],
    ))
    append_entry(path, make_entry(
        "run", "run-cccc55556666",
        {"workload": "Brunel", "seed": 99},
        workload="Brunel", backend="reference", shards=0, steps=300,
        scale=0.05, seed=99, dt=1e-4, spike_digest="c" * 64,
        outcome="completed", duration=2.0,
    ))
    return path


class TestList:
    def test_lists_all_runs(self, ledger, capsys):
        assert main(["runs", "--ledger", ledger, "list"]) == 0
        out = capsys.readouterr().out
        assert "run-aaaa11112222" in out
        assert "run-bbbb33334444" in out
        assert "3 of 3 run(s)" in out

    def test_kind_filter(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "list", "--kind", "sweep"]
        ) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_empty_ledger(self, tmp_path, capsys):
        path = str(tmp_path / "absent.jsonl")
        assert main(["runs", "--ledger", path, "list"]) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_json_emits_one_entry_per_line_newest_first(
        self, ledger, capsys
    ):
        assert main(["runs", "--ledger", ledger, "list", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        entries = [json.loads(line) for line in lines]
        assert [e["run_id"] for e in entries] == [
            "run-cccc55556666", "run-bbbb33334444", "run-aaaa11112222",
        ]
        # Full machine-readable entries, not the table's summary rows.
        assert entries[0]["spike_digest"] == "c" * 64

    def test_json_respects_limit_and_kind_filter(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "list", "--json", "--limit", "1"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert main(
            ["runs", "--ledger", ledger, "list", "--json",
             "--kind", "sweep"]
        ) == 0
        assert capsys.readouterr().out.strip() == ""


class TestShow:
    def test_show_by_prefix_prints_entry_json(self, ledger, capsys):
        assert main(["runs", "--ledger", ledger, "show", "run-aaaa"]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["run_id"] == "run-aaaa11112222"
        assert entry["spike_digest"] == "a" * 64

    def test_show_omits_rings_unless_full(self, ledger, capsys):
        assert main(["runs", "--ledger", ledger, "show", "run-bbbb"]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert "omitted" in entry["trace_rings"]
        assert main(
            ["runs", "--ledger", ledger, "show", "run-bbbb", "--full"]
        ) == 0
        entry = json.loads(capsys.readouterr().out)
        assert len(entry["trace_rings"]) == 2

    def test_unknown_id_exits_2(self, ledger, capsys):
        assert main(["runs", "--ledger", ledger, "show", "run-zz"]) == 2
        assert "no ledger entry" in capsys.readouterr().err


class TestDiff:
    def test_matching_digests_exit_0(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "diff", "run-aaaa", "run-bbbb"]
        ) == 0
        out = capsys.readouterr().out
        assert "spike digests match" in out
        assert "shards" in out  # benign difference still listed

    def test_digest_divergence_exits_1(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "diff", "run-aaaa", "run-cccc"]
        ) == 1
        assert "SPIKE DIGEST DIVERGENCE" in capsys.readouterr().out

    def test_ambiguous_prefix_exits_2(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "diff", "run", "run-aaaa"]
        ) == 2
        assert "ambiguous" in capsys.readouterr().err


class TestTrace:
    def test_remerges_recorded_rings(self, ledger, tmp_path, capsys):
        out_path = str(tmp_path / "merged.json")
        assert main(
            ["runs", "--ledger", ledger, "trace", "run-bbbb",
             "-o", out_path]
        ) == 0
        document = json.load(open(out_path))
        tracks = [
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "thread_name"
        ]
        assert tracks == ["coordinator (pid 1)", "shard0#a0 (pid 2)"]
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"s", "f"} <= phases  # the barrier flow arrow survived
        assert document["otherData"]["run_id"] == "run-bbbb33334444"

    def test_entry_without_rings_exits_2(self, ledger, capsys):
        assert main(
            ["runs", "--ledger", ledger, "trace", "run-aaaa"]
        ) == 2
        assert "no trace rings" in capsys.readouterr().err
