"""SpanRecorder rings, sidecar dual exit path, and the phase hook."""

import json
import os

from repro.provenance import SpanRecorder, TraceContext
from repro.provenance.spans import SPANS_SCHEMA, PhaseSpanHook


class TestRing:
    def test_record_returns_the_span(self):
        recorder = SpanRecorder()
        span = recorder.record("window e0", "window", ts=10.0, dur=0.5)
        assert span == {
            "name": "window e0", "cat": "window", "ts": 10.0, "dur": 0.5,
        }

    def test_optional_keys_only_when_set(self):
        recorder = SpanRecorder()
        span = recorder.record(
            "exchange e1", "exchange", 1.0, 0.1,
            args={"epoch": 1}, flow_out=[4], flow_in=[5],
        )
        assert span["args"] == {"epoch": 1}
        assert span["flow_out"] == [4]
        assert span["flow_in"] == [5]
        bare = recorder.record("bare", "phase", 2.0, 0.1)
        assert "args" not in bare and "flow_out" not in bare

    def test_ring_evicts_oldest_and_counts_drops(self):
        recorder = SpanRecorder(max_spans=3)
        for index in range(5):
            recorder.record(f"s{index}", "phase", float(index), 0.1)
        assert [span["name"] for span in recorder.spans] == [
            "s2", "s3", "s4",
        ]
        assert recorder.total_spans == 5
        assert recorder.dropped_spans == 2

    def test_dump_carries_schema_pid_and_context(self):
        context = TraceContext(run_id="run-z", shard_id=1, attempt=2)
        recorder = SpanRecorder(context)
        recorder.record("a", "phase", 0.0, 0.1)
        dump = recorder.dump()
        assert dump["schema"] == SPANS_SCHEMA == "repro-spans/1"
        assert dump["pid"] == os.getpid()
        assert dump["context"]["run_id"] == "run-z"
        assert dump["context"]["shard_id"] == 1
        assert len(dump["spans"]) == 1
        json.dumps(dump)  # pipe/JSON-safe


class TestSidecar:
    def test_sync_writes_and_load_dump_reads(self, tmp_path):
        path = str(tmp_path / "ring.spans.json")
        recorder = SpanRecorder(
            TraceContext(run_id="run-s"), sidecar_path=path
        )
        recorder.record("a", "phase", 1.0, 0.2)
        recorder.sync(force=True)
        dump = SpanRecorder.load_dump(path)
        assert dump is not None
        assert dump["context"]["run_id"] == "run-s"
        assert dump["spans"][0]["name"] == "a"

    def test_sync_is_throttled_without_force(self, tmp_path):
        path = str(tmp_path / "ring.spans.json")
        recorder = SpanRecorder(sidecar_path=path, sync_interval=3600.0)
        recorder.record("a", "phase", 1.0, 0.2)
        recorder.sync(force=True)
        recorder.record("b", "phase", 2.0, 0.2)
        recorder.sync()  # throttled: within the interval
        assert len(SpanRecorder.load_dump(path)["spans"]) == 1
        recorder.sync(force=True)
        assert len(SpanRecorder.load_dump(path)["spans"]) == 2

    def test_sync_without_sidecar_is_a_noop(self):
        SpanRecorder().sync(force=True)  # must not raise

    def test_load_dump_missing_file(self, tmp_path):
        assert SpanRecorder.load_dump(str(tmp_path / "absent.json")) is None

    def test_load_dump_rejects_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"schema": "repro-spans/1", "spans": [')
        assert SpanRecorder.load_dump(str(path)) is None

    def test_load_dump_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"schema": "repro-flight/1"}))
        assert SpanRecorder.load_dump(str(path)) is None


class TestPhaseSpanHook:
    def test_phases_become_spans(self):
        recorder = SpanRecorder()
        hook = PhaseSpanHook(recorder)
        hook.on_phase("neuron", step=7, seconds=0.25, operations=100)
        (span,) = recorder.spans
        assert span["name"] == "neuron"
        assert span["cat"] == "phase"
        assert span["dur"] == 0.25
        assert span["args"] == {"step": 7}

    def test_population_spans_stay_opt_in(self):
        # Kernel spans are TraceHook's job; the provenance ring must
        # not override on_population, or the simulator would start
        # paying the per-population clock reads on every sharded run.
        from repro.engine.hooks import PhaseHook

        assert PhaseSpanHook.on_population is PhaseHook.on_population
