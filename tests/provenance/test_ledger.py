"""The run ledger: atomic appends, torn lines, lookup, diff."""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.io import append_jsonl, load_jsonl
from repro.provenance import (
    LEDGER_SCHEMA,
    append_entry,
    config_digest,
    diff_entries,
    find_entry,
    load_ledger,
    make_entry,
    runs_document,
    summarize_entry,
)


def _entry(run_id="run-a", **overrides):
    kwargs = dict(
        workload="Brunel", backend="reference", shards=0, steps=100,
        scale=0.05, seed=3, dt=1e-4, spike_digest="d" * 64,
        outcome="completed", duration=1.5,
    )
    kwargs.update(overrides)
    return make_entry("run", run_id, {"seed": kwargs["seed"]}, **kwargs)


class TestConfigDigest:
    def test_key_order_is_canonical(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )

    def test_value_changes_change_the_digest(self):
        assert config_digest({"seed": 1}) != config_digest({"seed": 2})

    def test_non_json_values_stringify(self):
        config_digest({"path": object()})  # must not raise


class TestMakeEntry:
    def test_schema_and_required_fields(self):
        entry = _entry()
        assert entry["schema"] == LEDGER_SCHEMA == "repro-ledger/1"
        assert entry["run_id"] == "run-a"
        assert entry["kind"] == "run"
        assert entry["config_digest"] == config_digest(entry["config"])
        json.dumps(entry)

    def test_empty_artifacts_are_filtered(self):
        entry = _entry()
        entry2 = make_entry(
            "run", "run-b", {},
            artifacts={"trace": None, "stats_json": "s.json", "x": ""},
        )
        assert entry2["artifacts"] == {"stats_json": "s.json"}
        assert entry["artifacts"] == {}

    def test_trace_rings_key_only_when_given(self):
        assert "trace_rings" not in _entry()
        with_rings = make_entry(
            "run", "run-c", {}, trace_rings=[{"label": "p", "spans": []}]
        )
        assert len(with_rings["trace_rings"]) == 1


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, _entry("run-1"))
        append_entry(path, _entry("run-2"))
        entries = load_ledger(path)
        assert [e["run_id"] for e in entries] == ["run-1", "run-2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry(str(path), _entry("run-1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-ledger/1", "run_id": "run-t')
        entries = load_ledger(str(path))
        assert [e["run_id"] for e in entries] == ["run-1"]

    def test_foreign_schema_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_jsonl(path, {"schema": "repro-bench/1", "x": 1})
        append_entry(path, _entry("run-1"))
        assert len(load_ledger(path)) == 1

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        per_thread, threads = 25, 8

        def writer(worker):
            for index in range(per_thread):
                append_entry(path, _entry(f"run-{worker}-{index}"))

        pool = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        entries = load_ledger(path)
        assert len(entries) == per_thread * threads
        assert len({e["run_id"] for e in entries}) == per_thread * threads


class TestLoadJsonl:
    def test_blank_and_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('\n{"a": 1}\nnot json\n[1, 2]\n{"b": 2}\n')
        assert load_jsonl(str(path)) == [{"a": 1}, {"b": 2}]


class TestFindEntry:
    def test_exact_match(self):
        entries = [_entry("run-aa"), _entry("run-ab")]
        assert find_entry(entries, "run-ab")["run_id"] == "run-ab"

    def test_unique_prefix(self):
        entries = [_entry("run-aa11"), _entry("run-ab22")]
        assert find_entry(entries, "run-ab")["run_id"] == "run-ab22"

    def test_repeated_id_resolves_to_latest(self):
        old = _entry("run-aa", outcome="failed")
        new = _entry("run-aa")
        assert find_entry([old, new], "run-aa")["outcome"] == "completed"

    def test_ambiguous_prefix_lists_candidates(self):
        entries = [_entry("run-aa11"), _entry("run-aa22")]
        with pytest.raises(ReproError, match="run-aa11.*run-aa22"):
            find_entry(entries, "run-aa")

    def test_no_match_is_an_error(self):
        with pytest.raises(ReproError, match="no ledger entry"):
            find_entry([_entry("run-aa")], "run-zz")


class TestDiffEntries:
    def test_identical_entries_have_no_differences(self):
        entry = _entry()
        assert diff_entries(entry, entry) == []

    def test_digest_divergence_is_reported(self):
        a = _entry(spike_digest="a" * 64)
        b = _entry(spike_digest="b" * 64)
        fields = [field for field, _, _ in diff_entries(a, b)]
        assert fields == ["spike_digest"]

    def test_benign_and_alarming_fields_both_surface(self):
        a = _entry(backend="reference", shards=0)
        b = _entry(backend="reference", shards=2)
        fields = [field for field, _, _ in diff_entries(a, b)]
        assert "shards" in fields


class TestRunsDocument:
    def test_newest_first_and_limit(self):
        entries = [_entry(f"run-{i}") for i in range(3)]
        entries[0]["ts"], entries[1]["ts"], entries[2]["ts"] = 1.0, 3.0, 2.0
        document = runs_document(entries, limit=2)
        assert document["n_runs"] == 3
        assert [row["run_id"] for row in document["runs"]] == [
            "run-1", "run-2",
        ]

    def test_summaries_truncate_digests(self):
        row = summarize_entry(_entry(spike_digest="e" * 64))
        assert row["spike_digest"] == "e" * 12
        assert row["run_id"] == "run-a"

    def test_summary_tolerates_missing_digests(self):
        row = summarize_entry(make_entry("run", "run-x", {}))
        assert row["spike_digest"] is None
