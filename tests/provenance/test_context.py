"""TraceContext: the correlation block on the worker-init wire."""

from repro.provenance import TraceContext


class TestPayloadRoundTrip:
    def test_full_round_trip(self):
        context = TraceContext(
            run_id="run-abc123",
            job_id="Brunel",
            shard_id=None,
            attempt=2,
            parent_span="job:Brunel#a2",
        )
        rebuilt = TraceContext.from_payload(context.to_payload())
        assert rebuilt == context

    def test_sharded_round_trip(self):
        context = TraceContext(run_id="run-x", shard_id=3, attempt=1)
        rebuilt = TraceContext.from_payload(context.to_payload())
        assert rebuilt.shard_id == 3
        assert rebuilt.attempt == 1

    def test_missing_payload_tolerated(self):
        context = TraceContext.from_payload(None)
        assert context.run_id == ""
        assert context.shard_id is None
        assert context.attempt == 0

    def test_partial_payload_tolerated(self):
        context = TraceContext.from_payload({"run_id": "run-y"})
        assert context.run_id == "run-y"
        assert context.job_id is None
        assert context.parent_span is None


class TestTrackLabel:
    def test_shard_label(self):
        assert TraceContext("r", shard_id=1, attempt=0).track_label == (
            "shard1#a0"
        )

    def test_shard_zero_is_a_shard(self):
        # shard_id 0 must not fall through to the generic label
        assert TraceContext("r", shard_id=0).track_label == "shard0#a0"

    def test_job_label(self):
        label = TraceContext("r", job_id="Vogels", attempt=2).track_label
        assert label == "worker:Vogels#a2"

    def test_anonymous_label(self):
        assert TraceContext("r").track_label == "worker#a0"
