"""Tests: graceful interrupt = clean stop + checkpoint + partial stats."""

import signal

import numpy as np
import pytest

from repro.engine.hooks import PhaseHook
from repro.errors import RunInterrupted
from repro.network.backends import ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PoissonStimulus
from repro.reliability import Checkpoint
from repro.supervision import (
    EXIT_CODES,
    InterruptHook,
    graceful_signals,
    spike_digest,
)

DT = 1e-4
STEPS = 120
STOP_AT = 50


def _network():
    rng = np.random.default_rng(21)
    network = Network("int-net")
    exc = network.add_population("exc", 30, "DLIF")
    network.connect(
        "exc", "exc", probability=0.2, weight=0.05, syn_type=0, rng=rng
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=900.0, weight=0.09, dt=DT, n_sources=8)
    )
    return network


def _simulator():
    return Simulator(_network(), ReferenceBackend("Euler"), dt=DT, seed=5)


class _RequestAt(PhaseHook):
    """Calls ``hook.request`` at a chosen step (a signal stand-in)."""

    def __init__(self, hook, step, signal_name="SIGINT"):
        self.hook = hook
        self.step = step
        self.signal_name = signal_name

    def on_step_start(self, step):
        if step == self.step:
            self.hook.request(self.signal_name)


class TestInterruptHook:
    def _interrupt_run(self, tmp_path, signal_name="SIGINT"):
        simulator = _simulator()
        path = str(tmp_path / "final.ckpt")
        hook = InterruptHook(simulator, checkpoint_path=path)
        requester = _RequestAt(hook, STOP_AT, signal_name)
        with pytest.raises(RunInterrupted) as excinfo:
            simulator.run(STEPS, hooks=[requester, hook])
        return hook, excinfo.value, path

    def test_raises_at_the_requested_boundary(self, tmp_path):
        hook, error, _ = self._interrupt_run(tmp_path)
        assert error.signal_name == "SIGINT"
        assert error.step == STOP_AT

    def test_partial_stats_document(self, tmp_path):
        hook, _, path = self._interrupt_run(tmp_path, "SIGTERM")
        stats = hook.partial_stats
        assert stats["schema"] == "repro-run-stats/2"
        assert stats["partial"] is True
        assert stats["n_steps"] == STOP_AT
        assert stats["interrupted"] == {
            "signal": "SIGTERM",
            "step": STOP_AT,
            "exit_code": 143,
            "checkpoint": path,
        }
        assert stats["phases"]  # real per-phase totals, not empty

    def test_checkpoint_resumes_bit_identically(self, tmp_path):
        _, _, path = self._interrupt_run(tmp_path)

        resumed = _simulator()
        checkpoint = Checkpoint.load(path)
        checkpoint.restore(resumed)
        assert resumed.current_step == STOP_AT
        result = resumed.run(
            STEPS - STOP_AT, spikes=checkpoint.seed_recorder()
        )

        baseline = _simulator().run(STEPS)
        assert spike_digest(result.spikes) == spike_digest(baseline.spikes)

    def test_no_checkpoint_path_skips_checkpoint(self):
        simulator = _simulator()
        hook = InterruptHook(simulator, checkpoint_path=None)
        with pytest.raises(RunInterrupted):
            simulator.run(STEPS, hooks=[_RequestAt(hook, STOP_AT), hook])
        assert hook.checkpoint_written is None
        assert hook.partial_stats["interrupted"]["checkpoint"] is None


class TestGracefulSignals:
    def test_first_signal_requests_graceful_stop(self):
        hook = InterruptHook(_simulator())
        with graceful_signals(hook):
            signal.raise_signal(signal.SIGINT)
            assert hook.requested == "SIGINT"

    def test_second_signal_forces_exit(self):
        hook = InterruptHook(_simulator())
        try:
            with graceful_signals(hook):
                signal.raise_signal(signal.SIGINT)
                with pytest.raises(KeyboardInterrupt):
                    signal.raise_signal(signal.SIGTERM)
        finally:
            # The force-exit path resets handlers; make sure the test
            # process is back to defaults either way.
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)

    def test_previous_handlers_restored(self):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with graceful_signals(InterruptHook(_simulator())):
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_exit_codes_follow_convention(self):
        assert EXIT_CODES == {"SIGINT": 130, "SIGTERM": 143}
