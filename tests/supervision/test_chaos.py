"""Chaos test: SIGKILL a supervised worker at a Hypothesis-seeded step.

The acceptance bar of the supervision layer: a worker killed at a
random step must be retried, resume from its latest checkpoint, and
produce final spike trains bit-identical to an uninterrupted run — on
more than one backend. Izhikevich at scale 0.05 fires ~125 spikes in
150 steps, so the digests compare real data, not empty trains.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.supervision import (
    JobSpec,
    RetryPolicy,
    Supervisor,
    run_job_inline,
)

BACKENDS = ("reference", "folded")
STEPS = 150
CHECKPOINT_EVERY = 25


def _job(backend, name="chaos", **overrides):
    return JobSpec(
        name=name,
        workload="Izhikevich",
        backend=backend,
        steps=STEPS,
        scale=0.05,
        seed=3,
        **overrides,
    )


#: Uninterrupted in-process baselines, one per backend (computed once —
#: Hypothesis re-runs the test body, and the baseline never changes).
_BASELINES = {}


def _baseline(backend):
    if backend not in _BASELINES:
        _BASELINES[backend] = run_job_inline(_job(backend, name="baseline"))
    return _BASELINES[backend]


@pytest.mark.parametrize("backend", BACKENDS)
@given(kill_step=st.integers(min_value=10, max_value=STEPS - 10))
@settings(max_examples=3, deadline=None)
def test_sigkilled_worker_resumes_bit_identically(backend, kill_step):
    supervisor = Supervisor(
        retry=RetryPolicy(max_retries=2, base_delay=0.01, jitter=0.0),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    report = supervisor.run(
        [_job(backend, chaos_kill_at_step=kill_step)]
    )
    job = report.jobs[0]

    assert job.completed, job.attempts
    assert job.attempts[0].outcome == "oom-like"  # SIGKILL signature
    assert len(job.attempts) == 2

    # The retry resumed from the last checkpoint before the kill (the
    # chaos hook fires before the checkpoint hook at the same step).
    expected_resume = ((kill_step - 1) // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
    assert job.attempts[1].resumed_from_step == expected_resume

    baseline = _baseline(backend)
    assert baseline["total_spikes"] > 0
    assert job.total_spikes == baseline["total_spikes"]
    assert job.spike_digest == baseline["spike_digest"]
