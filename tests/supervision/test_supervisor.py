"""Tests for the supervisor: isolation, watchdog, retry, recovery.

These tests spawn real worker processes; workloads are kept tiny
(Nowotny et al. at scale 0.05 — a few hundred neurons) so each spawn
costs well under a second. The ``chaos_*`` fields of :class:`JobSpec`
make workers sabotage themselves, which is how every failure mode is
exercised deterministically.
"""

import os

import pytest

from repro.errors import SupervisionError
from repro.supervision import (
    JobSpec,
    RetryPolicy,
    Supervisor,
    run_job_inline,
)

#: Fast backoff so retry tests don't sleep for real.
FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, jitter=0.0)


def make_job(name="job", **overrides):
    base = dict(
        workload="Nowotny et al.",
        backend="reference",
        steps=150,
        scale=0.05,
        seed=3,
    )
    base.update(overrides)
    return JobSpec(name=name, **base)


def make_supervisor(**overrides):
    base = dict(retry=FAST_RETRY, checkpoint_every=40, deadline_seconds=90.0)
    base.update(overrides)
    return Supervisor(**base)


@pytest.fixture(scope="module")
def inline_baseline():
    """The uninterrupted in-process run every digest compares against."""
    return run_job_inline(make_job())


class TestHappyPath:
    def test_completes_and_matches_inline_run(self, inline_baseline):
        report = make_supervisor().run([make_job()])
        job = report.jobs[0]
        assert job.completed
        assert len(job.attempts) == 1
        assert job.steps == 150
        assert job.total_spikes == inline_baseline["total_spikes"]
        assert job.total_spikes > 0
        assert job.spike_digest == inline_baseline["spike_digest"]
        assert job.stats["schema"] == "repro-run-stats/2"
        assert job.profile["name"] == "Nowotny et al."
        assert report.all_completed()

    def test_metrics_published(self):
        report = make_supervisor().run([make_job()])
        assert report.metrics["supervisor_jobs_completed"]["values"][0][
            "value"
        ] == 1

    def test_trace_has_span_and_track_metadata(self):
        report = make_supervisor().run([make_job(name="traced")])
        names = [event.get("name") for event in report.trace_events]
        assert "traced #0" in names
        assert "thread_name" in names
        span = next(
            e for e in report.trace_events if e.get("name") == "traced #0"
        )
        assert span["args"]["outcome"] == "completed"
        assert span["dur"] > 0


class TestCrashRecovery:
    def test_killed_worker_resumes_bit_identically(self, inline_baseline):
        report = make_supervisor().run(
            [make_job(chaos_kill_at_step=100)]
        )
        job = report.jobs[0]
        assert [a.outcome for a in job.attempts] == ["oom-like", "completed"]
        # The retry resumed from the last checkpoint, not step 0.
        assert job.attempts[1].resumed_from_step == 80
        assert job.spike_digest == inline_baseline["spike_digest"]
        assert job.retries == 1

    def test_crash_is_classified_and_retried(self, inline_baseline):
        report = make_supervisor().run(
            [make_job(chaos_crash_at_step=60)]
        )
        job = report.jobs[0]
        assert job.completed
        assert job.attempts[0].outcome == "crash"
        assert "chaos crash" in job.attempts[0].error
        assert job.spike_digest == inline_baseline["spike_digest"]

    def test_without_checkpointing_retry_restarts_from_zero(
        self, inline_baseline
    ):
        report = make_supervisor(checkpoint_every=0).run(
            [make_job(chaos_kill_at_step=100)]
        )
        job = report.jobs[0]
        assert job.completed
        assert job.attempts[1].resumed_from_step == 0
        assert job.spike_digest == inline_baseline["spike_digest"]

    def test_named_checkpoint_dir_keeps_checkpoints(self, tmp_path):
        supervisor = make_supervisor(
            checkpoint_dir=str(tmp_path), checkpoint_every=40
        )
        report = supervisor.run([make_job(name="keep me")])
        assert report.all_completed()
        assert os.path.exists(tmp_path / "keep-me.ckpt")


class TestWatchdog:
    def test_stalled_worker_is_killed_as_timeout(self):
        supervisor = make_supervisor(
            retry=RetryPolicy(max_retries=0),
            heartbeat_timeout=1.0,
        )
        report = supervisor.run(
            [make_job(steps=60, chaos_stall_at_step=20)]
        )
        job = report.jobs[0]
        assert not job.completed
        assert job.failure_kind == "timeout"
        assert "stalled" in job.attempts[0].error
        kills = report.metrics["supervisor_worker_kills_total"]["values"]
        assert kills[0]["labels"] == {"reason": "heartbeat"}
        failed = report.metrics["supervisor_jobs_failed"]["values"]
        assert failed[0]["value"] == 1

    def test_deadline_is_enforced(self):
        supervisor = make_supervisor(
            retry=RetryPolicy(max_retries=0),
            heartbeat_timeout=60.0,
        )
        report = supervisor.run(
            [
                make_job(
                    steps=60, chaos_stall_at_step=20, deadline_seconds=0.8
                )
            ]
        )
        job = report.jobs[0]
        assert job.failure_kind == "timeout"
        assert "deadline" in job.attempts[0].error
        kills = report.metrics["supervisor_worker_kills_total"]["values"]
        assert kills[0]["labels"] == {"reason": "deadline"}


class TestCircuitBreaker:
    def test_numerics_failures_degrade_to_solver_backend(
        self, inline_baseline
    ):
        supervisor = make_supervisor(breaker_threshold=1)
        report = supervisor.run([make_job(chaos_nan_at_step=30)])
        job = report.jobs[0]
        assert job.completed
        assert job.degraded
        assert job.attempts[0].outcome == "numerics"
        assert job.attempts[0].backend == "reference"
        assert job.attempts[1].backend == "solver"
        # The solver path is spike-identical to the compiled engine.
        assert job.spike_digest == inline_baseline["spike_digest"]
        assert supervisor.breaker_tripped("reference")
        trips = report.metrics["supervisor_breaker_trips_total"]["values"]
        assert trips[0]["labels"] == {"backend": "reference"}

    def test_breaker_threshold_requires_repeated_failures(self):
        supervisor = make_supervisor(breaker_threshold=2)
        supervisor._record_numerics_failure("reference")
        assert not supervisor.breaker_tripped("reference")
        supervisor._record_numerics_failure("reference")
        assert supervisor.breaker_tripped("reference")
        assert not supervisor.breaker_tripped("folded")


class TestConcurrency:
    def test_parallel_jobs_complete_in_input_order(self, inline_baseline):
        jobs = [make_job(name="first"), make_job(name="second", seed=3)]
        report = make_supervisor(workers=2).run(jobs)
        assert [job.name for job in report.jobs] == ["first", "second"]
        assert report.all_completed()
        assert report.jobs[0].spike_digest == inline_baseline["spike_digest"]


class TestValidation:
    def test_empty_job_list_rejected(self):
        with pytest.raises(SupervisionError, match="no jobs"):
            make_supervisor().run([])

    def test_duplicate_job_names_rejected(self):
        with pytest.raises(SupervisionError, match="duplicate"):
            make_supervisor().run([make_job("a"), make_job("a")])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"deadline_seconds": 0},
            {"heartbeat_timeout": 0},
            {"checkpoint_every": -1},
            {"breaker_threshold": 0},
        ],
    )
    def test_invalid_supervisor_configs_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            Supervisor(**kwargs)
