"""Crash forensics: flight recorder, output capture, correlated logs.

What the observability plane promises a post-mortem: every failed
attempt carries (a) the flight-recorder dump — pipe-shipped when the
worker could still speak, recovered from the atomically-synced sidecar
when it was SIGKILLed — (b) the tail of the worker's captured
stdout/stderr with the actual traceback text, and (c) structured log
records correlated by ``run_id``/``job``/``attempt`` merged into one
ordered ``SweepReport`` stream.

These tests spawn real worker processes (same tiny workloads as the
supervisor suite).
"""

import multiprocessing
import os

from repro.supervision import JobSpec, RetryPolicy, Supervisor
from repro.supervision.worker import worker_entry

FAST_RETRY = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)


def make_job(name="job", **overrides):
    base = dict(
        workload="Nowotny et al.",
        backend="reference",
        steps=120,
        scale=0.05,
        seed=3,
    )
    base.update(overrides)
    return JobSpec(name=name, **base)


def make_supervisor(**overrides):
    base = dict(retry=FAST_RETRY, checkpoint_every=40, deadline_seconds=90.0)
    base.update(overrides)
    return Supervisor(**base)


class TestFlightRecorder:
    def test_crash_attempt_ships_flight_dump_over_the_pipe(self):
        report = make_supervisor().run(
            [make_job(chaos_crash_at_step=60)]
        )
        job = report.jobs[0]
        failed = job.attempts[0]
        assert failed.outcome == "crash"
        dump = failed.flight_recorder
        assert dump is not None and dump["schema"] == "repro-flight/1"
        kinds = {event["kind"] for event in dump["events"]}
        # The caught-crash path records the failure itself plus the
        # worker-started log mirror; heartbeats are cadence-dependent.
        assert "failure" in kinds
        assert "log" in kinds
        failure = next(
            e for e in dump["events"] if e["kind"] == "failure"
        )
        assert failure["failure_kind"] == "crash"
        assert "chaos crash injected" in failure["error"]

    def test_sigkilled_attempt_recovers_sidecar_dump(self):
        report = make_supervisor().run(
            [make_job(chaos_kill_at_step=60)]
        )
        job = report.jobs[0]
        killed = job.attempts[0]
        assert killed.outcome == "oom-like"  # the SIGKILL signature
        dump = killed.flight_recorder
        assert dump is not None, "sidecar dump not recovered"
        chaos = [e for e in dump["events"] if e["kind"] == "chaos"]
        assert chaos and chaos[0]["action"] == "kill"
        assert chaos[0]["step"] == 60

    def test_flight_events_carry_correlation_ids(self):
        supervisor = make_supervisor()
        report = supervisor.run([make_job(chaos_kill_at_step=60)])
        dump = report.jobs[0].attempts[0].flight_recorder
        for event in dump["events"]:
            assert event["run_id"] == supervisor.run_id == report.run_id
            assert event["job"] == "job"
            assert event["attempt"] == 0

    def test_successful_attempt_carries_no_dump(self):
        report = make_supervisor().run([make_job()])
        attempt = report.jobs[0].attempts[0]
        assert attempt.outcome == "completed"
        assert attempt.flight_recorder is None
        assert attempt.output_tail == ""

    def test_forensics_survive_report_serialization(self):
        report = make_supervisor().run([make_job(chaos_crash_at_step=60)])
        document = report.to_dict()
        attempt = document["jobs"][0]["attempts"][0]
        assert attempt["flight_recorder"]["events"]
        assert "Traceback" in attempt["output_tail"]
        assert document["run_id"] == report.run_id


class TestOutputCapture:
    def test_crash_traceback_text_survives_in_output_tail(self):
        report = make_supervisor().run([make_job(chaos_crash_at_step=60)])
        tail = report.jobs[0].attempts[0].output_tail
        assert "Traceback (most recent call last)" in tail
        assert "SupervisionError" in tail
        assert "chaos crash injected at step 60" in tail

    def test_pre_payload_crash_still_leaves_a_traceback(self, tmp_path):
        """A worker that dies before its first pipe message (malformed
        payload here, standing in for any bootstrap failure) must still
        leave its traceback in the capture file, because the fd
        redirect happens before ``conn.recv()``."""
        capture_path = str(tmp_path / "worker.out")
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=worker_entry, args=(child_conn, capture_path)
        )
        process.start()
        child_conn.close()
        # No "spec" key: JobSpec.from_payload raises inside the worker.
        parent_conn.send({"not-a-spec": True})
        process.join(timeout=30)
        assert process.exitcode not in (None, 0)
        with open(capture_path, encoding="utf-8") as handle:
            captured = handle.read()
        assert "Traceback" in captured

    def test_capture_files_are_cleaned_up(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        report = make_supervisor(checkpoint_dir=checkpoint_dir).run(
            [make_job(chaos_crash_at_step=60)]
        )
        assert report.jobs[0].completed  # retried to completion
        leftovers = [
            name for name in os.listdir(checkpoint_dir)
            if name.endswith(".out") or name.endswith(".flight.json")
        ]
        assert leftovers == []


class TestCorrelatedLogs:
    def test_sweep_report_merges_supervisor_and_worker_logs(self):
        supervisor = make_supervisor()
        report = supervisor.run([make_job(chaos_crash_at_step=60)])
        records = report.log_records
        events = [record["event"] for record in records]
        assert events[0] == "sweep-start"
        assert events[-1] == "sweep-end"
        assert "worker-started" in events
        assert "worker-failed" in events
        assert "attempt-failed" in events
        assert "worker-done" in events  # the successful retry
        # Every record is stamped with the sweep's run_id; worker
        # records carry their job/attempt context.
        assert all(r["run_id"] == supervisor.run_id for r in records)
        worker_records = [
            r for r in records if r.get("component") == "worker"
        ]
        assert worker_records
        assert all(r["job"] == "job" for r in worker_records)
        failed = next(r for r in records if r["event"] == "worker-failed")
        assert failed["attempt"] == 0
        done = next(r for r in records if r["event"] == "worker-done")
        assert done["attempt"] == 1

    def test_merged_stream_is_time_ordered(self):
        report = make_supervisor().run([make_job()])
        timestamps = [record["ts"] for record in report.log_records]
        assert timestamps == sorted(timestamps)

    def test_log_stream_document_schema(self):
        report = make_supervisor().run([make_job()])
        document = report.log_stream()
        assert document["schema"] == "repro-log/1"
        assert document["run_id"] == report.run_id
        assert document["n_records"] == len(report.log_records)

    def test_distinct_sweeps_get_distinct_run_ids(self):
        first = make_supervisor()
        second = make_supervisor()
        assert first.run_id != second.run_id
        assert first.run_id.startswith("run-")
