"""Tests for job specs, the failure taxonomy, and structured reports."""

import pytest

from repro.errors import SupervisionError
from repro.supervision import FAILURE_KINDS, JobSpec
from repro.supervision.job import AttemptReport, JobReport, SweepReport


class TestJobSpec:
    def test_payload_roundtrip(self):
        spec = JobSpec(
            name="job-1",
            workload="Brunel",
            backend="folded",
            steps=120,
            scale=0.1,
            seed=9,
            solver="RKF45",
            deadline_seconds=30.0,
            checkpoint_every=25,
            chaos_kill_at_step=60,
        )
        assert JobSpec.from_payload(spec.to_payload()) == spec

    def test_payload_is_plain_data(self):
        payload = JobSpec(name="j", workload="Brunel").to_payload()
        assert isinstance(payload, dict)
        assert payload["name"] == "j"
        assert payload["backend"] == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SupervisionError, match="backend"):
            JobSpec(name="j", workload="Brunel", backend="quantum")

    def test_empty_name_rejected(self):
        with pytest.raises(SupervisionError, match="name"):
            JobSpec(name="", workload="Brunel")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": 0},
            {"scale": 0.0},
            {"scale": -1.0},
            {"deadline_seconds": 0.0},
            {"checkpoint_every": -1},
        ],
    )
    def test_invalid_numbers_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            JobSpec(name="j", workload="Brunel", **kwargs)

    def test_malformed_payload_is_a_supervision_error(self):
        with pytest.raises(SupervisionError, match="malformed"):
            JobSpec.from_payload({"name": "j", "bogus_key": 1})


class TestFailureTaxonomy:
    def test_taxonomy_is_closed(self):
        assert FAILURE_KINDS == ("timeout", "crash", "numerics", "oom-like")


class TestReports:
    def _job(self, name="j", outcome="completed", attempts=1):
        report = JobReport(
            name=name, workload="Brunel", backend="reference", outcome=outcome
        )
        for index in range(attempts):
            report.attempts.append(
                AttemptReport(attempt=index, outcome="crash")
            )
        return report

    def test_retries_counts_attempts_beyond_first(self):
        assert self._job(attempts=1).retries == 0
        assert self._job(attempts=3).retries == 2

    def test_sweep_report_partitions_jobs(self):
        sweep = SweepReport(
            jobs=[
                self._job("a", outcome="completed"),
                self._job("b", outcome="failed"),
            ]
        )
        assert [j.name for j in sweep.completed] == ["a"]
        assert [j.name for j in sweep.failed] == ["b"]
        assert not sweep.all_completed()
        assert sweep.job("b").name == "b"
        with pytest.raises(SupervisionError, match="no job named"):
            sweep.job("zzz")

    def test_sweep_to_dict_schema(self):
        payload = SweepReport(jobs=[self._job()], wall_seconds=1.5).to_dict()
        assert payload["schema"] == "repro-sweep/1"
        assert payload["completed"] == 1
        assert payload["failed"] == 0
        assert payload["jobs"][0]["name"] == "j"
        assert payload["jobs"][0]["retries"] == 0

    def test_trace_json_wraps_events(self):
        sweep = SweepReport(jobs=[], trace_events=[{"ph": "X"}])
        document = sweep.trace_json()
        assert document["traceEvents"] == [{"ph": "X"}]
