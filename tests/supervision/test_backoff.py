"""Tests for the retry/backoff policy."""

import numpy as np
import pytest

from repro.errors import SupervisionError
from repro.supervision import RetryPolicy


class TestRetryPolicy:
    def test_delays_grow_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.5, factor=2.0, jitter=0.0
        )
        assert [policy.delay(a) for a in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_delays_cap_at_max_delay(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=1.0, factor=10.0, max_delay=5.0,
            jitter=0.0,
        )
        assert policy.delay(9) == 5.0

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, factor=1.0, jitter=0.25)
        rng = np.random.default_rng(0)
        for attempt in range(20):
            delay = policy.delay(attempt, rng)
            assert 1.0 <= delay <= 1.25

    def test_delay_sequence_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_retries=5)
        assert list(policy.delays(7)) == list(policy.delays(7))
        assert list(policy.delays(7)) != list(policy.delays(8))

    def test_max_attempts_includes_first_try(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"factor": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(SupervisionError):
            RetryPolicy().delay(-1)
