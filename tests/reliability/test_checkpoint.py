"""Tests: kill-and-resume is bit-identical on every backend."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
from repro.network.backends import ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PoissonStimulus
from repro.plasticity import PairSTDP
from repro.reliability import Checkpoint, CheckpointHook

DT = 1e-4

BACKENDS = {
    "engine": lambda: ReferenceBackend("Euler"),
    "solver": lambda: ReferenceBackend("Euler", use_engine=False),
    "rkf45": lambda: ReferenceBackend("RKF45"),
    "fallback": lambda: ReferenceBackend("Euler", fault_policy="fallback"),
    "flexon": lambda: FlexonBackend(DT),
    "folded": lambda: FoldedFlexonBackend(DT),
}


def _network(plastic=False):
    rng = np.random.default_rng(77)
    network = Network("ckpt-net")
    exc = network.add_population("exc", 30, "DLIF")
    network.add_population("inh", 8, "DLIF")
    network.connect(
        "exc", "exc", probability=0.2, weight=0.05, syn_type=0, rng=rng,
        delay_steps=1, delay_jitter=3,
    )
    projection = network.connect(
        "inh", "exc", probability=0.2, weight=0.15, syn_type=1, rng=rng
    )
    if plastic:
        network.add_plasticity(projection, PairSTDP())
    network.connect(
        "exc", "inh", probability=0.2, weight=0.06, syn_type=0, rng=rng
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=800.0, weight=0.09, dt=DT, n_sources=8)
    )
    return network


def _final_state(simulator):
    return {
        name: {k: v.copy() for k, v in runtime.state().items()}
        for name, runtime in simulator.backend.runtimes.items()
    }


def _spike_sets(result, network):
    return {
        name: result.spikes.result(name).spike_pairs()
        for name in network.populations
    }


def _run_uninterrupted(make_backend, steps, plastic=False):
    network = _network(plastic)
    simulator = Simulator(network, make_backend(), dt=DT, seed=11)
    result = simulator.run(steps)
    return _spike_sets(result, network), _final_state(simulator)


def _run_resumed(make_backend, kill_at, steps, tmp_path, plastic=False):
    """Run to ``kill_at``, checkpoint to disk, resume in a NEW simulator."""
    network = _network(plastic)
    simulator = Simulator(network, make_backend(), dt=DT, seed=11)
    first = simulator.run(kill_at)
    path = str(tmp_path / "state.ckpt")
    Checkpoint.capture(simulator, spikes=first.spikes).save(path)
    del simulator  # the "crash"

    checkpoint = Checkpoint.load(path)
    network2 = _network(plastic)
    simulator2 = Simulator(network2, make_backend(), dt=DT, seed=11)
    checkpoint.restore(simulator2)
    assert simulator2.current_step == kill_at
    result = simulator2.run(
        steps - kill_at, spikes=checkpoint.seed_recorder()
    )
    return _spike_sets(result, network2), _final_state(simulator2)


class TestBitIdenticalResume:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_resume_equals_uninterrupted(self, backend, tmp_path):
        make = BACKENDS[backend]
        whole_spikes, whole_state = _run_uninterrupted(make, 60)
        part_spikes, part_state = _run_resumed(make, 23, 60, tmp_path)
        assert part_spikes == whole_spikes
        for name in whole_state:
            for variable, values in whole_state[name].items():
                assert np.array_equal(values, part_state[name][variable]), (
                    f"{name}.{variable} differs after resume"
                )

    def test_resume_preserves_plasticity_bit_identically(self, tmp_path):
        make = BACKENDS["engine"]
        whole_spikes, whole_state = _run_uninterrupted(make, 60, plastic=True)
        part_spikes, part_state = _run_resumed(
            make, 31, 60, tmp_path, plastic=True
        )
        assert part_spikes == whole_spikes
        for name in whole_state:
            for variable, values in whole_state[name].items():
                assert np.array_equal(values, part_state[name][variable])


class TestCheckpointHook:
    def test_periodic_hook_resumes_bit_identically(self, tmp_path):
        make = BACKENDS["engine"]
        path = str(tmp_path / "periodic.ckpt")

        network = _network()
        simulator = Simulator(network, make(), dt=DT, seed=11)
        hook = CheckpointHook(simulator, every=17, path=path)
        simulator.run(40, hooks=[hook])  # checkpoints at steps 17, 34
        assert hook.captures == 2

        checkpoint = Checkpoint.load(path)
        assert checkpoint.step == 34
        simulator2 = Simulator(_network(), make(), dt=DT, seed=11)
        checkpoint.restore(simulator2)
        result = simulator2.run(26, spikes=checkpoint.seed_recorder())

        whole_spikes, whole_state = _run_uninterrupted(make, 60)
        assert _spike_sets(result, simulator2.network) == whole_spikes
        assert simulator2.current_step == 60

    def test_hook_validates_interval(self, small_network):
        simulator = Simulator(small_network, dt=DT, seed=1)
        with pytest.raises(CheckpointError):
            CheckpointHook(simulator, every=0, path="x.ckpt")


class TestSafetyChecks:
    def _checkpoint(self):
        simulator = Simulator(_network(), ReferenceBackend(), dt=DT, seed=11)
        simulator.run(5)
        return Checkpoint.capture(simulator)

    def test_wrong_population_sizes_rejected(self):
        checkpoint = self._checkpoint()
        other = Network("ckpt-net")
        other.add_population("exc", 31, "DLIF")  # 30 in the original
        other.add_population("inh", 8, "DLIF")
        simulator = Simulator(other, ReferenceBackend(), dt=DT, seed=11)
        with pytest.raises(CheckpointError, match="signature"):
            checkpoint.restore(simulator)

    def test_wrong_backend_rejected(self):
        checkpoint = self._checkpoint()
        simulator = Simulator(_network(), FlexonBackend(DT), dt=DT, seed=11)
        with pytest.raises(CheckpointError, match="signature"):
            checkpoint.restore(simulator)

    def test_wrong_dt_rejected(self):
        checkpoint = self._checkpoint()
        simulator = Simulator(_network(), ReferenceBackend(), dt=2e-4, seed=11)
        with pytest.raises(CheckpointError, match="signature"):
            checkpoint.restore(simulator)

    def test_unknown_version_rejected(self):
        checkpoint = self._checkpoint()
        checkpoint.version = 999
        simulator = Simulator(_network(), ReferenceBackend(), dt=DT, seed=11)
        with pytest.raises(CheckpointError, match="version"):
            checkpoint.restore(simulator)

    def test_version_1_rejection_explains_the_schema_change(self):
        # Pre-routing-layer checkpoints lack ring event counts and lazy
        # traces; the error should say why, not just "wrong number".
        checkpoint = self._checkpoint()
        checkpoint.version = 1
        simulator = Simulator(_network(), ReferenceBackend(), dt=DT, seed=11)
        with pytest.raises(CheckpointError, match="lazy plasticity"):
            checkpoint.restore(simulator)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "nope.ckpt")
        with pytest.raises(CheckpointError, match="does not exist") as info:
            Checkpoint.load(path)
        assert info.value.path == path
        assert info.value.reason == "not-found"

    def test_non_checkpoint_file_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError, match="does not contain") as info:
            Checkpoint.load(str(path))
        assert info.value.reason == "wrong-type"

    def test_truncated_file_names_path_and_reason(self, tmp_path):
        # A torn copy of a real checkpoint: valid pickle prefix, missing
        # tail. Must surface as a structured error, not a bare EOFError.
        import pickle

        path = tmp_path / "torn.ckpt"
        self._checkpoint().save(str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError) as info:
            Checkpoint.load(str(path))
        assert info.value.path == str(path)
        assert info.value.reason in ("truncated", "not-a-pickle", "corrupt")
        assert not isinstance(info.value, (EOFError, pickle.UnpicklingError))

    def test_non_pickle_file_names_path_and_reason(self, tmp_path):
        path = tmp_path / "noise.ckpt"
        path.write_bytes(b"definitely not a pickle stream")
        with pytest.raises(CheckpointError) as info:
            Checkpoint.load(str(path))
        assert info.value.path == str(path)
        assert info.value.reason in ("not-a-pickle", "truncated", "corrupt")

    def test_empty_file_is_truncated(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError) as info:
            Checkpoint.load(str(path))
        assert info.value.reason == "truncated"
        assert info.value.path == str(path)

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        checkpoint = self._checkpoint()
        path = tmp_path / "atomic.ckpt"
        checkpoint.save(str(path))
        checkpoint.save(str(path))  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.ckpt"]
