"""Tests: NumericsGuard detects bad state within one step."""

import numpy as np
import pytest

from repro.errors import NumericsError, ReliabilityError, SimulationError
from repro.network.backends import ReferenceBackend
from repro.network.simulator import Simulator
from repro.reliability import FaultInjector, NumericsGuard

DT = 1e-4


def _simulator(small_network, **backend_kwargs):
    return Simulator(
        small_network, ReferenceBackend("Euler", **backend_kwargs),
        dt=DT, seed=3,
    )


class TestGuardClean:
    def test_clean_run_passes_and_counts_checks(self, small_network):
        simulator = _simulator(small_network)
        guard = NumericsGuard(simulator.backend)
        simulator.run(20, hooks=[guard])
        # Two populations, screened after every neuron phase.
        assert guard.checks == 40

    def test_check_every_thins_the_screens(self, small_network):
        simulator = _simulator(small_network)
        guard = NumericsGuard(simulator.backend, check_every=5)
        simulator.run(20, hooks=[guard])
        assert guard.checks == 2 * 4  # steps 0, 5, 10, 15

    def test_rejects_backend_without_runtimes(self):
        with pytest.raises(SimulationError):
            NumericsGuard(object())

    def test_rejects_bad_check_every(self, small_network):
        simulator = _simulator(small_network)
        with pytest.raises(SimulationError):
            NumericsGuard(simulator.backend, check_every=0)


class TestGuardDetection:
    def test_injected_nan_detected_within_one_step(self, small_network):
        simulator = _simulator(small_network)
        simulator.run(10)
        FaultInjector(simulator).inject_nan("exc", variable="v", index=3)
        guard = NumericsGuard(simulator.backend)
        with pytest.raises(NumericsError) as excinfo:
            simulator.run(1, hooks=[guard])
        error = excinfo.value
        assert error.population == "exc"
        assert error.step == 10
        assert error.variable == "v"
        assert 3 in error.indices

    def test_numerics_error_is_a_reliability_error(self, small_network):
        simulator = _simulator(small_network)
        FaultInjector(simulator).inject_nan("exc")
        with pytest.raises(ReliabilityError):
            simulator.run(1, hooks=[NumericsGuard(simulator.backend)])

    def test_divergence_beyond_limit_detected(self, small_network):
        # A diverged membrane would fire and reset, so poison a
        # conductance: it only decays and stays over the limit.
        simulator = _simulator(small_network)
        runtime = simulator.backend.runtime("inh")
        runtime.state()["g0"][0] = 1e9
        with pytest.raises(NumericsError) as excinfo:
            simulator.run(1, hooks=[NumericsGuard(simulator.backend)])
        assert excinfo.value.population == "inh"
        assert excinfo.value.variable == "g0"

    def test_limit_none_checks_finiteness_only(self, small_network):
        simulator = _simulator(small_network)
        runtime = simulator.backend.runtime("inh")
        runtime.state()["g0"][0] = 1e9
        guard = NumericsGuard(simulator.backend, limit=None)
        simulator.run(1, hooks=[guard])  # finite, so no error

    def test_solver_path_is_guarded_too(self, small_network):
        simulator = _simulator(small_network, use_engine=False)
        FaultInjector(simulator).inject_nan("exc", variable="v", index=0)
        with pytest.raises(NumericsError):
            simulator.run(1, hooks=[NumericsGuard(simulator.backend)])


class TestRuntimeHealth:
    def test_healthy_runtime_reports_none(self, small_network):
        simulator = _simulator(small_network)
        simulator.run(5)
        for runtime in simulator.backend.runtimes.values():
            assert runtime.health() is None

    def test_health_names_variable_and_indices(self, small_network):
        simulator = _simulator(small_network)
        runtime = simulator.backend.runtime("exc")
        runtime.state()["v"][7] = np.nan
        variable, indices = runtime.health()
        assert variable == "v"
        assert indices.tolist() == [7]
