"""Tests: fault injection corrupts exactly what it says it does."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
from repro.network.backends import ReferenceBackend
from repro.network.simulator import Simulator
from repro.reliability import (
    BitFlipFault,
    FaultInjector,
    InputPerturbFault,
    SpikeDropFault,
)

DT = 1e-4


def _simulator(small_network, backend=None):
    return Simulator(
        small_network,
        backend if backend is not None else ReferenceBackend("Euler"),
        dt=DT,
        seed=3,
    )


class TestFaultInjector:
    def test_float_flip_changes_exactly_one_value(self, small_network):
        simulator = _simulator(small_network)
        before = {
            k: v.copy()
            for k, v in simulator.backend.runtime("exc").state().items()
        }
        flips = FaultInjector(simulator, seed=1).flip_state_bits("exc")
        assert len(flips) == 1
        flip = flips[0]
        assert flip.domain == "float"
        assert 0 <= flip.bit < 64
        after = simulator.backend.runtime("exc").state()
        changed = sum(
            int(not np.array_equal(before[k], after[k])) for k in before
        )
        assert changed == 1
        assert not np.array_equal(
            before[flip.variable], after[flip.variable]
        )

    def test_flips_are_deterministic_in_seed(self, small_network):
        a = FaultInjector(_simulator(small_network), seed=9)
        b = FaultInjector(_simulator(small_network), seed=9)
        assert a.flip_state_bits("exc", n_flips=4) == b.flip_state_bits(
            "exc", n_flips=4
        )

    @pytest.mark.parametrize(
        "backend_factory", [FlexonBackend, FoldedFlexonBackend]
    )
    def test_hardware_flip_lands_in_raw_words(
        self, small_network, backend_factory
    ):
        simulator = _simulator(small_network, backend_factory(DT))
        injector = FaultInjector(simulator, seed=2)
        flips = injector.flip_state_bits("exc", n_flips=3)
        fmt = simulator.backend.runtime("exc").compiled.constants.fmt
        for flip in flips:
            assert flip.domain == "fixed"
            assert 0 <= flip.bit < fmt.total_bits

    def test_variable_filter_is_respected(self, small_network):
        simulator = _simulator(small_network)
        flips = FaultInjector(simulator, seed=3).flip_state_bits(
            "exc", n_flips=5, variable="v"
        )
        assert all(flip.variable == "v" for flip in flips)

    def test_unknown_variable_rejected(self, small_network):
        simulator = _simulator(small_network)
        with pytest.raises(SimulationError, match="no variable"):
            FaultInjector(simulator).flip_state_bits("exc", variable="zz")

    def test_nan_injection_rejected_on_hardware(self, small_network):
        simulator = _simulator(small_network, FlexonBackend(DT))
        with pytest.raises(SimulationError, match="fixed point"):
            FaultInjector(simulator).inject_nan("exc")

    def test_injector_needs_runtime_backend(self, small_network):
        simulator = _simulator(small_network)
        simulator.backend = object()
        with pytest.raises(SimulationError):
            FaultInjector(simulator)


class TestSustainedFaults:
    def test_bit_flip_fault_fires_on_schedule(self, small_network):
        simulator = _simulator(small_network)
        fault = BitFlipFault(simulator, "exc", every=10, seed=4)
        simulator.run(35, hooks=[fault])
        assert len(fault.log) == 3  # steps 10, 20, 30 (not 0)

    def test_bit_flip_fault_validates_interval(self, small_network):
        simulator = _simulator(small_network)
        with pytest.raises(SimulationError):
            BitFlipFault(simulator, "exc", every=0)

    def test_spike_drop_p1_silences_the_network(self, small_network):
        clean = _simulator(small_network).run(100).total_spikes()
        assert clean > 0
        simulator = _simulator(small_network)
        fault = SpikeDropFault(simulator, p_drop=1.0, seed=5)
        result = simulator.run(100, hooks=[fault])
        assert result.total_spikes() == 0
        assert fault.dropped > 0

    def test_spike_drop_p0_is_a_no_op(self, small_network):
        clean = _simulator(small_network).run(100)
        simulator = _simulator(small_network)
        fault = SpikeDropFault(simulator, p_drop=0.0)
        faulty = simulator.run(100, hooks=[fault])
        assert fault.dropped == 0
        assert (
            clean.spikes.result("exc").spike_pairs()
            == faulty.spikes.result("exc").spike_pairs()
        )

    def test_spike_drop_validates_probability(self, small_network):
        with pytest.raises(SimulationError):
            SpikeDropFault(_simulator(small_network), p_drop=1.5)

    def test_input_perturb_touches_active_entries_only(self, small_network):
        simulator = _simulator(small_network)
        fault = InputPerturbFault(simulator, sigma=0.01, seed=6)
        simulator.run(100, hooks=[fault])
        assert fault.perturbed > 0

    def test_input_perturb_sigma_zero_is_a_no_op(self, small_network):
        clean = _simulator(small_network).run(100)
        simulator = _simulator(small_network)
        fault = InputPerturbFault(simulator, sigma=0.0)
        faulty = simulator.run(100, hooks=[fault])
        assert fault.perturbed == 0
        assert (
            clean.spikes.result("exc").spike_pairs()
            == faulty.spikes.result("exc").spike_pairs()
        )

    def test_input_perturb_validates_sigma(self, small_network):
        with pytest.raises(SimulationError):
            InputPerturbFault(_simulator(small_network), sigma=-0.1)
