"""Tests: the degrade policy re-seats faulting populations mid-run."""

import numpy as np
import pytest

from repro.engine.runtime import CompiledRuntime, SolverRuntime
from repro.errors import ConfigurationError
from repro.network.backends import ReferenceBackend
from repro.network.simulator import Simulator
from repro.reliability import FallbackRuntime, FaultInjector

DT = 1e-4


def _simulator(small_network):
    return Simulator(
        small_network,
        ReferenceBackend("Euler", fault_policy="fallback"),
        dt=DT,
        seed=3,
    )


class TestPolicyConfiguration:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="fault_policy"):
            ReferenceBackend("Euler", fault_policy="bogus")

    def test_fallback_policy_wraps_compiled_runtimes(self, small_network):
        simulator = _simulator(small_network)
        for runtime in simulator.backend.runtimes.values():
            assert isinstance(runtime, FallbackRuntime)
            assert isinstance(runtime.primary, CompiledRuntime)
            assert not runtime.degraded

    def test_propagate_policy_keeps_bare_runtimes(self, small_network):
        simulator = Simulator(
            small_network, ReferenceBackend("Euler"), dt=DT, seed=3
        )
        for runtime in simulator.backend.runtimes.values():
            assert isinstance(runtime, CompiledRuntime)


class TestDegradation:
    def test_injected_nan_triggers_recorded_fallback(self, small_network):
        simulator = _simulator(small_network)
        simulator.run(10)
        FaultInjector(simulator).inject_nan("exc", variable="v", index=2)
        result = simulator.run(5)  # survives; no exception
        events = result.diagnostics.fallbacks
        assert len(events) == 1
        event = events[0]
        assert event.population == "exc"
        assert event.step == 10  # detected within one step
        assert event.variable == "v"
        assert 2 in event.indices
        assert event.from_runtime == "CompiledRuntime"
        assert event.to_runtime == "SolverRuntime"
        assert not result.diagnostics.healthy()
        assert event.describe()  # human-readable, non-empty

    def test_degraded_population_runs_on_solver(self, small_network):
        simulator = _simulator(small_network)
        FaultInjector(simulator).inject_nan("exc")
        simulator.run(3)
        runtime = simulator.backend.runtime("exc")
        assert runtime.degraded
        assert isinstance(runtime.active, SolverRuntime)
        # The untouched population stays on the fast path.
        assert not simulator.backend.runtime("inh").degraded

    def test_healthy_run_never_degrades(self, small_network):
        simulator = _simulator(small_network)
        result = simulator.run(30)
        assert result.diagnostics.fallbacks == []
        assert result.diagnostics.healthy()
        for runtime in simulator.backend.runtimes.values():
            assert not runtime.degraded

    def test_fallback_matches_propagate_when_healthy(self, small_network):
        def spikes(policy):
            simulator = Simulator(
                small_network,
                ReferenceBackend("Euler", fault_policy=policy),
                dt=DT,
                seed=3,
            )
            result = simulator.run(40)
            return {
                name: result.spikes.result(name).spike_pairs()
                for name in small_network.populations
            }

        assert spikes("propagate") == spikes("fallback")

    def test_replay_restarts_from_pre_step_state(self, small_network):
        # The solver replays the faulting step from the last-good
        # snapshot, so every non-poisoned neuron's state stays finite
        # and equal to what the compiled path would have produced.
        simulator = _simulator(small_network)
        simulator.run(5)
        FaultInjector(simulator).inject_nan("exc", variable="v", index=0)
        simulator.run(5)
        state = simulator.backend.runtime("exc").state()
        assert np.isfinite(state["v"][1:]).all()
