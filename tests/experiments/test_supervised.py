"""Tests: the supervised figure-sweep path is a drop-in for in-process."""

import pytest

from repro.errors import SupervisionError
from repro.experiments import figure3
from repro.experiments.common import profile_workload, supervised_profiles
from repro.supervision import RetryPolicy, Supervisor

WORKLOAD = "Nowotny et al."
SCALE = 0.05
STEPS = 100
SEED = 3


class TestSupervisedProfiles:
    def test_matches_in_process_profile_exactly(self):
        inline = profile_workload(
            WORKLOAD, scale=SCALE, steps=STEPS, seed=SEED
        )
        [supervised] = supervised_profiles(
            [WORKLOAD], scale=SCALE, steps=STEPS, seed=SEED
        )
        assert supervised == inline

    def test_failed_job_raises_with_failure_kind(self):
        supervisor = Supervisor(
            retry=RetryPolicy(max_retries=0),
            deadline_seconds=0.001,  # guaranteed watchdog kill
        )
        with pytest.raises(SupervisionError, match="timeout"):
            supervised_profiles(
                [WORKLOAD], scale=SCALE, steps=STEPS, seed=SEED,
                supervisor=supervisor,
            )


class TestFigure3Supervised:
    def test_supervised_rows_equal_inline_rows(self):
        kwargs = dict(
            scale=SCALE, steps=STEPS, seed=SEED, names=[WORKLOAD]
        )
        inline_rows = figure3.run(**kwargs)
        supervised_rows = figure3.run(supervised=True, **kwargs)
        assert supervised_rows == inline_rows
