"""Tests for the end-to-end Amdahl analysis."""

import pytest

from repro.experiments.amdahl import AmdahlRow, evaluate, format_amdahl, run
from repro.experiments.common import profile_workload


class TestAmdahlRow:
    def _row(self, total=100e-6, neuron=80e-6, array=1e-6):
        return AmdahlRow(
            workload="x",
            cpu_total_s=total,
            cpu_neuron_s=neuron,
            array_neuron_s=array,
        )

    def test_host_share(self):
        assert self._row().host_share == pytest.approx(0.2)

    def test_total_after_swaps_neuron_phase(self):
        row = self._row()
        assert row.total_after_s == pytest.approx(21e-6)

    def test_speedups(self):
        row = self._row()
        assert row.neuron_speedup == pytest.approx(80.0)
        assert row.end_to_end_speedup == pytest.approx(100 / 21)

    def test_amdahl_bound_caps_end_to_end(self):
        row = self._row()
        assert row.amdahl_bound == pytest.approx(5.0)
        assert row.end_to_end_speedup < row.amdahl_bound

    def test_faster_array_approaches_the_bound(self):
        slow = self._row(array=10e-6)
        fast = self._row(array=0.01e-6)
        assert slow.end_to_end_speedup < fast.end_to_end_speedup
        assert fast.end_to_end_speedup == pytest.approx(
            fast.amdahl_bound, rel=0.01
        )

    def test_fully_neuron_bound_bound_is_infinite(self):
        row = self._row(total=80e-6, neuron=80e-6)
        assert row.amdahl_bound == float("inf")


class TestEvaluateAndRun:
    def test_evaluate_real_workload(self):
        profile = profile_workload("Vogels-Abbott", scale=0.02, steps=100)
        row = evaluate(profile)
        assert row.end_to_end_speedup > 1.0
        assert row.neuron_speedup > row.end_to_end_speedup
        assert row.end_to_end_speedup <= row.amdahl_bound * 1.0001

    def test_run_subset_and_format(self):
        rows = run(scale=0.02, steps=100, names=["Brunel", "Vogels-Abbott"])
        assert len(rows) == 2
        text = format_amdahl(rows)
        assert "Amdahl bound" in text
        assert "geomean end-to-end speedup" in text

    def test_neuron_bound_workload_gains_more(self):
        rows = {
            row.workload: row
            for row in run(
                scale=0.02, steps=100, names=["Brunel", "Vogels-Abbott"]
            )
        }
        # RKF45 Vogels-Abbott is neuron-bound; Euler Brunel is
        # synapse-bound: the end-to-end gains must reflect Figure 3.
        assert (
            rows["Vogels-Abbott"].end_to_end_speedup
            > rows["Brunel"].end_to_end_speedup
        )
