"""Tests for the ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.charts import bar_chart, stacked_fraction_chart


class TestBarChart:
    def test_renders_one_line_per_entry(self):
        text = bar_chart({"a": 1.0, "b": 2.0})
        assert len(text.splitlines()) == 2

    def test_largest_value_gets_longest_bar(self):
        lines = bar_chart({"small": 1.0, "big": 10.0}).splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_log_scale_compresses_magnitudes(self):
        linear = bar_chart({"a": 10.0, "b": 10_000.0}).splitlines()
        log = bar_chart({"a": 10.0, "b": 10_000.0}, log_scale=True).splitlines()
        linear_ratio = linear[1].count("#") / max(1, linear[0].count("#"))
        log_ratio = log[1].count("#") / max(1, log[0].count("#"))
        assert log_ratio < linear_ratio

    def test_unit_suffix_rendered(self):
        assert "5x" in bar_chart({"a": 5.0}, unit="x")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            bar_chart({"a": 0.0}, log_scale=True)

    def test_every_bar_at_least_one_cell(self):
        lines = bar_chart({"tiny": 1e-9, "huge": 1.0}).splitlines()
        assert all("#" in line for line in lines)


class TestStackedChart:
    ROWS = [
        {"label": "w1", "a": 0.2, "b": 0.8, "c": 0.0},
        {"label": "w2", "a": 1.0, "b": 1.0, "c": 2.0},
    ]

    def test_bars_have_exact_width(self):
        text = stacked_fraction_chart(
            self.ROWS, parts=("a", "b", "c"), symbols=(".", "#", "="),
            width=40,
        )
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_legend_present(self):
        text = stacked_fraction_chart(
            self.ROWS, parts=("a", "b", "c"), symbols=(".", "#", "=")
        )
        assert text.splitlines()[0].startswith("legend:")

    def test_dominant_part_dominates_bar(self):
        text = stacked_fraction_chart(
            [{"label": "x", "a": 0.9, "b": 0.1}],
            parts=("a", "b"),
            symbols=("#", "."),
            width=50,
        )
        bar = text.splitlines()[1].split("|")[1]
        assert bar.count("#") > 40

    def test_symbol_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_fraction_chart(self.ROWS, parts=("a",), symbols=("#", "."))

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_fraction_chart([], parts=("a",), symbols=("#",))

    def test_zero_total_renders_blank_bar(self):
        text = stacked_fraction_chart(
            [{"label": "silent", "a": 0.0, "b": 0.0}],
            parts=("a", "b"),
            symbols=("#", "."),
            width=10,
        )
        assert "|          |" in text


class TestLinePlot:
    def test_renders_height_rows_plus_legend(self):
        from repro.experiments.charts import line_plot

        text = line_plot({"a": [0, 1, 2, 3]}, height=8, width=20)
        lines = text.splitlines()
        assert len(lines) == 9  # 8 rows + legend
        assert lines[-1].startswith("legend:")

    def test_monotone_series_descends_visually(self):
        from repro.experiments.charts import line_plot

        text = line_plot({"down": [3, 2, 1, 0]}, height=4, width=4)
        rows = text.splitlines()[:-1]
        # First column marker in the top row, last column in the bottom.
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_axis_labels_show_extremes(self):
        from repro.experiments.charts import line_plot

        text = line_plot({"a": [-1.5, 2.5]}, height=5, width=10)
        assert "2.5" in text
        assert "-1.5" in text

    def test_multiple_series_use_distinct_markers(self):
        from repro.experiments.charts import line_plot

        text = line_plot(
            {"a": [0, 1], "b": [1, 0]}, height=5, width=10
        )
        assert "*" in text and "o" in text

    def test_empty_inputs_rejected(self):
        import pytest as _pytest

        from repro.errors import ConfigurationError
        from repro.experiments.charts import line_plot

        with _pytest.raises(ConfigurationError):
            line_plot({})
        with _pytest.raises(ConfigurationError):
            line_plot({"a": []})

    def test_constant_series_does_not_crash(self):
        from repro.experiments.charts import line_plot

        text = line_plot({"flat": [1.0, 1.0, 1.0]}, height=4, width=12)
        assert "flat" in text
