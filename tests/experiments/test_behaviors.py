"""Tests: the neuronal behaviour regimes emerge on Flexon hardware."""

import numpy as np
import pytest

from repro.experiments.behaviors import (
    PRESETS,
    burstiness,
    rate_curve,
    run_behavior,
)


@pytest.fixture(scope="module")
def spikes():
    return {
        name: run_behavior(preset)
        for name, preset in PRESETS.items()
        if name != "class-1 excitability"  # swept separately
    }


class TestRegimes:
    def test_tonic_spiking_is_regular(self, spikes):
        intervals = np.diff(spikes["tonic spiking"])
        assert len(intervals) > 10
        assert intervals.std() / intervals.mean() < 0.05

    def test_phasic_spiking_fires_only_at_onset(self, spikes):
        train = spikes["phasic spiking"]
        assert 1 <= len(train) <= 10
        assert max(train) < 1500  # silent for the last 450 ms

    def test_adaptation_stretches_intervals(self, spikes):
        intervals = np.diff(spikes["spike-frequency adaptation"])
        assert len(intervals) >= 4
        assert intervals[-1] > 1.5 * intervals[0]

    def test_mixed_mode_bursts_then_settles(self, spikes):
        train = spikes["mixed mode"]
        intervals = np.diff(train)
        # Onset burst: the first ISIs are short...
        assert intervals[0] < 60 and intervals[1] < 60
        # ...then the neuron settles into slow tonic singles.
        assert intervals[-1] > 1000
        assert burstiness(train) > 1.0

    def test_refractory_ceiling_caps_rate(self, spikes):
        train = spikes["refractory ceiling"]
        # 10 ms dead time -> at most ~100 Hz regardless of the huge
        # drive; allow one-step slack per cycle.
        duration = PRESETS["refractory ceiling"].steps * 1e-4
        assert len(train) / duration <= 1.05 * (1 / 10e-3)
        assert np.diff(train).min() >= 100  # >= t_ref in steps

    def test_class1_fi_curve_is_continuous_and_monotone(self):
        # COBE integrates the drive into a standing conductance of
        # drive / eps_g = 50x, so the interesting f-I range is small.
        preset = PRESETS["class-1 excitability"]
        drives = [0.0, 0.004, 0.008, 0.012, 0.016, 0.02, 0.03]
        rates = rate_curve(preset, drives)
        assert rates[0] == 0.0
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        # Class 1: arbitrarily low nonzero rates near threshold
        # (no sudden jump to a high rate).
        nonzero = [r for r in rates if r > 0]
        assert nonzero and nonzero[0] < 40.0
        assert rates[-1] > 2 * nonzero[0]


class TestHelpers:
    def test_burstiness_of_empty_train(self):
        assert burstiness([]) == 0.0

    def test_burstiness_counts_clusters(self):
        # Two clusters of 3 and 2 spikes.
        train = [0, 10, 20, 500, 520]
        assert burstiness(train, gap_steps=50) == pytest.approx(2.5)

    def test_burstiness_of_regular_train_is_one(self):
        train = list(range(0, 2000, 200))
        assert burstiness(train, gap_steps=50) == 1.0
