"""Tests for the Figures 4-8 trace regeneration harness."""

import numpy as np

from repro.experiments.figures4to8 import (
    ALL_FIGURES,
    figure4_membrane_decay,
    figure5_input_accumulation,
    figure6_spike_initiation,
    figure8_refractory,
    format_figures,
    spike_count,
)


class TestTraces:
    def test_all_five_figures_present(self):
        assert set(ALL_FIGURES) == {
            "figure4", "figure5", "figure6", "figure7", "figure8",
        }

    def test_figure4_exponential_is_convex_linear_is_straight(self):
        traces = figure4_membrane_decay(steps=300)
        exd = np.asarray(traces["EXD (exponential)"])
        lid = np.asarray(traces["LID (linear)"])
        # Exponential decrements shrink; linear decrements are constant
        # until the clamp engages at rest.
        exd_decrement = -np.diff(exd[:200])
        assert exd_decrement[0] > exd_decrement[-1] > 0
        lid_decrement = -np.diff(lid[:200])
        np.testing.assert_allclose(
            lid_decrement, lid_decrement[0], atol=1e-6
        )

    def test_figure4_both_end_at_rest(self):
        traces = figure4_membrane_decay(steps=600)
        for trace in traces.values():
            assert abs(trace[-1]) < 0.05

    def test_figure5_kernel_peak_ordering(self):
        traces = figure5_input_accumulation(steps=400)
        assert np.argmax(traces["CUB (instant)"]) == 0
        assert (
            np.argmax(traces["COBE (exponential)"])
            < np.argmax(traces["COBA (alpha)"])
        )

    def test_figure6_instant_fires_first_step(self):
        traces = figure6_spike_initiation(steps=100)
        assert traces["instant (LIF)"][0] < 0.1

    def test_figure6_noninstant_trajectories_climb(self):
        # Unlike instant initiation (reset at step 0), the non-instant
        # drives push v *upward* from its start before the spike.
        traces = figure6_spike_initiation(steps=200)
        for key in ("QDI (quadratic)", "EXI (exponential)"):
            trace = np.asarray(traces[key])
            assert trace.max() > trace[0] + 0.05

    def test_figure8_refractory_cuts_rate(self):
        traces = figure8_refractory(steps=1500)
        base = spike_count(traces["no refractory"])
        assert spike_count(traces["AR (absolute)"]) < base
        assert spike_count(traces["RR (relative)"]) < base

    def test_spike_count_on_synthetic_trace(self):
        trace = [0.2, 0.95, 0.0, 0.3, 0.99, 0.05, 0.5]
        assert spike_count(trace) == 2

    def test_run_and_format(self):
        traces = {
            name: builder()
            for name, (builder, _) in list(ALL_FIGURES.items())[:1]
        }
        text = format_figures(traces)
        assert "legend:" in text
        assert "Figure4" in text
