"""Tests for the fault-injection resilience experiment."""

import pytest

from repro.experiments.resilience import (
    BACKENDS,
    SCENARIOS,
    ResilienceRow,
    format_resilience,
    run,
)


@pytest.fixture(scope="module")
def rows():
    return run(steps=100, backends=("reference",))


class TestResilienceRows:
    def test_one_row_per_scenario(self, rows):
        assert [row.scenario for row in rows] == list(SCENARIOS)
        assert all(row.backend == "reference" for row in rows)

    def test_clean_scenario_is_a_perfect_match(self, rows):
        none = rows[0]
        assert none.scenario == "none"
        assert none.overlap == 1.0
        assert none.rate_deviation == 0.0
        assert none.faults_applied == 0

    def test_fault_scenarios_actually_injected(self, rows):
        for row in rows[1:]:
            assert row.faults_applied > 0, row.scenario

    def test_overlap_is_a_fraction(self, rows):
        for row in rows:
            assert 0.0 <= row.overlap <= 1.0

    def test_default_backends_cover_reference_and_hardware(self):
        assert "reference" in BACKENDS
        assert "folded" in BACKENDS


class TestRateDeviation:
    def test_zero_when_counts_match(self):
        row = ResilienceRow("r", "none", 100, 100, 1.0, 0)
        assert row.rate_deviation == 0.0

    def test_relative_change(self):
        row = ResilienceRow("r", "bit-flip", 100, 80, 0.5, 3)
        assert row.rate_deviation == pytest.approx(0.2)

    def test_silent_clean_run_handled(self):
        assert ResilienceRow("r", "none", 0, 0, 1.0, 0).rate_deviation == 0.0


class TestFormatting:
    def test_table_lists_every_row(self, rows):
        text = format_resilience(rows)
        for scenario in SCENARIOS:
            assert scenario in text
        assert "Spike overlap" in text
