"""Tests of the experiment harnesses and their paper-shape claims.

These tests run every table/figure harness at reduced scale and assert
the *shapes* the paper reports (DESIGN.md Section 5), not absolute
numbers.
"""

import pytest

from repro.experiments import figure3, figure12, figure13, table3, table5, table6
from repro.experiments import validation
from repro.experiments.common import format_table, profile_workload
from repro.workloads import workload_names

#: A representative subset keeps CI fast; the benchmarks run all ten.
FAST_WORKLOADS = ["Brunel", "Destexhe-LTS", "Izhikevich", "Vogels-Abbott"]


class TestCommon:
    def test_profile_measures_positive_rates(self):
        profile = profile_workload("Brunel", scale=0.02, steps=150)
        assert profile.firing_rate_hz > 0
        assert profile.stimulus_event_rate > 0
        assert profile.evaluations_per_step == 1.0  # Euler

    def test_profile_rkf45_evaluations(self):
        profile = profile_workload("Vogels-Abbott", scale=0.02, steps=60)
        assert profile.evaluations_per_step >= 6.0

    def test_full_scale_events_use_paper_counts(self):
        profile = profile_workload("Brunel", scale=0.02, steps=100)
        events = profile.full_scale_events()
        assert events["neurons"] == 5_000

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) == 1


class TestFigure3:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure3.run(scale=0.02, steps=120, names=FAST_WORKLOADS)

    def test_two_platforms_per_workload(self, rows):
        assert len(rows) == 2 * len(FAST_WORKLOADS)

    def test_rkf45_cpu_rows_are_neuron_dominated(self, rows):
        for row in rows:
            if row.platform == "CPU" and row.workload in (
                "Destexhe-LTS", "Vogels-Abbott",
            ):
                assert row.neuron_fraction > 0.5, row.workload

    def test_euler_reduces_neuron_share(self, rows):
        by_key = {(r.workload, r.platform): r for r in rows}
        euler = by_key[("Brunel", "CPU")].neuron_fraction
        rkf = by_key[("Vogels-Abbott", "CPU")].neuron_fraction
        assert euler < rkf

    def test_gpu_neuron_share_still_material(self, rows):
        # "neuron computation still contributes to the latency by up
        # to 32.2%" — material but not dominant.
        for row in rows:
            if row.platform == "GPU":
                assert 0.10 <= row.neuron_fraction <= 0.60, row.workload

    def test_formatting_includes_all_workloads(self, rows):
        text = figure3.format_figure3(rows)
        for name in FAST_WORKLOADS:
            assert name in text

    def test_table1_inventory_lists_all_ten(self):
        text = figure3.table1_inventory()
        for name in workload_names():
            assert name.split()[0] in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3.run(steps=300, n=16)

    def test_all_twelve_models_verified(self, rows):
        assert len(rows) == 12

    def test_every_model_bit_exact_between_designs(self, rows):
        assert all(row.bit_exact for row in rows)

    def test_every_model_matches_reference(self, rows):
        for row in rows:
            assert row.spike_match >= 0.97, row.model

    def test_matrix_rendering(self):
        text = table3.format_matrix()
        assert "AdEx" in text and "EXD" in text

    def test_verification_rendering(self, rows):
        text = table3.format_verification(rows)
        assert "Flexon==Folded" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5.run()

    def test_lif_single_signal(self, rows):
        by_label = {row.label: row for row in rows}
        assert by_label["CUB + EXD (LIF)"].n_signals == 1

    def test_qdi_two_extra_signals_three_cycles(self, rows):
        by_label = {row.label: row for row in rows}
        # QDI itself: 2 signals -> 3 cycles through the 2-stage pipe.
        qdi = by_label["QDI + EXD"]
        assert qdi.n_signals == 4  # EXD + COBE + 2 QDI ops
        lif = by_label["CUB + EXD (LIF)"]
        assert lif.single_neuron_cycles == 2

    def test_signals_per_model_ordering(self):
        counts = table5.signals_per_model()
        # More features -> longer programs, AdEx_COBA the longest.
        assert counts["LIF"] < counts["DLIF"] < counts["AdEx"]
        assert max(counts.values()) == counts["AdEx_COBA"]

    def test_listing_contains_fields(self, rows):
        text = table5.format_table5(rows)
        assert "v_acc" in text
        assert "Control signals" in text


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return figure12.run()

    def test_ten_datapaths(self, result):
        assert len(result.datapaths) == 10

    def test_area_ratio_in_paper_band(self, result):
        assert 5.0 <= result.area_ratio <= 6.2

    def test_power_ratio_below_paper_max(self, result):
        assert result.power_ratio <= 3.44

    def test_rendering_includes_ratios(self, result):
        text = figure12.format_figure12(result)
        assert "5.84x" in text


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return table6.run()

    def test_totals_near_paper(self, result):
        assert result.flexon.total_area_mm2 == pytest.approx(9.258, rel=0.15)
        assert result.folded.total_area_mm2 == pytest.approx(7.618, rel=0.15)

    def test_rendering_shows_paper_columns(self, result):
        text = table6.format_table6(result)
        assert "9.258" in text and "7.618" in text


class TestFigure13:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure13.run(scale=0.02, steps=120, names=FAST_WORKLOADS)

    def test_arrays_beat_cpu_everywhere(self, rows):
        for row in rows:
            speedups = row.speedups()
            assert speedups["flexon_vs_cpu"] > 5.0, row.workload
            assert speedups["folded_vs_cpu"] > 5.0, row.workload

    def test_arrays_beat_gpu_everywhere(self, rows):
        for row in rows:
            speedups = row.speedups()
            assert speedups["flexon_vs_gpu"] > 1.0, row.workload

    def test_destexhe_is_where_baseline_flexon_wins(self, rows):
        for row in rows:
            speedups = row.speedups()
            folded_wins = (
                speedups["folded_vs_cpu"] > speedups["flexon_vs_cpu"]
            )
            if row.workload.startswith("Destexhe"):
                assert not folded_wins, row.workload
            elif row.workload in ("Brunel", "Izhikevich", "Vogels-Abbott"):
                assert folded_wins, row.workload

    def test_baseline_flexon_wins_energy_efficiency(self, rows):
        # Section VI-C: "the Flexon array tends to achieve higher
        # energy efficiency throughout the SNNs."
        wins = sum(
            1
            for row in rows
            if row.efficiency_gains()["flexon_vs_cpu"]
            > row.efficiency_gains()["folded_vs_cpu"]
        )
        assert wins >= len(rows) - 1

    def test_geomeans_within_order_of_paper(self, rows):
        speed = figure13.geomean_speedups(rows)
        assert 20 <= speed["flexon_vs_cpu"] <= 400
        assert 1.5 <= speed["flexon_vs_gpu"] <= 40
        efficiency = figure13.geomean_efficiency(rows)
        assert 1_000 <= efficiency["flexon_vs_cpu"] <= 40_000

    def test_rendering(self, rows):
        text = figure13.format_figure13(rows)
        assert "geomean latency" in text
        assert "paper 87.4x" in text


class TestValidation:
    @pytest.fixture(scope="class")
    def rows(self):
        return validation.run(scale=0.03, steps=250, names=FAST_WORKLOADS)

    def test_designs_identical_on_every_workload(self, rows):
        assert all(row.designs_identical for row in rows)

    def test_spike_counts_agree(self, rows):
        for row in rows:
            assert row.count_agreement >= 0.9, row.workload

    def test_early_overlap_high(self, rows):
        for row in rows:
            assert row.early_overlap >= 0.7, row.workload

    def test_rendering(self, rows):
        text = validation.format_validation(rows)
        assert "Flexon==Folded" in text
