"""HealthHook on live runs: silence, firing, bit-identity, overhead."""

import gc
import os
import time

import pytest

from repro.health import (
    AlertManager,
    AlertRule,
    HealthHook,
    load_alert_rules,
)
from repro.health.detectors import SpikeRateDetector
from repro.network.simulator import Simulator
from repro.supervision.job import spike_digest
from repro.telemetry.registry import MetricsRegistry
from repro.workloads import build_workload
from repro.workloads.builders import DT

EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "alerts.json"
)


def _simulator(scale=0.02, seed=7):
    network = build_workload("Brunel", scale=scale, seed=seed)
    return network, Simulator(network, dt=DT, seed=seed + 1)


class TestHealthyRun:
    def test_healthy_run_fires_zero_alerts(self):
        """Acceptance: the shipped rule pack is quiet on a healthy run."""
        _, simulator = _simulator()
        manager = AlertManager(load_alert_rules(EXAMPLE_SPEC))
        hook = HealthHook(manager, simulator=simulator)
        result = simulator.run(60, hooks=[hook])
        assert result.alerts["fired_total"] == 0
        assert result.alerts["fired"] == []
        assert result.alerts["firing"] == 0
        assert result.alerts["rules"] == 8

    def test_result_alerts_summary_is_attached(self):
        _, simulator = _simulator()
        manager = AlertManager(
            [AlertRule(name="quiet", detector="spike-rate", kind="silent")]
        )
        hook = HealthHook(manager, simulator=simulator)
        result = simulator.run(20, hooks=[hook])
        assert set(result.alerts) >= {
            "rules", "fired", "fired_total", "pending", "firing", "resolved",
        }

    def test_resources_published_when_metrics_given(self):
        _, simulator = _simulator()
        metrics = MetricsRegistry()
        manager = AlertManager(
            [AlertRule(name="quiet", detector="spike-rate", kind="silent")],
            metrics=metrics,
        )
        hook = HealthHook(manager, simulator=simulator, metrics=metrics)
        simulator.run(10, hooks=[hook])
        assert metrics.value_of("process_resident_memory_bytes") > 0


class TestUnhealthyRun:
    def test_silent_population_fires_against_a_warmed_baseline(self):
        # Warm the rate baselines as if the populations had been firing
        # at 10 Hz, then run a network that produces no spikes at all:
        # every population reads as newly silent.
        network = build_workload("Brunel", scale=0.02, seed=7)
        network.stimuli.clear()  # no drive: no spikes
        simulator = Simulator(network, dt=DT, seed=8)
        detector = SpikeRateDetector(warmup=2)
        for _ in range(8):
            for name in network.populations:
                detector.observe(name, 10.0)
        manager = AlertManager(
            [AlertRule(name="silent-population", detector="spike-rate",
                       kind="silent", severity="critical")]
        )
        hook = HealthHook(
            manager, simulator=simulator, rate_detector=detector,
            publish_interval=0.0,
        )
        result = simulator.run(30, hooks=[hook])
        assert "silent-population" in result.alerts["fired"]

    def test_hook_errors_fire_the_events_rule(self):
        from repro.engine.hooks import PhaseHook

        class Exploding(PhaseHook):
            def on_phase(self, phase, step, seconds, operations):
                raise RuntimeError("boom")

        _, simulator = _simulator()
        manager = AlertManager(
            [AlertRule(name="hook-errors", detector="events",
                       kind="hook-error")]
        )
        # The failure is isolated at the end of step 0, so the run-end
        # evaluation sees it on result.hook_errors.
        hook = HealthHook(manager, simulator=simulator)
        with pytest.warns(RuntimeWarning, match="hook isolated"):
            result = simulator.run(10, hooks=[Exploding(), hook])
        assert len(result.hook_errors) == 1
        assert result.alerts["fired"] == ["hook-errors"]


class TestBitIdentity:
    def test_monitored_run_is_spike_identical_to_bare_run(self):
        """Observation must never perturb the simulation."""
        _, bare_sim = _simulator(seed=11)
        _, monitored_sim = _simulator(seed=11)
        manager = AlertManager(load_alert_rules(EXAMPLE_SPEC))
        hook = HealthHook(
            manager, simulator=monitored_sim, publish_interval=0.0
        )
        bare = bare_sim.run(40)
        monitored = monitored_sim.run(40, hooks=[hook])
        assert spike_digest(monitored.spikes) == spike_digest(bare.spikes)


class TestOverheadBudget:
    def test_health_hook_overhead_below_five_percent(self):
        """Acceptance: a healthy ``--alerts`` run costs < 5% steps/sec.

        Same ABBA-interleaved best-of discipline as ``repro profile``:
        host drift and position-in-pair bias hit both series alike, the
        best rep suppresses scheduler noise, and noisy shared CI hosts
        get retries before the assertion is allowed to fail.
        """
        # Asserted at a scale where a step does substantial work: at
        # toy scales the hook's fixed run-end evaluation is measured
        # against a nearly empty run and noise dominates.
        steps, reps = 240, 6
        _, bare_sim = _simulator(scale=0.2, seed=3)
        _, monitored_sim = _simulator(scale=0.2, seed=3)
        manager = AlertManager(load_alert_rules(EXAMPLE_SPEC))
        hook = HealthHook(manager, simulator=monitored_sim)
        perf_counter = time.perf_counter

        def run_bare():
            start = perf_counter()
            bare_sim.run(steps, record_spikes=False)
            return steps / (perf_counter() - start)

        def run_monitored():
            start = perf_counter()
            monitored_sim.run(steps, record_spikes=False, hooks=[hook])
            return steps / (perf_counter() - start)

        run_bare(), run_monitored()  # warm both paths before timing
        for attempt in range(3):
            bare_sps, monitored_sps = [], []
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for rep in range(reps):
                    if rep % 2 == 0:
                        bare_sps.append(run_bare())
                        monitored_sps.append(run_monitored())
                    else:
                        monitored_sps.append(run_monitored())
                        bare_sps.append(run_bare())
            finally:
                if gc_was_enabled:
                    gc.enable()
            overhead = 1.0 - max(monitored_sps) / max(bare_sps)
            if overhead < 0.05:
                break
            time.sleep(2.0)
        assert overhead < 0.05, (bare_sps, monitored_sps)
