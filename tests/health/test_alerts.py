"""Alert rules: spec parsing and the pending/firing/resolved machine."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.health.alerts import (
    ALERTS_SCHEMA,
    AlertManager,
    AlertRule,
    HealthMonitor,
    load_alert_rules,
    parse_alert_rules,
)
from repro.health.detectors import HealthSignal
from repro.observability.server import EventBus, StatusBoard
from repro.telemetry import MetricsRegistry


def _signal(detector="spike-rate", subject="exc", kind="silent", value=0.0):
    return HealthSignal(detector, subject, kind, value, 0.5, "exc went quiet")


class TestAlertRule:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="both", detector="spike-rate", metric="steps")
        with pytest.raises(ConfigurationError):
            AlertRule(name="neither")

    def test_metric_rules_need_threshold(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="m", metric="sim_steps_total")

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="m", metric="x", threshold=1.0, op="~=")

    def test_negative_for_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="d", detector="events", for_seconds=-1.0)


class TestParseAlertRules:
    def test_parses_schema_stamped_document(self):
        rules = parse_alert_rules({
            "schema": ALERTS_SCHEMA,
            "rules": [{"name": "quiet", "detector": "spike-rate",
                       "kind": "silent", "for_seconds": 1.5}],
        })
        (rule,) = rules
        assert rule.name == "quiet"
        assert rule.for_seconds == 1.5

    def test_bare_list_accepted(self):
        (rule,) = parse_alert_rules([{"name": "d", "detector": "events"}])
        assert rule.detector == "events"

    def test_wrong_schema_stamp_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_alert_rules({"schema": "repro-alerts/9", "rules": []})

    def test_unknown_key_rejected_not_ignored(self):
        # A typoed 'for_second' must not silently disarm the rule.
        with pytest.raises(ConfigurationError, match="for_second"):
            parse_alert_rules([{
                "name": "quiet", "detector": "spike-rate", "for_second": 5,
            }])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_alert_rules([
                {"name": "a", "detector": "events"},
                {"name": "a", "detector": "spike-rate"},
            ])

    def test_empty_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_alert_rules({"rules": []})

    def test_labels_must_be_object(self):
        with pytest.raises(ConfigurationError):
            parse_alert_rules([{
                "name": "m", "metric": "x", "threshold": 1,
                "labels": ["backend"],
            }])


class TestLoadAlertRules:
    def test_loads_the_shipped_example(self, tmp_path):
        spec = tmp_path / "alerts.json"
        spec.write_text(json.dumps({
            "rules": [{"name": "quiet", "detector": "spike-rate"}],
        }))
        (rule,) = load_alert_rules(str(spec))
        assert rule.name == "quiet"

    def test_missing_file_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            load_alert_rules("/nonexistent/alerts.json")

    def test_invalid_json_is_configuration_error(self, tmp_path):
        spec = tmp_path / "alerts.json"
        spec.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_alert_rules(str(spec))


class TestStateMachine:
    """The Prometheus lifecycle, driven with an injected clock."""

    def test_pending_fires_after_for_seconds(self):
        manager = AlertManager([
            AlertRule(name="quiet", detector="spike-rate", kind="silent",
                      for_seconds=1.0),
        ])
        manager.evaluate(0.0, [_signal()])
        assert manager.counts() == {"pending": 1, "firing": 0, "resolved": 0}
        manager.evaluate(0.5, [_signal()])  # not held long enough yet
        assert manager.counts()["firing"] == 0
        manager.evaluate(1.0, [_signal()])
        assert manager.counts() == {"pending": 0, "firing": 1, "resolved": 0}
        assert manager.summary()["fired"] == ["quiet"]

    def test_pending_that_recovers_never_fires(self):
        manager = AlertManager([
            AlertRule(name="quiet", detector="spike-rate", kind="silent",
                      for_seconds=5.0),
        ])
        manager.evaluate(0.0, [_signal()])
        manager.evaluate(1.0, [])  # condition cleared inside the debounce
        assert manager.counts() == {"pending": 0, "firing": 0, "resolved": 0}
        assert manager.summary()["fired_total"] == 0
        assert manager.document()["alerts"] == []

    def test_firing_resolves_and_stays_listed(self):
        manager = AlertManager([
            AlertRule(name="quiet", detector="spike-rate", kind="silent"),
        ])
        manager.evaluate(0.0, [_signal()])  # for_seconds=0: fires at once
        assert manager.counts()["firing"] == 1
        manager.evaluate(1.0, [])
        assert manager.counts() == {"pending": 0, "firing": 0, "resolved": 1}
        (alert,) = manager.document()["alerts"]
        assert [h["state"] for h in alert["history"]] == [
            "pending", "firing", "resolved",
        ]
        assert alert["fired_at"] == 0.0
        assert alert["resolved_at"] == 1.0

    def test_resolved_alert_retriggers_as_fresh_pending(self):
        manager = AlertManager([
            AlertRule(name="quiet", detector="spike-rate", kind="silent",
                      for_seconds=10.0),
        ])
        manager.evaluate(0.0, [_signal()])
        manager.evaluate(10.0, [_signal()])  # fires
        manager.evaluate(11.0, [])  # resolves
        manager.evaluate(12.0, [_signal()])  # back: fresh pending
        assert manager.counts()["pending"] == 1
        assert manager.summary()["fired_total"] == 1

    def test_subjects_tracked_independently(self):
        manager = AlertManager([
            AlertRule(name="quiet", detector="spike-rate", kind="silent"),
        ])
        manager.evaluate(0.0, [
            _signal(subject="exc"), _signal(subject="inh"),
        ])
        assert manager.counts()["firing"] == 2
        manager.evaluate(1.0, [_signal(subject="exc")])
        counts = manager.counts()
        assert counts["firing"] == 1 and counts["resolved"] == 1

    def test_detector_rule_with_threshold_compares_signal_value(self):
        manager = AlertManager([
            AlertRule(name="big-skew", detector="straggler",
                      threshold=2.0, op=">"),
        ])
        small = HealthSignal("straggler", "shard1", "straggler", 1.0, 0.5, "m")
        big = HealthSignal("straggler", "shard1", "straggler", 3.0, 0.5, "m")
        manager.evaluate(0.0, [small])
        assert manager.counts()["firing"] == 0
        manager.evaluate(1.0, [big])
        assert manager.counts()["firing"] == 1

    def test_metric_rule_reads_registry(self):
        registry = MetricsRegistry()
        registry.counter("hook_errors_total").inc(3)
        manager = AlertManager([
            AlertRule(name="hooks", metric="hook_errors_total",
                      threshold=0.0, op=">"),
        ])
        manager.evaluate(0.0, [], metrics=registry)
        assert manager.counts()["firing"] == 1
        (alert,) = manager.document()["alerts"]
        assert alert["subject"] == "hook_errors_total"
        assert "= 3" in alert["message"]

    def test_metric_rule_missing_family_is_no_data_not_zero(self):
        registry = MetricsRegistry()
        manager = AlertManager([
            # op "<" against threshold 5: absent data must NOT satisfy
            # the comparison as if the value were 0.
            AlertRule(name="slow", metric="run_steps_per_sec",
                      threshold=5.0, op="<"),
        ])
        manager.evaluate(0.0, [], metrics=registry)
        assert manager.counts() == {"pending": 0, "firing": 0, "resolved": 0}


class TestPublishing:
    def _manager(self):
        status = StatusBoard(state="running")
        bus = EventBus()
        registry = MetricsRegistry()
        manager = AlertManager(
            [AlertRule(name="quiet", detector="spike-rate", kind="silent",
                       severity="critical")],
            status=status, bus=bus, metrics=registry,
        )
        return manager, status, bus, registry

    def test_transitions_publish_sse_alert_events(self):
        manager, _, bus, _ = self._manager()
        with bus.subscribe() as subscription:
            manager.evaluate(0.0, [_signal()])
            pending = subscription.get(timeout=1.0)
            firing = subscription.get(timeout=1.0)
        assert pending["type"] == "alert"
        assert pending["state"] == "pending"
        assert firing["state"] == "firing"
        assert firing["rule"] == "quiet"
        assert firing["severity"] == "critical"

    def test_status_board_carries_the_alert_block(self):
        manager, status, _, _ = self._manager()
        manager.evaluate(0.0, [_signal()])
        block = status.snapshot()["alerts"]
        assert block["firing"] == 1
        assert block["fired_total"] == 1
        (active,) = block["active"]
        assert active.startswith("[critical] quiet (exc):")

    def test_metrics_track_fired_and_firing(self):
        manager, _, _, registry = self._manager()
        manager.evaluate(0.0, [_signal()])
        assert registry.value_of("alerts_fired_total", {"rule": "quiet"}) == 1
        assert registry.value_of("alerts_firing") == 1
        manager.evaluate(1.0, [])
        assert registry.value_of("alerts_firing") == 0
        # fired_total is cumulative, not a live count.
        assert registry.value_of("alerts_fired_total") == 1


class TestHealthMonitor:
    def test_barrier_skew_drives_a_straggler_alert(self):
        manager = AlertManager([
            AlertRule(name="straggler", detector="straggler"),
        ])
        monitor = HealthMonitor(manager)
        monitor.barrier_wait(0, 0.001)
        monitor.barrier_wait(1, 0.002)
        # A wait past the detector floor forces an immediate evaluation
        # (barrier epochs can be faster than the tick throttle).
        monitor.barrier_wait(1, 3.0)
        assert manager.counts()["firing"] == 1
        # Healthy epochs age the peak out; finish() resolves it.
        for _ in range(8):
            monitor.barrier_wait(1, 0.001)
        monitor.finish()
        assert manager.counts() == {"pending": 0, "firing": 0, "resolved": 1}
        assert manager.summary()["fired"] == ["straggler"]

    def test_event_totals_drive_event_rules(self):
        manager = AlertManager([
            AlertRule(name="degraded", detector="events", kind="degraded"),
        ])
        monitor = HealthMonitor(manager)
        monitor.event_total("degraded", 1)
        monitor.tick(force=True)
        assert manager.counts()["firing"] == 1

    def test_background_thread_starts_and_stops_cleanly(self):
        manager = AlertManager([
            AlertRule(name="degraded", detector="events", kind="degraded"),
        ])
        monitor = HealthMonitor(manager, interval=0.01)
        monitor.start()
        monitor.start()  # idempotent
        monitor.event_total("degraded", 1)
        monitor.finish()
        assert monitor._thread is None
        assert manager.summary()["fired_total"] == 1
