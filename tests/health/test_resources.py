"""Per-process resource telemetry: readers, sampler, published families."""

from repro.health.resources import (
    PROCESS_CPU,
    PROCESS_FDS,
    PROCESS_RSS,
    ResourceSampler,
    declare_process_metrics,
    read_cpu_seconds,
    read_open_fds,
    read_rss_bytes,
)
from repro.telemetry import MetricsRegistry


class TestReaders:
    def test_rss_is_positive_on_this_host(self):
        # A running Python interpreter is megabytes resident.
        assert read_rss_bytes() > 1_000_000

    def test_cpu_seconds_nonnegative_and_monotone(self):
        first = read_cpu_seconds()
        # Burn a little CPU so the second reading can only grow.
        sum(i * i for i in range(200_000))
        second = read_cpu_seconds()
        assert 0.0 <= first <= second

    def test_open_fds_counts_a_newly_opened_file(self, tmp_path):
        before = read_open_fds()
        if before is None:  # /proc-less platform: reader degrades to None
            return
        with open(tmp_path / "probe", "w"):
            during = read_open_fds()
        assert during == before + 1


class TestResourceSampler:
    def test_sample_has_the_heartbeat_keys(self):
        sample = ResourceSampler().sample()
        assert set(sample) == {"rss_bytes", "cpu_seconds", "open_fds"}
        assert sample["rss_bytes"] > 0.0
        assert sample["cpu_seconds"] >= 0.0

    def test_cpu_floor_keeps_the_counter_monotone(self):
        sampler = ResourceSampler()
        sampler.sample()
        # Simulate a getrusage glitch reporting less CPU than before.
        sampler._cpu_floor = 1e9
        assert sampler.sample()["cpu_seconds"] == 1e9

    def test_publish_lands_on_the_pinned_families(self):
        registry = MetricsRegistry()
        values = ResourceSampler().publish(registry)
        assert registry.value_of(PROCESS_RSS) == values["rss_bytes"]
        assert registry.value_of(PROCESS_CPU) == values["cpu_seconds"]
        if values["open_fds"] is not None:
            assert registry.value_of(PROCESS_FDS) == values["open_fds"]

    def test_publish_is_repeatable_on_one_registry(self):
        # Every /metrics scrape republishes; declaration must be
        # idempotent and values must refresh in place.
        registry = MetricsRegistry()
        sampler = ResourceSampler()
        sampler.publish(registry)
        second = sampler.publish(registry)
        assert registry.value_of(PROCESS_CPU) == second["cpu_seconds"]


class TestDeclareProcessMetrics:
    def test_names_and_kinds_are_pinned(self):
        registry = MetricsRegistry()
        declare_process_metrics(registry)
        text = registry.to_prometheus()
        assert "# TYPE process_resident_memory_bytes gauge" in text
        assert "# TYPE process_cpu_seconds_total counter" in text
        assert "# TYPE process_open_fds gauge" in text
