"""Streaming anomaly detectors: baselines, classification, recovery."""

import pytest

from repro.health.detectors import (
    EventMonitor,
    EwmaBaseline,
    SaturationDetector,
    SpikeRateDetector,
    StragglerDetector,
)


class TestEwmaBaseline:
    def test_first_sample_sets_mean_exactly(self):
        baseline = EwmaBaseline()
        baseline.update(12.0)
        assert baseline.mean == 12.0
        assert baseline.std == 0.0

    def test_mean_tracks_a_level_shift(self):
        baseline = EwmaBaseline(alpha=0.5)
        for _ in range(20):
            baseline.update(10.0)
        assert baseline.mean == pytest.approx(10.0)
        for _ in range(20):
            baseline.update(20.0)
        assert baseline.mean == pytest.approx(20.0, rel=1e-3)

    def test_zscore_flags_outlier_against_noisy_baseline(self):
        baseline = EwmaBaseline(alpha=0.2)
        for value in (9.0, 11.0, 10.0, 9.5, 10.5) * 4:
            baseline.update(value)
        assert abs(baseline.zscore(10.0)) < 2.0
        assert abs(baseline.zscore(30.0)) > 4.0

    def test_flat_baseline_never_divides_by_zero(self):
        baseline = EwmaBaseline()
        for _ in range(10):
            baseline.update(10.0)
        # std is 0; the proportional floor keeps the score finite.
        z = baseline.zscore(15.0)
        assert z == pytest.approx((15.0 - 10.0) / 0.5)


def _warm(detector, population="exc", rate=10.0, n=8):
    for _ in range(n):
        detector.observe(population, rate)


class TestSpikeRateDetector:
    def test_healthy_steady_rate_never_signals(self):
        detector = SpikeRateDetector()
        _warm(detector, n=50)
        assert detector.signals() == []

    def test_warmup_observations_never_signal(self):
        detector = SpikeRateDetector(warmup=4)
        # Wild swings inside the warmup window train the baseline only.
        for rate in (0.0, 100.0, 0.0, 100.0):
            detector.observe("exc", rate)
            assert detector.signals() == []

    def test_silence_after_firing_baseline_signals(self):
        detector = SpikeRateDetector()
        _warm(detector, rate=10.0)
        detector.observe("exc", 0.0)
        (signal,) = detector.signals()
        assert signal.kind == "silent"
        assert signal.subject == "exc"
        assert signal.detector == "spike-rate"

    def test_always_silent_population_never_signals_silent(self):
        detector = SpikeRateDetector()
        _warm(detector, rate=0.0, n=20)
        assert detector.signals() == []

    def test_explosion_signals_and_does_not_train_baseline(self):
        detector = SpikeRateDetector(explode_ratio=5.0)
        _warm(detector, rate=10.0)
        for _ in range(5):
            detector.observe("exc", 500.0)
        (signal,) = detector.signals()
        assert signal.kind == "exploding"
        # The anomaly must not have dragged the baseline toward itself:
        # a return to the old level reads as healthy immediately.
        detector.observe("exc", 10.0)
        assert detector.signals() == []

    def test_drift_signals_between_silent_and_exploding(self):
        detector = SpikeRateDetector(z_threshold=4.0)
        _warm(detector, rate=10.0, n=20)
        detector.observe("exc", 25.0)  # 2.5x: not exploding, not silent
        (signal,) = detector.signals()
        assert signal.kind == "drifting"

    def test_recovery_clears_the_signal(self):
        detector = SpikeRateDetector()
        _warm(detector, rate=10.0)
        detector.observe("exc", 0.0)
        assert detector.signals()
        detector.observe("exc", 10.0)
        assert detector.signals() == []

    def test_populations_are_independent(self):
        detector = SpikeRateDetector()
        _warm(detector, population="exc", rate=10.0)
        _warm(detector, population="inh", rate=20.0)
        detector.observe("exc", 0.0)
        detector.observe("inh", 20.0)
        (signal,) = detector.signals()
        assert signal.subject == "exc"


class TestSaturationDetector:
    def test_growth_signals_until_it_stops(self):
        detector = SaturationDetector()
        detector.observe("exc", 5)
        (signal,) = detector.signals()
        assert signal.kind == "saturation-growth"
        assert signal.value == 5.0
        detector.observe("exc", 5)  # no growth since last check
        assert detector.signals() == []

    def test_growth_threshold_filters_trickle(self):
        detector = SaturationDetector(growth_threshold=10)
        detector.observe("exc", 8)
        assert detector.signals() == []
        detector.observe("exc", 40)
        assert len(detector.signals()) == 1


class TestStragglerDetector:
    def test_one_slow_shard_among_fast_peers_signals(self):
        detector = StragglerDetector(min_seconds=0.5)
        for _ in range(4):
            detector.observe(0, 0.001)
            detector.observe(1, 0.002)
            detector.observe(2, 0.001)
        detector.observe(1, 3.0)
        (signal,) = detector.signals()
        assert signal.subject == "shard1"
        assert signal.kind == "straggler"
        assert signal.value == 3.0

    def test_fast_jitter_below_floor_never_signals(self):
        detector = StragglerDetector(min_seconds=0.5)
        detector.observe(0, 0.001)
        detector.observe(1, 0.4)  # above 4x peers, below the floor
        assert detector.signals() == []

    def test_uniformly_slow_shards_blame_nobody(self):
        detector = StragglerDetector(skew_ratio=4.0, min_seconds=0.5)
        for shard in range(3):
            detector.observe(shard, 2.0)
        # Each shard's peers are just as slow: relative test holds.
        assert detector.signals() == []

    def test_peak_ages_out_after_window_healthy_epochs(self):
        detector = StragglerDetector(min_seconds=0.5, window=4)
        detector.observe(0, 0.001)
        detector.observe(1, 3.0)
        assert detector.signals()
        for _ in range(4):
            detector.observe(1, 0.001)
        assert detector.signals() == []

    def test_resource_attribution_lands_in_the_message(self):
        detector = StragglerDetector(min_seconds=0.5)
        detector.observe(0, 0.001)
        detector.observe(1, 3.0)
        detector.attribute(1, {"rss_bytes": 256e6, "cpu_seconds": 1.5})
        (signal,) = detector.signals()
        assert "rss 256 MB" in signal.message
        assert "cpu 1.5s" in signal.message


class TestEventMonitor:
    def test_growth_signals_with_linger_then_clears(self):
        monitor = EventMonitor(linger=2)
        monitor.observe("fallback", 1)
        (signal,) = monitor.signals()
        assert signal.kind == "fallback"
        assert signal.value == 1.0
        monitor.observe("fallback", 1)  # no growth; linger 2 -> 1
        assert monitor.signals()
        monitor.observe("fallback", 1)  # linger 1 -> 0
        assert monitor.signals() == []

    def test_repeated_growth_refreshes_linger(self):
        monitor = EventMonitor(linger=2)
        monitor.observe("degraded", 1)
        monitor.observe("degraded", 2)
        monitor.observe("degraded", 2)
        assert monitor.signals()  # still fresh: growth refreshed it

    def test_zero_counts_never_signal(self):
        monitor = EventMonitor()
        for _ in range(5):
            monitor.observe("hook-error", 0)
        assert monitor.signals() == []
