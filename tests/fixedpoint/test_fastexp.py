"""Tests of the Schraudolph fast exponential."""

import numpy as np
import pytest

from repro.fixedpoint import FLEXON_FORMAT, fast_exp, fx_exp, fx_from_float, fx_to_float
from repro.fixedpoint.fastexp import max_relative_error


class TestFastExp:
    def test_exp_zero_close_to_one(self):
        assert fast_exp(0.0) == pytest.approx(1.0, rel=0.05)

    def test_exp_one_close_to_e(self):
        assert fast_exp(1.0) == pytest.approx(np.e, rel=0.05)

    def test_relative_error_within_schraudolph_bound(self):
        # Schraudolph's published worst case is ~4% with the staircase
        # mantissa; allow a small margin.
        assert max_relative_error(-5.0, 5.0) < 0.05

    def test_monotone_on_grid(self):
        ys = np.linspace(-10, 10, 2001)
        out = fast_exp(ys)
        assert np.all(np.diff(out) >= 0)

    def test_always_positive(self):
        ys = np.linspace(-100, 100, 401)
        assert np.all(fast_exp(ys) > 0)

    def test_scalar_returns_float(self):
        assert isinstance(fast_exp(0.5), float)

    def test_array_shape_preserved(self):
        ys = np.zeros((3, 4))
        assert fast_exp(ys).shape == (3, 4)

    def test_extreme_inputs_do_not_overflow(self):
        assert np.isfinite(fast_exp(1e6))
        assert np.isfinite(fast_exp(-1e6))
        assert fast_exp(-1e6) >= 0.0


class TestFxExp:
    def test_matches_float_path_within_quantisation(self):
        fmt = FLEXON_FORMAT
        for value in (-3.0, -1.0, 0.0, 0.5, 2.0):
            raw = fx_from_float(value, fmt)
            out = fx_to_float(fx_exp(raw, fmt), fmt)
            assert out == pytest.approx(
                fast_exp(value), rel=1e-6, abs=2 * fmt.resolution
            )

    def test_saturates_at_format_max(self):
        fmt = FLEXON_FORMAT
        raw = fx_from_float(100.0, fmt)
        assert fx_exp(raw, fmt) == fmt.raw_max

    def test_large_negative_underflows_to_zero(self):
        fmt = FLEXON_FORMAT
        raw = fx_from_float(-30.0, fmt)
        assert fx_to_float(fx_exp(raw, fmt), fmt) == pytest.approx(
            0.0, abs=2 * fmt.resolution
        )

    def test_vectorised(self):
        fmt = FLEXON_FORMAT
        raw = fx_from_float(np.array([-1.0, 0.0, 1.0]), fmt)
        out = fx_exp(raw, fmt)
        assert out.shape == (3,)
        assert out[0] < out[1] < out[2]
