"""Unit tests for the Q-format fixed-point substrate."""

import numpy as np
import pytest

from repro.errors import FixedPointFormatError, FixedPointOverflowError
from repro.fixedpoint import (
    FLEXON_FORMAT,
    MEMBRANE_FORMAT,
    Fixed,
    FixedFormat,
    fx_add,
    fx_from_float,
    fx_mul,
    fx_neg,
    fx_sub,
    fx_to_float,
)


class TestFixedFormat:
    def test_flexon_format_is_32_bit_with_22_fraction_bits(self):
        assert FLEXON_FORMAT.total_bits == 32
        assert FLEXON_FORMAT.frac_bits == 22
        assert FLEXON_FORMAT.int_bits == 10

    def test_membrane_format_saves_bits(self):
        # The truncate optimisation: membrane storage is narrower.
        assert MEMBRANE_FORMAT.total_bits < FLEXON_FORMAT.total_bits
        assert MEMBRANE_FORMAT.frac_bits == FLEXON_FORMAT.frac_bits

    def test_scale(self):
        assert FixedFormat(16, 8).scale == 256

    def test_signed_range(self):
        fmt = FixedFormat(8, 4)
        assert fmt.raw_min == -128
        assert fmt.raw_max == 127
        assert fmt.min_value == -8.0
        assert fmt.max_value == pytest.approx(7.9375)

    def test_unsigned_range(self):
        fmt = FixedFormat(8, 4, signed=False)
        assert fmt.raw_min == 0
        assert fmt.raw_max == 255

    def test_resolution(self):
        assert FixedFormat(16, 10).resolution == pytest.approx(1 / 1024)

    def test_describe(self):
        assert FixedFormat(32, 22).describe() == "Q9.22"
        assert FixedFormat(8, 8, signed=False).describe() == "UQ0.8"

    def test_rejects_bad_total_bits(self):
        with pytest.raises(FixedPointFormatError):
            FixedFormat(0, 0)
        with pytest.raises(FixedPointFormatError):
            FixedFormat(64, 10)

    def test_rejects_bad_frac_bits(self):
        with pytest.raises(FixedPointFormatError):
            FixedFormat(16, 17)
        with pytest.raises(FixedPointFormatError):
            FixedFormat(16, -1)


class TestConversion:
    def test_round_trip_exact_values(self):
        for value in (0.0, 0.5, -0.25, 1.0, -1.0, 3.75):
            raw = fx_from_float(value, FLEXON_FORMAT)
            assert fx_to_float(raw, FLEXON_FORMAT) == value

    def test_quantisation_error_bounded_by_half_lsb(self):
        fmt = FLEXON_FORMAT
        values = np.linspace(-5, 5, 1001)
        raw = fx_from_float(values, fmt)
        back = fx_to_float(raw, fmt)
        assert np.max(np.abs(back - values)) <= fmt.resolution / 2 + 1e-12

    def test_rounds_to_nearest(self):
        fmt = FixedFormat(16, 4)  # resolution 1/16
        assert fx_from_float(0.06, fmt) == 1  # 0.96 LSB -> rounds to 1
        assert fx_from_float(0.03, fmt) == 0  # 0.48 LSB -> rounds to 0

    def test_negative_rounding_symmetry(self):
        fmt = FixedFormat(16, 4)
        assert fx_from_float(-0.06, fmt) == -1
        assert fx_from_float(-0.03, fmt) == 0

    def test_saturates_at_bounds(self):
        fmt = FixedFormat(8, 4)
        assert fx_from_float(100.0, fmt) == fmt.raw_max
        assert fx_from_float(-100.0, fmt) == fmt.raw_min

    def test_strict_mode_raises_on_overflow(self):
        fmt = FixedFormat(8, 4)
        with pytest.raises(FixedPointOverflowError):
            fx_from_float(100.0, fmt, strict=True)

    def test_array_conversion(self):
        values = np.array([0.5, -0.5, 2.0])
        raw = fx_from_float(values, FLEXON_FORMAT)
        assert isinstance(raw, np.ndarray)
        np.testing.assert_allclose(fx_to_float(raw, FLEXON_FORMAT), values)


class TestArithmetic:
    def test_add(self):
        fmt = FLEXON_FORMAT
        a = fx_from_float(1.5, fmt)
        b = fx_from_float(2.25, fmt)
        assert fx_to_float(fx_add(a, b, fmt), fmt) == 3.75

    def test_sub(self):
        fmt = FLEXON_FORMAT
        a = fx_from_float(1.0, fmt)
        b = fx_from_float(2.5, fmt)
        assert fx_to_float(fx_sub(a, b, fmt), fmt) == -1.5

    def test_neg(self):
        fmt = FLEXON_FORMAT
        a = fx_from_float(0.75, fmt)
        assert fx_to_float(fx_neg(a, fmt), fmt) == -0.75

    def test_mul_exact_powers_of_two(self):
        fmt = FLEXON_FORMAT
        a = fx_from_float(0.5, fmt)
        b = fx_from_float(0.25, fmt)
        assert fx_to_float(fx_mul(a, b, fmt), fmt) == 0.125

    def test_mul_truncates_toward_negative_infinity(self):
        fmt = FixedFormat(16, 4)
        # 0.0625 * 0.0625 = 0.00390625, below one LSB (0.0625)
        a = fx_from_float(0.0625, fmt)
        assert fx_mul(a, a, fmt) == 0
        # Negative products truncate downward (arithmetic shift).
        b = fx_from_float(-0.0625, fmt)
        assert fx_mul(a, b, fmt) == -1  # -0.0039 -> -1 raw (-0.0625)

    def test_mul_by_one_is_identity(self):
        fmt = FLEXON_FORMAT
        one = fx_from_float(1.0, fmt)
        for value in (0.3, -2.7, 100.0):
            raw = fx_from_float(value, fmt)
            assert fx_mul(raw, one, fmt) == raw

    def test_add_saturates(self):
        fmt = FixedFormat(8, 4)
        assert fx_add(fmt.raw_max, 1, fmt) == fmt.raw_max
        assert fx_sub(fmt.raw_min, 1, fmt) == fmt.raw_min

    def test_add_strict_raises(self):
        fmt = FixedFormat(8, 4)
        with pytest.raises(FixedPointOverflowError):
            fx_add(fmt.raw_max, 1, fmt, strict=True)

    def test_array_ops_match_scalar_ops(self):
        fmt = FLEXON_FORMAT
        values_a = np.array([0.3, -1.2, 5.0])
        values_b = np.array([0.7, 0.4, -2.0])
        raw_a = fx_from_float(values_a, fmt)
        raw_b = fx_from_float(values_b, fmt)
        vec = fx_mul(raw_a, raw_b, fmt)
        for i in range(3):
            assert vec[i] == fx_mul(int(raw_a[i]), int(raw_b[i]), fmt)

    def test_array_saturation_clips(self):
        fmt = FixedFormat(8, 4)
        raw = np.array([fmt.raw_max, fmt.raw_min], dtype=np.int64)
        out = fx_add(raw, np.array([10, -10]), fmt)
        assert out[0] == fmt.raw_max
        assert out[1] == fmt.raw_min


class TestFixedScalar:
    def test_construction_and_value(self):
        x = Fixed.from_float(1.25)
        assert x.value == 1.25

    def test_arithmetic_operators(self):
        a = Fixed.from_float(2.0)
        b = Fixed.from_float(0.5)
        assert (a + b).value == 2.5
        assert (a - b).value == 1.5
        assert (a * b).value == 1.0
        assert (-a).value == -2.0

    def test_comparisons(self):
        a = Fixed.from_float(1.0)
        b = Fixed.from_float(2.0)
        assert a < b
        assert b > a
        assert a <= a
        assert a >= a
        assert a == Fixed.from_float(1.0)

    def test_format_mismatch_raises(self):
        a = Fixed.from_float(1.0, FixedFormat(16, 8))
        b = Fixed.from_float(1.0, FixedFormat(32, 22))
        with pytest.raises(FixedPointFormatError):
            _ = a + b

    def test_zero_and_one_constructors(self):
        assert Fixed.zero().value == 0.0
        assert Fixed.one().value == 1.0

    def test_hash_consistent_with_eq(self):
        a = Fixed.from_float(0.5)
        b = Fixed.from_float(0.5)
        assert hash(a) == hash(b)

    def test_repr_mentions_format(self):
        assert "Q9.22" in repr(Fixed.from_float(0.5))
