"""Tests for the 45 nm cost models: synthesis, SRAM, CPU/GPU, energy.

The calibration tests pin the composed designs to *bands* around the
paper's numbers (Figure 12, Table VI) rather than exact values — the
model must keep reproducing the paper's shape if constants are re-tuned.
"""

import pytest

from repro.costmodel import (
    CPU_SPEC,
    GPU_SPEC,
    SramConfig,
    datapath_inventories,
    energy_joules,
    flexon_array_cost,
    flexon_inventory,
    folded_array_cost,
    folded_inventory,
    improvement,
    phase_latencies,
    sram_cost,
    synthesize,
    synthesize_datapaths,
    synthesize_flexon_neuron,
    synthesize_folded_neuron,
)
from repro.costmodel.cpu_gpu import neuron_phase_latency, weighted_ops
from repro.costmodel.energy import geomean
from repro.errors import ConfigurationError


class TestInventories:
    def test_ten_datapath_inventories(self):
        assert len(datapath_inventories()) == 10

    def test_flexon_replicates_conductance_paths_per_type(self):
        two = flexon_inventory(n_synapse_types=2)
        three = flexon_inventory(n_synapse_types=3)
        assert three["mul"] > two["mul"]

    def test_folded_has_single_multiplier_and_exp(self):
        inventory = folded_inventory()
        assert inventory["mul"] == 1
        assert inventory["exp"] == 1

    def test_flexon_has_many_redundant_multipliers(self):
        # The premise of Section V: the baseline design is full of
        # redundant arithmetic units.
        assert flexon_inventory()["mul"] >= 10


class TestSynthesis:
    def test_flexon_neuron_near_paper_area(self):
        # Paper: 1.188 mm^2 / 12 neurons ~ 99,000 um^2.
        cost = synthesize_flexon_neuron()
        assert 80_000 <= cost.area_um2 <= 120_000

    def test_folded_neuron_near_paper_area(self):
        # Paper: 1.294 mm^2 / 72 neurons ~ 17,970 um^2.
        cost = synthesize_folded_neuron()
        assert 14_000 <= cost.area_um2 <= 22_000

    def test_area_ratio_in_paper_band(self):
        # "Flexon ... requires up to 5.84x larger chip area"; the
        # array sizing uses 5.43x.
        ratio = (
            synthesize_flexon_neuron().area_um2
            / synthesize_folded_neuron().area_um2
        )
        assert 5.0 <= ratio <= 6.2

    def test_power_ratio_in_paper_band(self):
        # "consumes up to 3.44x more power".
        ratio = (
            synthesize_flexon_neuron().power_w
            / synthesize_folded_neuron().power_w
        )
        assert 1.5 <= ratio <= 3.44

    def test_ar_is_cheapest_datapath(self):
        costs = synthesize_datapaths()
        assert min(costs, key=lambda k: costs[k].area_um2) == "AR"

    def test_exi_and_rr_are_priciest_datapaths(self):
        costs = synthesize_datapaths()
        ordered = sorted(costs, key=lambda k: costs[k].area_um2)
        assert set(ordered[-2:]) == {"EXI", "RR"}

    def test_folded_cheaper_than_exi_and_rr_paths(self):
        # Figure 12: folding removes redundancy even within one path.
        costs = synthesize_datapaths()
        folded = synthesize_folded_neuron()
        assert folded.area_um2 < costs["EXI"].area_um2
        assert folded.area_um2 < costs["RR"].area_um2

    def test_every_datapath_cheaper_than_flexon(self):
        flexon = synthesize_flexon_neuron()
        for cost in synthesize_datapaths().values():
            assert cost.area_um2 < flexon.area_um2
            assert cost.power_w < flexon.power_w

    def test_synthesize_composes_linearly(self):
        single = synthesize("x", {"mul": 1}, 1e9)
        double = synthesize("x", {"mul": 2}, 1e9)
        assert double.area_um2 == pytest.approx(2 * single.area_um2)


class TestSram:
    def test_area_scales_with_capacity(self):
        small = sram_cost(SramConfig("s", 1_000_000, 4, 1e9))[0]
        large = sram_cost(SramConfig("l", 4_000_000, 4, 1e9))[0]
        assert 3.0 < large / small < 4.0

    def test_power_scales_with_bandwidth(self):
        slow = sram_cost(SramConfig("s", 1_000_000, 4, 1e9))[1]
        fast = sram_cost(SramConfig("f", 1_000_000, 4, 4e9))[1]
        assert fast > slow

    def test_banking_costs_area(self):
        few = sram_cost(SramConfig("s", 1_000_000, 2, 1e9))[0]
        many = sram_cost(SramConfig("s", 1_000_000, 32, 1e9))[0]
        assert many > few

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            SramConfig("bad", 0, 1, 1e9)
        with pytest.raises(ConfigurationError):
            SramConfig("bad", 100, 0, 1e9)
        with pytest.raises(ConfigurationError):
            SramConfig("bad", 100, 1, -1.0)


class TestTable6Arrays:
    def test_flexon_array_total_near_paper(self):
        cost = flexon_array_cost()
        assert cost.total_area_mm2 == pytest.approx(9.258, rel=0.15)
        assert cost.total_power_w == pytest.approx(0.881, rel=0.25)

    def test_folded_array_total_near_paper(self):
        cost = folded_array_cost()
        assert cost.total_area_mm2 == pytest.approx(7.618, rel=0.15)
        assert cost.total_power_w == pytest.approx(1.484, rel=0.25)

    def test_folded_array_fits_in_smaller_footprint(self):
        assert (
            folded_array_cost().total_area_mm2
            < flexon_array_cost().total_area_mm2
        )

    def test_sram_dominates_both_arrays(self):
        for cost in (flexon_array_cost(), folded_array_cost()):
            assert cost.sram_area_mm2 > cost.neuron_area_mm2

    def test_folded_array_burns_more_power(self):
        assert (
            folded_array_cost().total_power_w
            > flexon_array_cost().total_power_w
        )


class TestCpuGpuModel:
    OPS = {"mul": 10, "add": 12, "exp": 1, "cmp": 2}

    def test_weighted_ops_counts_exp_heavier(self):
        assert weighted_ops(self.OPS) > 24

    def test_neuron_latency_scales_with_evaluations(self):
        euler = neuron_phase_latency(CPU_SPEC, 10_000, self.OPS, 1.0)
        rkf = neuron_phase_latency(CPU_SPEC, 10_000, self.OPS, 12.0)
        assert rkf > 5 * euler

    def test_gpu_dominated_by_overhead_for_small_networks(self):
        small = neuron_phase_latency(GPU_SPEC, 100, self.OPS, 1.0)
        assert small == pytest.approx(
            GPU_SPEC.per_phase_overhead_s, rel=0.25
        )

    def test_gpu_faster_than_cpu_for_big_euler_networks(self):
        cpu = neuron_phase_latency(CPU_SPEC, 10_000, self.OPS, 1.0)
        gpu = neuron_phase_latency(GPU_SPEC, 10_000, self.OPS, 1.0)
        assert gpu < cpu

    def test_phase_latencies_fractions_sum_to_one(self):
        latency = phase_latencies(CPU_SPEC, 1000, self.OPS, 1.0, 5e4, 1e3)
        assert sum(latency.fractions().values()) == pytest.approx(1.0)

    def test_rejects_negative_neurons(self):
        with pytest.raises(ConfigurationError):
            neuron_phase_latency(CPU_SPEC, -1, self.OPS, 1.0)


class TestEnergy:
    def test_energy_joules(self):
        assert energy_joules(85.0, 1e-3) == pytest.approx(0.085)

    def test_improvement(self):
        assert improvement(100.0, 2.0) == 50.0

    def test_improvement_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            improvement(1.0, 0.0)

    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geomean([])
        with pytest.raises(ConfigurationError):
            geomean([1.0, -1.0])

    def test_energy_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            energy_joules(-1.0, 1.0)
