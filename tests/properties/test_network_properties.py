"""Property-based tests on network-level invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models import LIF
from repro.network import Network, PoissonStimulus, Population, Simulator
from repro.network.projection import connect
from repro.network.spike_queue import SpikeQueue

DT = 1e-4


class TestSpikeQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),  # target
                st.floats(min_value=0.0, max_value=10.0),  # weight
                st.integers(min_value=1, max_value=5),  # delay
            ),
            max_size=40,
        )
    )
    def test_every_enqueued_weight_is_delivered_exactly_once(self, events):
        queue = SpikeQueue(n=10, n_synapse_types=1, max_delay=5)
        total_in = 0.0
        for target, weight, delay in events:
            queue.enqueue(
                np.array([target]),
                np.array([weight]),
                np.array([delay]),
                syn_type=0,
            )
            total_in += weight
        delivered = 0.0
        for _ in range(6):
            delivered += float(queue.current().sum())
            queue.rotate()
        assert delivered == np.float64(delivered)
        assert abs(delivered - total_in) < 1e-9
        assert queue.pending_total() == 0.0

    @given(st.integers(min_value=1, max_value=8))
    def test_delivery_happens_exactly_at_the_delay(self, delay):
        queue = SpikeQueue(n=3, n_synapse_types=1, max_delay=8)
        queue.enqueue(
            np.array([1]), np.array([2.5]), np.array([delay]), syn_type=0
        )
        for step in range(delay + 1):
            current = float(queue.current()[0, 1])
            if step == delay:
                assert current == 2.5
            else:
                assert current == 0.0
            queue.rotate()


class TestConnectivityProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_connect_respects_index_bounds(self, n_pre, n_post, p, seed):
        pre = Population("pre", n_pre, LIF())
        post = Population("post", n_post, LIF())
        projection = connect(
            pre, post, probability=p, rng=np.random.default_rng(seed)
        )
        if projection.n_synapses:
            assert projection.post_idx.min() >= 0
            assert projection.post_idx.max() < n_post
            assert projection.pre_of_synapses().max() < n_pre
        assert projection.pre_ptr[-1] == projection.n_synapses

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_csr_and_csc_views_agree(self, seed):
        pre = Population("pre", 15, LIF())
        post = Population("post", 12, LIF())
        projection = connect(
            pre, post, probability=0.3, rng=np.random.default_rng(seed)
        )
        # Every synapse reachable through the CSR view is reachable
        # through the CSC view, and vice versa.
        all_pre = np.arange(15)
        all_post = np.arange(12)
        via_pre = set(projection.synapse_indices_of(all_pre).tolist())
        via_post = set(projection.synapse_indices_into(all_post).tolist())
        assert via_pre == via_post == set(range(projection.n_synapses))


class TestSimulatorProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_simulation_is_deterministic_in_seed(self, seed):
        def run_once():
            network = Network("prop")
            pop = network.add_population("p", 15, "LIF")
            network.connect(
                "p", "p", probability=0.2, weight=20.0,
                rng=np.random.default_rng(seed),
            )
            network.add_stimulus(
                PoissonStimulus(pop, 600.0, 40.0, dt=DT, n_sources=3)
            )
            result = Simulator(network, dt=DT, seed=seed).run(150)
            return result.spikes.result("p").spike_pairs()

        assert run_once() == run_once()

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_splitting_a_run_changes_nothing(self, split):
        def run(chunks):
            network = Network("split")
            pop = network.add_population("p", 10, "LIF")
            network.connect(
                "p", "p", probability=0.3, weight=25.0,
                rng=np.random.default_rng(5),
            )
            network.add_stimulus(
                PoissonStimulus(pop, 700.0, 50.0, dt=DT, n_sources=2)
            )
            simulator = Simulator(network, dt=DT, seed=9)
            pairs = set()
            steps_per_chunk = 120 // chunks
            for _ in range(chunks):
                result = simulator.run(steps_per_chunk)
                pairs |= result.spikes.result("p").spike_pairs()
            return pairs, simulator.current_step

        whole, steps_whole = run(1)
        # Note: spike *steps* restart per run() call? No — the
        # simulator keeps its global step counter, so records align.
        parts, steps_parts = run(split)
        if steps_whole == steps_parts:
            assert whole == parts
