"""Property-based tests for the STDP rule's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models import LIF
from repro.network import Population, Projection
from repro.plasticity import PairSTDP

DT = 1e-4

spike_patterns = st.lists(
    st.tuples(
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
        st.lists(st.integers(min_value=0, max_value=3), max_size=2),
    ),
    max_size=50,
)


def _projection(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    pre = Population("pre", 5, LIF())
    post = Population("post", 4, LIF())
    n = 12
    return Projection(
        pre,
        post,
        pre_idx=rng.integers(0, 5, n),
        post_idx=rng.integers(0, 4, n),
        weights=rng.random(n),
        delays=np.ones(n, dtype=np.int64),
        syn_type=0,
    )


class TestStdpInvariants:
    @given(spike_patterns)
    @settings(max_examples=60, deadline=None)
    def test_weights_always_within_bounds(self, pattern):
        projection = _projection()
        rule = PairSTDP(a_plus=0.5, a_minus=0.5, w_min=0.0, w_max=1.0)
        rule.attach(projection)
        for pre_fired, post_fired in pattern:
            rule.step(
                np.unique(np.array(pre_fired, dtype=np.int64)),
                np.unique(np.array(post_fired, dtype=np.int64)),
                DT,
            )
            assert np.all(projection.weights >= 0.0)
            assert np.all(projection.weights <= 1.0)

    @given(spike_patterns)
    @settings(max_examples=40, deadline=None)
    def test_traces_never_negative(self, pattern):
        projection = _projection()
        rule = PairSTDP()
        rule.attach(projection)
        for pre_fired, post_fired in pattern:
            rule.step(
                np.unique(np.array(pre_fired, dtype=np.int64)),
                np.unique(np.array(post_fired, dtype=np.int64)),
                DT,
            )
            assert np.all(rule.pre_trace >= 0.0)
            assert np.all(rule.post_trace >= 0.0)

    @given(spike_patterns)
    @settings(max_examples=40, deadline=None)
    def test_silence_changes_nothing(self, pattern):
        # Replaying any pattern, then running silent steps, never
        # changes the weights (traces decay; weights only move on
        # spikes).
        projection = _projection()
        rule = PairSTDP(a_plus=0.3, a_minus=0.3)
        rule.attach(projection)
        empty = np.empty(0, dtype=np.int64)
        for pre_fired, post_fired in pattern:
            rule.step(
                np.unique(np.array(pre_fired, dtype=np.int64)),
                np.unique(np.array(post_fired, dtype=np.int64)),
                DT,
            )
        frozen = projection.weights.copy()
        for _ in range(20):
            rule.step(empty, empty, DT)
        np.testing.assert_array_equal(projection.weights, frozen)

    @given(spike_patterns)
    @settings(max_examples=60, deadline=None)
    def test_lazy_and_dense_modes_are_bit_identical(self, pattern):
        # The deferred (lazy) and dense schedules share the same
        # analytic event arithmetic; any spike pattern must therefore
        # produce *bit-identical* weights and traces — not merely
        # approximately equal ones.
        lazy = PairSTDP(a_plus=0.2, a_minus=0.25, deferred=True)
        dense = PairSTDP(a_plus=0.2, a_minus=0.25, deferred=False)
        lazy.attach(_projection(rng_seed=7))
        dense.attach(_projection(rng_seed=7))
        for pre_fired, post_fired in pattern:
            pre = np.unique(np.array(pre_fired, dtype=np.int64))
            post = np.unique(np.array(post_fired, dtype=np.int64))
            lazy.step(pre, post, DT)
            dense.step(pre, post, DT)
            np.testing.assert_array_equal(
                lazy.projection.weights, dense.projection.weights
            )
            np.testing.assert_array_equal(lazy.pre_trace, dense.pre_trace)
            np.testing.assert_array_equal(lazy.post_trace, dense.post_trace)
        assert dense.deferred_updates == 0
        if pattern:
            assert lazy.trace_refreshes <= dense.trace_refreshes

    @given(spike_patterns, st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_lazy_trace_checkpoint_round_trip(self, pattern, cut):
        # Snapshot mid-pattern, restore into a fresh rule, replay the
        # tail: the resumed run must be bit-identical to the
        # uninterrupted one — traces, timestamps, counters, weights.
        cut = min(cut, len(pattern))

        def events(chunk, rule):
            for pre_fired, post_fired in chunk:
                rule.step(
                    np.unique(np.array(pre_fired, dtype=np.int64)),
                    np.unique(np.array(post_fired, dtype=np.int64)),
                    DT,
                )

        straight = PairSTDP(a_plus=0.2, a_minus=0.25)
        straight.attach(_projection(rng_seed=11))
        events(pattern, straight)

        first = PairSTDP(a_plus=0.2, a_minus=0.25)
        first.attach(_projection(rng_seed=11))
        events(pattern[:cut], first)
        payload = first.snapshot()

        resumed = PairSTDP(a_plus=0.2, a_minus=0.25)
        resumed.attach(_projection(rng_seed=11))
        resumed.restore(payload)
        events(pattern[cut:], resumed)

        np.testing.assert_array_equal(
            resumed.projection.weights, straight.projection.weights
        )
        np.testing.assert_array_equal(
            resumed.pre_trace, straight.pre_trace
        )
        np.testing.assert_array_equal(
            resumed.post_trace, straight.post_trace
        )
        assert resumed.steps_seen == straight.steps_seen
        assert resumed.applied_updates == straight.applied_updates
        assert resumed.deferred_updates == straight.deferred_updates

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_updates_are_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        events = [
            (
                rng.integers(0, 5, rng.integers(0, 3)),
                rng.integers(0, 4, rng.integers(0, 3)),
            )
            for _ in range(30)
        ]

        def run():
            projection = _projection(rng_seed=3)
            rule = PairSTDP(a_plus=0.2, a_minus=0.25)
            rule.attach(projection)
            for pre_fired, post_fired in events:
                rule.step(
                    np.unique(pre_fired.astype(np.int64)),
                    np.unique(post_fired.astype(np.int64)),
                    DT,
                )
            return projection.weights.copy()

        np.testing.assert_array_equal(run(), run())
