"""Property tests: DelayRing vs the legacy SpikeQueue semantics.

The refactor's core promise is that moving spike delivery from the old
per-population ``SpikeQueue`` onto the routing layer's ``DelayRing``
changes *nothing* observable: the same ``(step, syn_type, target,
weight)`` deliveries come out, at the same steps, in the same
accumulated buckets. ``_LegacySpikeQueue`` below is the pre-refactor
implementation (float ring, no event counts) kept verbatim as the
reference; Hypothesis interleaves enqueues, stimulus injections, and
rotations arbitrarily and compares every delivered bucket — and the
multiset of deliveries — between the two.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.routing import DelayRing

N = 6
N_TYPES = 2
MAX_DELAY = 5
MIN_DELAY = 2


class _LegacySpikeQueue:
    """The pre-routing-layer ring buffer, verbatim (the reference)."""

    def __init__(self, n, n_synapse_types, max_delay):
        self.depth = max_delay + 1
        self._ring = np.zeros((self.depth, n_synapse_types, n))
        self._head = 0

    def enqueue(self, post_idx, weights, delays, syn_type):
        if post_idx.size == 0:
            return
        slots = (self._head + delays) % self.depth
        np.add.at(self._ring, (slots, syn_type, post_idx), weights)

    def enqueue_now(self, post_idx, weights, syn_type):
        if post_idx.size == 0:
            return
        np.add.at(self._ring, (self._head, syn_type, post_idx), weights)

    def current(self):
        return self._ring[self._head]

    def rotate(self):
        self._ring[self._head][:] = 0.0
        self._head = (self._head + 1) % self.depth


# One interaction: (kind, target, weight, delay, syn_type).
_op = st.one_of(
    st.tuples(
        st.just("enqueue"),
        st.integers(0, N - 1),
        st.floats(-5.0, 5.0, allow_nan=False, width=32),
        st.integers(MIN_DELAY, MAX_DELAY),
        st.integers(0, N_TYPES - 1),
    ),
    st.tuples(
        st.just("enqueue_now"),
        st.integers(0, N - 1),
        st.floats(-5.0, 5.0, allow_nan=False, width=32),
        st.just(0),
        st.integers(0, N_TYPES - 1),
    ),
    st.tuples(
        st.just("rotate"), st.just(0), st.just(0.0), st.just(0), st.just(0)
    ),
)


def _deliveries(step, bucket):
    """One consumed bucket as (step, syn_type, target, weight) tuples."""
    types, targets = np.nonzero(bucket)
    return {
        (step, int(t), int(g), float(bucket[t, g]))
        for t, g in zip(types, targets)
    }


@given(st.lists(_op, max_size=40))
@settings(max_examples=200, deadline=None)
def test_ring_delivers_legacy_multiset(ops):
    ring = DelayRing(N, N_TYPES, MAX_DELAY, min_delay=MIN_DELAY)
    legacy = _LegacySpikeQueue(N, N_TYPES, MAX_DELAY)
    ring_seen = set()
    legacy_seen = set()
    step = 0
    events_in_flight = 0
    for kind, target, weight, delay, syn_type in ops:
        if kind == "rotate":
            np.testing.assert_array_equal(ring.current(), legacy.current())
            ring_seen |= _deliveries(step, ring.current())
            legacy_seen |= _deliveries(step, legacy.current())
            events_in_flight -= ring.current_events()
            ring.rotate()
            legacy.rotate()
            step += 1
        elif kind == "enqueue":
            idx = np.array([target])
            w = np.array([weight])
            d = np.array([delay])
            ring.enqueue(idx, w, d, syn_type)
            legacy.enqueue(idx, w, d, syn_type)
            events_in_flight += 1
        else:
            idx = np.array([target])
            w = np.array([weight])
            ring.enqueue_now(idx, w, syn_type)
            legacy.enqueue_now(idx, w, syn_type)
            events_in_flight += 1
        assert ring.pending_total() == events_in_flight
    # Drain both rings completely: every still-pending bucket agrees.
    for _ in range(ring.depth):
        np.testing.assert_array_equal(ring.current(), legacy.current())
        ring_seen |= _deliveries(step, ring.current())
        legacy_seen |= _deliveries(step, legacy.current())
        ring.rotate()
        legacy.rotate()
        step += 1
    assert ring_seen == legacy_seen
    assert ring.pending_total() == 0
    assert type(ring.pending_total()) is int


@given(
    st.lists(_op, max_size=30),
    st.integers(1, MAX_DELAY + 1),
)
@settings(max_examples=150, deadline=None)
def test_flush_window_equals_future_pops(ops, horizon):
    # After any interleaving, a flush window of any admissible horizon
    # is exactly the sequence of current() pops over the next
    # ``horizon`` rotations (no enqueues in between).
    ring = DelayRing(N, N_TYPES, MAX_DELAY, min_delay=MIN_DELAY)
    for kind, target, weight, delay, syn_type in ops:
        if kind == "rotate":
            ring.rotate()
        elif kind == "enqueue":
            ring.enqueue(
                np.array([target]),
                np.array([weight]),
                np.array([delay]),
                syn_type,
            )
        else:
            ring.enqueue_now(np.array([target]), np.array([weight]), syn_type)
    window = ring.flush_window(horizon)
    events = ring.flush_events(horizon)
    assert window.shape[0] == horizon
    for offset in range(horizon):
        np.testing.assert_array_equal(window[offset], ring.current())
        assert events[offset] == ring.current_events()
        ring.rotate()


@given(st.lists(_op, max_size=30))
@settings(max_examples=100, deadline=None)
def test_snapshot_restore_preserves_future_deliveries(ops):
    ring = DelayRing(N, N_TYPES, MAX_DELAY, min_delay=MIN_DELAY)
    for kind, target, weight, delay, syn_type in ops:
        if kind == "rotate":
            ring.rotate()
        elif kind == "enqueue":
            ring.enqueue(
                np.array([target]),
                np.array([weight]),
                np.array([delay]),
                syn_type,
            )
        else:
            ring.enqueue_now(np.array([target]), np.array([weight]), syn_type)
    clone = DelayRing(N, N_TYPES, MAX_DELAY, min_delay=MIN_DELAY)
    clone.restore(ring.snapshot())
    assert clone.enqueued_events == ring.enqueued_events
    for _ in range(ring.depth):
        np.testing.assert_array_equal(clone.current(), ring.current())
        assert clone.current_events() == ring.current_events()
        clone.rotate()
        ring.rotate()
