"""Property-based tests on neuron-model and hardware invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureConflictError
from repro.features import Feature, FeatureSet, MODEL_FEATURES
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.hardware.constants import prepare_constants
from repro.hardware.microcode import assemble
from repro.models import ModelParameters
from repro.models.feature_model import FeatureModel

DT = 1e-4

feature_subsets = st.sets(st.sampled_from(list(Feature)), max_size=8)


def _try_feature_set(features):
    try:
        return FeatureSet(features)
    except FeatureConflictError:
        return None


class TestFeatureSetProperties:
    @given(feature_subsets)
    def test_validation_is_deterministic(self, features):
        first = _try_feature_set(features)
        second = _try_feature_set(features)
        assert (first is None) == (second is None)
        if first is not None:
            assert first == second

    @given(feature_subsets)
    @settings(max_examples=200)
    def test_valid_sets_never_hold_conflicting_pairs(self, features):
        fs = _try_feature_set(features)
        if fs is None:
            return
        assert not ({Feature.EXD, Feature.LID} <= fs.features)
        assert not ({Feature.QDI, Feature.EXI} <= fs.features)
        assert not ({Feature.CUB, Feature.COBE} <= fs.features)
        assert not ({Feature.CUB, Feature.COBA} <= fs.features)
        assert not ({Feature.COBE, Feature.COBA} <= fs.features)
        if Feature.REV in fs:
            assert fs.uses_conductance
        if Feature.SBT in fs:
            assert Feature.ADT in fs

    @given(feature_subsets)
    @settings(max_examples=100)
    def test_every_valid_set_assembles_and_simulates(self, features):
        fs = _try_feature_set(features)
        if fs is None:
            return
        params = ModelParameters()
        # The microprogram assembles within Table IV's constant limits.
        program = assemble(fs, prepare_constants(params, fs, DT))
        assert program.n_signals >= 1
        # And the generic model steps without error.
        model = FeatureModel(fs, params)
        state = model.initial_state(4)
        inputs = np.full((2, 4), 0.05)
        fired = model.step(state, inputs, DT)
        assert fired.shape == (4,)
        assert np.all(np.isfinite(state["v"]))


class TestHardwareProperties:
    @given(
        st.sampled_from(list(MODEL_FEATURES)),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_flexon_folded_bit_equivalence_random_stimuli(self, name, seed):
        from repro.models.registry import create_model

        model = create_model(name)
        compiled = FlexonCompiler().compile(model, DT)
        flexon = compiled.instantiate_flexon(6)
        folded = compiled.instantiate_folded(6)
        rng = np.random.default_rng(seed)
        n_types = model.parameters.n_synapse_types
        for _ in range(60):
            weights = rng.random((n_types, 6)) * (rng.random((n_types, 6)) < 0.2)
            raw = fx_from_float(
                weights * compiled.weight_scale * 20.0, FLEXON_FORMAT
            )
            fired_fx = flexon.step(raw.copy())
            fired_fd = folded.step(raw.copy())
            assert np.array_equal(fired_fx, fired_fd)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_refractory_counter_never_negative(self, seed):
        from repro.models.registry import create_model

        model = create_model("SLIF")
        compiled = FlexonCompiler().compile(model, DT)
        neuron = compiled.instantiate_flexon(4)
        rng = np.random.default_rng(seed)
        for _ in range(100):
            weights = (rng.random((2, 4)) < 0.3) * 60.0
            raw = fx_from_float(
                weights * compiled.weight_scale, FLEXON_FORMAT
            )
            neuron.step(raw)
            assert np.all(neuron.state["cnt"] >= 0)

    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=30, deadline=None)
    def test_membrane_resets_exactly_on_fire(self, current):
        from repro.models.registry import create_model

        model = create_model("LIF")
        compiled = FlexonCompiler().compile(model, DT)
        neuron = compiled.instantiate_flexon(1)
        raw = fx_from_float(
            np.full((2, 1), current) * compiled.weight_scale, FLEXON_FORMAT
        )
        for _ in range(30):
            fired = neuron.step(raw.copy())
            if fired[0]:
                assert neuron.state["v"][0] == compiled.constants.v_reset
