"""Property tests: sharded execution is bit-identical to single-process.

The sharding layer's whole contract is one sentence — for any
partition count, any seed, and any run length, the merged sharded
spike train equals the single-process simulator's bit for bit, even
when a shard dies and is rebuilt mid-run. Hypothesis sweeps that
space on a small fixed network through the in-process protocol
(:func:`simulate_sharded` — the same window/exchange/replay cycle the
process coordinator drives, minus spawn cost).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.backends import ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PoissonStimulus
from repro.sharding import simulate_sharded

DT = 1e-4

_single_cache = {}


def _network(seed):
    rng = np.random.default_rng(seed + 1000)
    network = Network("prop-net")
    exc = network.add_population("exc", 30, "DLIF")
    network.add_population("inh", 9, "DLIF")
    network.connect(
        "exc", "exc", probability=0.3, weight=0.05, syn_type=0, rng=rng,
        delay_steps=2, delay_jitter=3,
    )
    network.connect(
        "inh", "exc", probability=0.3, weight=0.18, syn_type=1, rng=rng,
        delay_steps=3,
    )
    network.connect(
        "exc", "inh", probability=0.3, weight=0.08, syn_type=0, rng=rng,
        delay_steps=2,
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=900.0, weight=0.10, dt=DT, n_sources=6)
    )
    return network


def _single_digest(seed, steps):
    key = (seed, steps)
    if key not in _single_cache:
        simulator = Simulator(
            _network(seed), ReferenceBackend(), dt=DT, seed=seed
        )
        _single_cache[key] = simulator.run(steps).spikes.digest()
    return _single_cache[key]


@settings(max_examples=12, deadline=None)
@given(
    n_shards=st.integers(1, 6),
    seed=st.integers(0, 3),
    steps=st.integers(20, 90),
)
def test_sharded_digest_equals_single_process(n_shards, seed, steps):
    result = simulate_sharded(
        _network(seed), n_shards, steps, dt=DT, seed=seed
    )
    assert result.digest() == _single_digest(seed, steps)


@settings(max_examples=10, deadline=None)
@given(
    n_shards=st.integers(2, 5),
    seed=st.integers(0, 2),
    kill_epoch=st.integers(0, 29),
    checkpoint_every=st.integers(1, 7),
    data=st.data(),
)
def test_kill_and_recover_digest_equals_single_process(
    n_shards, seed, kill_epoch, checkpoint_every, data
):
    steps = 60  # window 2 -> 30 epochs; every kill_epoch is reachable
    kill_shard = data.draw(st.integers(0, n_shards - 1))
    result = simulate_sharded(
        _network(seed), n_shards, steps, dt=DT, seed=seed,
        checkpoint_every=checkpoint_every,
        kill_shard=kill_shard, kill_epoch=kill_epoch,
    )
    assert result.recovered
    assert result.digest() == _single_digest(seed, steps)
