"""Property test: SpikeQueue vs a brute-force dense delay model.

The ring buffer's contract is simple to state — a weight enqueued with
delay ``d`` at step ``t`` appears in the input popped at step ``t+d``,
weights accumulate additively, and ``enqueue_now`` lands in the very
slot popped this step — so we model it with a dense ``(steps, types,
n)`` array and let Hypothesis interleave enqueue / enqueue_now / rotate
arbitrarily. Any head-pointer or wrap-around bug diverges from the
dense model immediately.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.network.spike_queue import SpikeQueue

N = 7
N_TYPES = 2
MAX_DELAY = 4
HORIZON = 40  # dense-model steps; generous upper bound for ops lists

# One queue interaction: (kind, target, weight, delay, syn_type).
_op = st.one_of(
    st.tuples(
        st.just("enqueue"),
        st.integers(0, N - 1),
        st.floats(-5.0, 5.0, allow_nan=False, width=32),
        st.integers(1, MAX_DELAY),
        st.integers(0, N_TYPES - 1),
    ),
    st.tuples(
        st.just("enqueue_now"),
        st.integers(0, N - 1),
        st.floats(-5.0, 5.0, allow_nan=False, width=32),
        st.just(0),
        st.integers(0, N_TYPES - 1),
    ),
    st.tuples(
        st.just("rotate"),
        st.just(0),
        st.just(0.0),
        st.just(0),
        st.just(0),
    ),
)


@given(st.lists(_op, max_size=30))
@settings(max_examples=200, deadline=None)
def test_interleaved_ops_match_dense_model(ops):
    queue = SpikeQueue(N, N_TYPES, MAX_DELAY)
    dense = np.zeros((HORIZON, N_TYPES, N))
    now = 0
    for kind, target, weight, delay, syn_type in ops:
        if kind == "rotate":
            np.testing.assert_array_equal(queue.current(), dense[now])
            queue.rotate()
            now += 1
        elif kind == "enqueue":
            queue.enqueue(
                np.array([target]),
                np.array([weight]),
                np.array([delay]),
                syn_type,
            )
            dense[now + delay, syn_type, target] += weight
        else:  # enqueue_now
            queue.enqueue_now(
                np.array([target]), np.array([weight]), syn_type
            )
            dense[now, syn_type, target] += weight
    # Drain: every still-pending slot must match the dense model too.
    for offset in range(MAX_DELAY + 1):
        np.testing.assert_array_equal(queue.current(), dense[now + offset])
        queue.rotate()
    assert queue.pending_total() == 0.0


@given(st.integers(min_value=-3, max_value=12))
@settings(max_examples=50, deadline=None)
def test_out_of_range_delays_raise(delay):
    queue = SpikeQueue(N, N_TYPES, MAX_DELAY)
    idx = np.array([0])
    weight = np.array([1.0])
    delays = np.array([delay])
    if 1 <= delay <= MAX_DELAY:
        queue.enqueue(idx, weight, delays, 0)  # in range: must not raise
    else:
        try:
            queue.enqueue(idx, weight, delays, 0)
        except SimulationError:
            pass
        else:
            raise AssertionError(f"delay {delay} accepted but out of range")
        # A rejected enqueue must not have partially mutated the ring.
        assert queue.pending_total() == 0.0
