"""Property test: checkpoint → restore → run ≡ uninterrupted run.

For random small networks, killing a simulation at a random step and
resuming a fresh simulator from the checkpoint must reproduce the
uninterrupted run exactly — spike trains and final state, bit for bit —
on the compiled-engine, dict-state-solver, and Flexon hardware
backends.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hardware.backend import FlexonBackend
from repro.network.backends import ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PoissonStimulus
from repro.reliability import Checkpoint

DT = 1e-4
STEPS = 60

BACKENDS = {
    "reference": lambda: ReferenceBackend("Euler"),
    "engine-off": lambda: ReferenceBackend("Euler", use_engine=False),
    "flexon": lambda: FlexonBackend(DT),
}


def _random_network(seed):
    rng = np.random.default_rng(seed)
    network = Network(f"prop-{seed}")
    n = int(rng.integers(5, 25))
    pop = network.add_population("p", n, "DLIF")
    network.connect(
        "p", "p",
        probability=float(rng.uniform(0.05, 0.4)),
        weight=float(rng.uniform(0.02, 0.1)),
        syn_type=0,
        rng=rng,
        delay_steps=1,
        delay_jitter=int(rng.integers(0, 4)),
    )
    network.add_stimulus(
        PoissonStimulus(
            pop,
            rate_hz=float(rng.uniform(200.0, 1500.0)),
            weight=float(rng.uniform(0.03, 0.12)),
            dt=DT,
            n_sources=int(rng.integers(1, 6)),
        )
    )
    return network


def _final_state(simulator):
    return {
        name: {k: v.copy() for k, v in runtime.state().items()}
        for name, runtime in simulator.backend.runtimes.items()
    }


@given(
    backend=st.sampled_from(sorted(BACKENDS)),
    seed=st.integers(min_value=0, max_value=2**31),
    kill_at=st.integers(min_value=1, max_value=STEPS - 1),
)
@settings(max_examples=15, deadline=None)
def test_resumed_run_is_bit_identical(backend, seed, kill_at):
    make = BACKENDS[backend]

    whole = Simulator(_random_network(seed), make(), dt=DT, seed=seed + 1)
    whole_result = whole.run(STEPS)
    whole_spikes = whole_result.spikes.result("p").spike_pairs()
    whole_state = _final_state(whole)

    part = Simulator(_random_network(seed), make(), dt=DT, seed=seed + 1)
    first = part.run(kill_at)
    checkpoint = Checkpoint.capture(part, spikes=first.spikes)
    del part  # the crash

    resumed = Simulator(_random_network(seed), make(), dt=DT, seed=seed + 1)
    checkpoint.restore(resumed)
    result = resumed.run(
        STEPS - kill_at, spikes=checkpoint.seed_recorder()
    )

    assert result.spikes.result("p").spike_pairs() == whole_spikes
    resumed_state = _final_state(resumed)
    for name, variables in whole_state.items():
        for variable, values in variables.items():
            assert np.array_equal(values, resumed_state[name][variable])
