"""Property-based tests for the fixed-point substrate."""

import numpy as np
from hypothesis import given, strategies as st

from repro.fixedpoint import (
    FLEXON_FORMAT,
    FixedFormat,
    fast_exp,
    fx_add,
    fx_from_float,
    fx_mul,
    fx_neg,
    fx_sub,
    fx_to_float,
)

FMT = FLEXON_FORMAT

raw_values = st.integers(min_value=FMT.raw_min, max_value=FMT.raw_max)
floats_in_range = st.floats(
    min_value=FMT.min_value / 2,
    max_value=FMT.max_value / 2,
    allow_nan=False,
    allow_infinity=False,
)


class TestConversionProperties:
    @given(floats_in_range)
    def test_round_trip_error_within_half_lsb(self, value):
        raw = fx_from_float(value, FMT)
        assert abs(fx_to_float(raw, FMT) - value) <= FMT.resolution / 2 + 1e-15

    @given(raw_values)
    def test_raw_round_trip_is_exact(self, raw):
        assert fx_from_float(fx_to_float(raw, FMT), FMT) == raw

    @given(st.floats(allow_nan=False))
    def test_conversion_never_leaves_range(self, value):
        raw = fx_from_float(value, FMT)
        assert FMT.raw_min <= raw <= FMT.raw_max

    @given(floats_in_range, floats_in_range)
    def test_quantisation_is_monotone(self, a, b):
        if a <= b:
            assert fx_from_float(a, FMT) <= fx_from_float(b, FMT)


class TestArithmeticProperties:
    @given(raw_values, raw_values)
    def test_add_commutes(self, a, b):
        assert fx_add(a, b, FMT) == fx_add(b, a, FMT)

    @given(raw_values, raw_values)
    def test_mul_commutes(self, a, b):
        assert fx_mul(a, b, FMT) == fx_mul(b, a, FMT)

    @given(raw_values)
    def test_add_zero_is_identity(self, a):
        assert fx_add(a, 0, FMT) == a

    @given(raw_values)
    def test_mul_one_is_identity(self, a):
        one = fx_from_float(1.0, FMT)
        assert fx_mul(a, one, FMT) == a

    @given(raw_values)
    def test_mul_zero_is_zero(self, a):
        assert fx_mul(a, 0, FMT) == 0

    @given(raw_values)
    def test_neg_is_involution_away_from_rails(self, a):
        if a != FMT.raw_min:
            assert fx_neg(fx_neg(a, FMT), FMT) == a

    @given(raw_values, raw_values)
    def test_sub_is_add_of_negation(self, a, b):
        if b != FMT.raw_min:
            assert fx_sub(a, b, FMT) == fx_add(a, fx_neg(b, FMT), FMT)

    @given(raw_values, raw_values)
    def test_results_always_in_range(self, a, b):
        for op in (fx_add, fx_sub, fx_mul):
            result = op(a, b, FMT)
            assert FMT.raw_min <= result <= FMT.raw_max

    @given(raw_values, raw_values)
    def test_mul_truncation_error_bounded(self, a, b):
        exact = fx_to_float(a, FMT) * fx_to_float(b, FMT)
        if FMT.min_value <= exact <= FMT.max_value:
            approx = fx_to_float(fx_mul(a, b, FMT), FMT)
            assert exact - approx < FMT.resolution + 1e-15
            assert approx <= exact + 1e-15  # truncation never rounds up

    @given(
        st.lists(raw_values, min_size=2, max_size=8),
    )
    def test_addition_order_invariant_without_saturation(self, values):
        # Bounded inputs that cannot saturate: reorderings agree —
        # the property that lets baseline Flexon's adder tree and the
        # folded accumulator produce identical sums.
        scaled = [v // 16 for v in values]
        total = 0
        for v in scaled:
            total = fx_add(total, v, FMT)
        total_reversed = 0
        for v in reversed(scaled):
            total_reversed = fx_add(total_reversed, v, FMT)
        assert total == total_reversed

    @given(raw_values, raw_values)
    def test_vector_and_scalar_paths_agree(self, a, b):
        vec = fx_mul(
            np.array([a], dtype=np.int64), np.array([b], dtype=np.int64), FMT
        )
        assert int(vec[0]) == fx_mul(a, b, FMT)


class TestFastExpProperties:
    @given(st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
    def test_relative_error_bounded(self, y):
        exact = np.exp(y)
        assert abs(fast_exp(y) - exact) / exact < 0.05

    @given(
        st.floats(min_value=-50.0, max_value=50.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_monotone(self, a, b):
        if a <= b:
            assert fast_exp(a) <= fast_exp(b) * (1 + 1e-12)

    @given(st.floats(allow_nan=False))
    def test_output_positive_and_finite(self, y):
        out = fast_exp(y)
        assert out >= 0.0
        assert np.isfinite(out)


class TestFormatProperties:
    @given(
        st.integers(min_value=2, max_value=63),
        st.data(),
    )
    def test_any_valid_format_round_trips_zero_and_bounds(self, bits, data):
        frac = data.draw(st.integers(min_value=0, max_value=bits))
        fmt = FixedFormat(bits, frac)
        assert fx_from_float(0.0, fmt) == 0
        assert fx_from_float(fmt.max_value, fmt) == fmt.raw_max
        assert fx_from_float(fmt.min_value, fmt) == fmt.raw_min
