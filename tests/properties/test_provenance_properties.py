"""Property-based tests for trace merging and the run ledger."""

import json
import os

from hypothesis import given, settings, strategies as st

from repro.provenance import (
    ProcessRing,
    append_entry,
    estimate_offset,
    load_ledger,
    make_entry,
    merge_rings,
)

# A synthetic span ring: spans arrive in arbitrary order (worker rings
# are appended live, but retries restart the clock) with arbitrary
# durations; a killed worker just means the ring stops early, which
# the strategy models by drawing any length including zero.
span_lists = st.lists(
    st.tuples(
        # Dyadic timestamps (n/8 s) keep float arithmetic exact, so
        # the shift-invariance property below is not at the mercy of
        # rounding creating new timestamp ties.
        st.integers(min_value=0, max_value=80_000).map(lambda n: n / 8),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    max_size=20,
).map(
    lambda pairs: [
        {"name": f"s{index}", "cat": "phase", "ts": ts, "dur": dur}
        for index, (ts, dur) in enumerate(pairs)
    ]
)

rings = st.builds(
    ProcessRing,
    label=st.sampled_from(["coordinator", "shard0#a0", "shard1#a2"]),
    pid=st.integers(min_value=1, max_value=1 << 20),
    offset=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    spans=span_lists,
    dropped=st.integers(min_value=0, max_value=100),
)


class TestMergeProperties:
    @given(st.lists(rings, max_size=5))
    @settings(max_examples=50)
    def test_per_track_timestamps_are_monotone(self, ring_list):
        document = merge_rings(ring_list, run_id="run-p")
        by_tid = {}
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event["ts"])
        for timestamps in by_tid.values():
            assert timestamps == sorted(timestamps)

    @given(st.lists(rings, max_size=5))
    @settings(max_examples=50)
    def test_one_track_per_ring_and_json_safe(self, ring_list):
        document = merge_rings(ring_list)
        tracks = [
            event for event in document["traceEvents"]
            if event["name"] == "thread_name"
        ]
        assert len(tracks) == len(ring_list)
        assert document["otherData"]["n_tracks"] == len(ring_list)
        json.dumps(document)

    @given(rings, st.integers(min_value=-500, max_value=500))
    @settings(max_examples=50)
    def test_correction_cancels_a_uniform_clock_shift(self, ring, shift):
        # Shifting a worker's clock AND its estimated offset by the
        # same amount must leave the merged trace bit-identical: the
        # correction subtracts exactly what the skew added. The shift
        # is a whole number of seconds so float addition stays exact
        # and cannot create new timestamp ties.
        shifted = ProcessRing(
            label=ring.label,
            pid=ring.pid,
            offset=ring.offset + shift,
            spans=[dict(span, ts=span["ts"] + shift) for span in ring.spans],
            dropped=ring.dropped,
        )
        # otherData deliberately records the raw offsets for debugging,
        # so only the rendered events must match.
        merged = merge_rings([ring])
        assert merged["traceEvents"] == merge_rings([shifted])["traceEvents"]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            max_size=10,
        )
    )
    def test_estimate_offset_is_the_max_sample_bound(self, samples):
        offset = estimate_offset(samples)
        if not samples:
            assert offset == 0.0
        else:
            assert offset == max(sent - received for sent, received in samples)


def _entry(run_id):
    return make_entry(
        "run", run_id, {"seed": 3},
        workload="Brunel", backend="reference", shards=0, steps=10,
        scale=0.05, seed=3, dt=1e-4, spike_digest="d" * 64,
        outcome="completed", duration=0.1,
    )


class TestLedgerTornTail:
    @given(
        n_entries=st.integers(min_value=1, max_value=5),
        cut=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncation_loses_only_the_damaged_line(
        self, tmp_path_factory, n_entries, cut
    ):
        path = str(tmp_path_factory.mktemp("ledger") / "ledger.jsonl")
        for index in range(n_entries):
            append_entry(path, _entry(f"run-{index}"))
        with open(path, "rb") as handle:
            raw = handle.read()
        # Tear the tail mid-line, as a crash during append would.
        kept = raw[: max(0, len(raw) - cut)]
        with open(path, "wb") as handle:
            handle.write(kept)
        # A line survives iff its full content (newline optional — a
        # cut that only eats the trailing "\n" leaves it parseable)
        # fits in the kept prefix; the damaged line must be dropped,
        # not half-parsed.
        expected, position = 0, 0
        for line in raw.split(b"\n")[:-1]:
            if position + len(line) <= len(kept):
                expected += 1
            position += len(line) + 1
        entries = load_ledger(path)
        assert len(entries) == expected
        for index, entry in enumerate(entries):
            assert entry["run_id"] == f"run-{index}"
