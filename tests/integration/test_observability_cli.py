"""CLI-level observability: --serve endpoints, --log-json, serve/top/bench.

The in-process tests (``tests/observability/``) pin each component;
these pin the *wiring* — that the flags on ``repro run`` / ``repro
sweep`` / ``repro serve`` actually stand up a live plane, that ``repro
top`` can read it, and that ``repro bench --compare`` exits the way CI
depends on.

Live-server tests run the CLI in a subprocess (the plane must be up
*while* we probe it) and discover the ephemeral port through
``--serve-port-file`` — the same recipe as the CI smoke job.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

from repro.cli import main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _spawn_cli(argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_port(port_file, process, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"CLI exited early ({process.returncode}):\n"
                f"{process.stdout.read()}"
            )
        if os.path.exists(port_file):
            content = open(port_file, encoding="utf-8").read().strip()
            if content:
                return int(content)
        time.sleep(0.05)
    raise AssertionError("port file never appeared")


def _fetch(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _finish(process, timeout=60.0):
    """Interrupt a lingering CLI and return (exit_code, output)."""
    process.send_signal(signal.SIGINT)
    try:
        output = process.communicate(timeout=timeout)[0]
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    return process.returncode, output


class TestServeFlag:
    def test_run_serve_exposes_live_plane(self, tmp_path):
        port_file = str(tmp_path / "port")
        process = _spawn_cli(
            [
                "run", "Brunel", "--scale", "0.02", "--steps", "300",
                "--backend", "reference",
                "--serve", ":0", "--serve-port-file", port_file,
                "--serve-linger", "120",
            ],
            cwd=str(tmp_path),
        )
        try:
            port = _wait_for_port(port_file, process)
            base = f"http://127.0.0.1:{port}"
            assert _fetch(f"{base}/healthz") == "ok\n"
            # sim_steps_total is published at collect time — wait for
            # the run to finish (the plane keeps serving while it
            # lingers) before scraping for it.
            deadline = time.monotonic() + 60.0
            status = {}
            while time.monotonic() < deadline:
                status = json.loads(_fetch(f"{base}/status"))
                if status.get("state") == "finished":
                    break
                time.sleep(0.1)
            assert status.get("state") == "finished", status
            assert status["network"] == "Brunel"
            metrics = _fetch(f"{base}/metrics")
            assert "sim_steps_total" in metrics
            assert "run_current_step" in metrics
        finally:
            code, output = _finish(process)
        assert code == 0, output
        assert "observability plane at" in output

    def test_sweep_serve_and_log_json(self, tmp_path):
        port_file = str(tmp_path / "port")
        log_path = str(tmp_path / "logs.json")
        process = _spawn_cli(
            [
                "sweep", "Brunel", "--backend", "reference",
                "--scale", "0.02", "--steps", "200",
                "--log-json", log_path,
                "--serve", ":0", "--serve-port-file", port_file,
                "--serve-linger", "120",
            ],
            cwd=str(tmp_path),
        )
        try:
            port = _wait_for_port(port_file, process)
            base = f"http://127.0.0.1:{port}"
            _fetch(f"{base}/healthz")
            # Poll /status until the sweep's job table fills in.
            deadline = time.monotonic() + 60.0
            status = {}
            while time.monotonic() < deadline:
                status = json.loads(_fetch(f"{base}/status"))
                if status.get("state") == "finished":
                    break
                time.sleep(0.2)
            assert status.get("state") == "finished", status
            assert status["jobs"], "job table never populated"
            (job,) = status["jobs"].values()
            assert job["state"] == "completed"
        finally:
            code, output = _finish(process)
        assert code == 0, output
        assert "sweep run ID: run-" in output

        document = json.loads(open(log_path, encoding="utf-8").read())
        assert document["schema"] == "repro-log/1"
        assert document["run_id"].startswith("run-")
        events = [record["event"] for record in document["records"]]
        assert events[0] == "sweep-start"
        assert "worker-done" in events

    def test_serve_command_with_top_once(self, tmp_path):
        port_file = str(tmp_path / "port")
        process = _spawn_cli(
            [
                "serve", "Brunel", "--scale", "0.02", "--steps", "300",
                "--port-file", port_file,
            ],
            cwd=str(tmp_path),
        )
        try:
            port = _wait_for_port(port_file, process)
            code = main(["top", f"127.0.0.1:{port}", "--once"])
        finally:
            _finish(process)
        assert code == 0


class TestLogJsonWithoutServe:
    def test_sweep_log_json_needs_no_server(self, tmp_path, capsys):
        log_path = str(tmp_path / "logs.json")
        code = main(
            [
                "sweep", "Brunel", "--backend", "reference",
                "--scale", "0.02", "--steps", "150",
                "--log-json", log_path,
            ]
        )
        assert code == 0
        assert "wrote merged log stream" in capsys.readouterr().out
        document = json.loads(open(log_path, encoding="utf-8").read())
        assert document["schema"] == "repro-log/1"
        assert document["n_records"] == len(document["records"]) > 0


class TestBenchCommand:
    def test_bench_seeds_then_detects_regression(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        argv = [
            "bench", "--quick",
            "--workloads", "Brunel",
            "--history", history,
            "--no-engine-seed",
        ]
        assert main(argv) == 0
        capsys.readouterr()

        # Same measurement again, now compared: same machine, moments
        # apart — far inside any sane threshold.
        assert main([*argv, "--compare", "--threshold", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "vs best" in out

        # Sabotage the history with an impossible prior, and the
        # comparison must fail with a non-zero exit.
        record = json.loads(
            open(history, encoding="utf-8").readline()
        )
        record["workloads"]["Brunel"]["steps_per_sec"] *= 1000.0
        with open(history, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        assert main([*argv, "--compare"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_no_append_leaves_history_untouched(self, tmp_path):
        history = str(tmp_path / "hist.jsonl")
        code = main(
            [
                "bench", "--quick", "--workloads", "Brunel",
                "--history", history, "--no-engine-seed", "--no-append",
            ]
        )
        assert code == 0
        assert not os.path.exists(history)

    def test_bench_plasticity_records_overhead_and_digest(
        self, tmp_path, capsys
    ):
        history = str(tmp_path / "hist.jsonl")
        code = main(
            [
                "bench", "--plasticity", "--quick",
                "--workloads", "Vogels et al.",
                "--history", history, "--no-engine-seed",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "digests match" in out
        record = json.loads(open(history, encoding="utf-8").readline())
        assert record["kind"] == "plasticity"
        entry = record["plasticity"]["Vogels et al."]
        assert entry["digest_match"] is True
        assert entry["modes"]["lazy"]["deferred_updates"] > 0
        assert entry["modes"]["lazy"]["total_spikes"] > 0
        assert set(entry["modes"]) == {"off", "lazy", "eager"}
