"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import Network, PoissonStimulus, Simulator
from repro.hardware import (
    FlexonBackend,
    FoldedFlexonBackend,
    HybridBackend,
)
from repro.network import PatternStimulus, ReferenceBackend, StateRecorder
from repro.workloads import build_workload

DT = 1e-4


class TestQuickstartFlow:
    """The README quickstart must actually work."""

    def test_quickstart(self):
        net = Network("demo")
        pop = net.add_population("exc", 100, "LIF")
        # LIF integrates currents: weights are in current units and a
        # sustained input above theta (= 1.0) is needed to fire.
        net.connect("exc", "exc", probability=0.1, weight=20.0)
        net.add_stimulus(
            PoissonStimulus(pop, 400.0, 40.0, dt=DT, n_sources=2)
        )
        result = Simulator(net, FoldedFlexonBackend(DT), dt=DT).run(1000)
        assert result.total_spikes() > 0


class TestCrossBackendConsistency:
    """All four backends simulate the same workload sanely."""

    @pytest.mark.parametrize(
        "backend_factory",
        [
            lambda: ReferenceBackend("Euler"),
            lambda: FlexonBackend(DT),
            lambda: FoldedFlexonBackend(DT),
            lambda: HybridBackend(DT),
        ],
        ids=["reference", "flexon", "folded", "hybrid"],
    )
    def test_vogels_abbott_on_every_backend(self, backend_factory):
        network = build_workload("Vogels-Abbott", scale=0.03, seed=2)
        simulator = Simulator(network, backend_factory(), dt=DT, seed=3)
        result = simulator.run(500)
        rate = result.total_spikes() / network.n_neurons / (500 * DT)
        assert 1.0 < rate < 200.0

    def test_rates_agree_across_backends(self):
        rates = {}
        for name, backend in (
            ("reference", ReferenceBackend("Euler")),
            ("flexon", FlexonBackend(DT)),
        ):
            network = build_workload("Izhikevich", scale=0.03, seed=4)
            result = Simulator(network, backend, dt=DT, seed=5).run(600)
            rates[name] = result.total_spikes()
        hi = max(rates.values())
        lo = min(rates.values())
        assert lo / hi > 0.85


class TestSingleNeuronTrace:
    def test_membrane_trace_matches_analytic_decay(self):
        # A LIF neuron kicked once decays exponentially; the recorded
        # trace must match v0 * (1 - eps)^t to fixed-point precision.
        net = Network("trace")
        pop = net.add_population("p", 1, "LIF")
        net.add_stimulus(PatternStimulus(pop, {0: [0]}, weight=120.0))
        recorder = StateRecorder("p", variables=("v",), neurons=[0])
        sim = Simulator(net, FlexonBackend(DT), dt=DT, seed=0)
        sim.run(200, state_recorders=[recorder])
        trace = recorder.trace("v")[:, 0]
        v_peak = trace[0]
        assert v_peak == pytest.approx(0.6, abs=0.01)  # 120 * eps_m
        eps = DT / 20e-3
        expected = v_peak * (1 - eps) ** np.arange(len(trace))
        np.testing.assert_allclose(trace, expected, atol=5e-4)


class TestLongRunStability:
    def test_thousand_steps_no_saturation_or_explosion(self):
        network = build_workload("Muller et al.", scale=0.03, seed=6)
        backend = FoldedFlexonBackend(DT)
        simulator = Simulator(network, backend, dt=DT, seed=7)
        simulator.run(2000)
        for name in network.populations:
            state = backend.state_of(name)
            assert np.all(np.abs(state["v"]) <= 2.0)
            assert np.all(np.isfinite(state["v"]))

    def test_results_reproducible_across_runs(self):
        def run_once():
            network = build_workload("Brunel", scale=0.02, seed=8)
            sim = Simulator(network, FlexonBackend(DT), dt=DT, seed=9)
            result = sim.run(400)
            return {
                name: result.spikes.result(name).spike_pairs()
                for name in network.populations
            }

        assert run_once() == run_once()
