"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Brunel"])
        assert args.backend == "folded"
        assert args.scale == 0.05


class TestCommands:
    def test_workloads_lists_table1(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Brunel" in out
        assert "Potjans-Diesmann" in out

    def test_models_lists_signal_counts(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "AdEx_COBA" in out
        assert "hybrid path" in out

    def test_microcode_listing(self, capsys):
        assert main(["microcode", "LIF"]) == 0
        out = capsys.readouterr().out
        assert "signals" in out
        assert "weight pre-scale" in out

    def test_microcode_unknown_model_fails_cleanly(self, capsys):
        assert main(["microcode", "NoSuchModel"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_microcode_unsupported_model_fails_cleanly(self, capsys):
        assert main(["microcode", "HH"]) == 2
        err = capsys.readouterr().err
        assert "HybridBackend" in err

    def test_run_workload(self, capsys):
        code = main(
            ["run", "Vogels-Abbott", "--scale", "0.02", "--steps", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spikes" in out
        assert "neuron" in out

    def test_run_on_reference_backend(self, capsys):
        code = main(
            [
                "run", "Brunel", "--backend", "reference",
                "--solver", "Euler", "--scale", "0.02", "--steps", "100",
            ]
        )
        assert code == 0

    def test_experiment_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        out = capsys.readouterr().out
        assert "Control signals" in out

    def test_experiment_table6(self, capsys):
        assert main(["experiment", "table6"]) == 0
        out = capsys.readouterr().out
        assert "9.258" in out

    def test_experiment_figure13_small(self, capsys):
        code = main(
            ["experiment", "figure13", "--scale", "0.02", "--steps", "80"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "geomean latency" in out

    def test_experiment_resilience_small(self, capsys):
        code = main(
            ["experiment", "resilience", "--scale", "0.02", "--steps", "80"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Spike overlap" in out
        assert "bit-flip" in out


class TestCheckpointCli:
    def test_checkpoint_then_resume_matches_straight_run(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "run.ckpt")
        base = [
            "run", "Izhikevich", "--backend", "folded",
            "--scale", "0.02", "--steps", "150",
        ]
        assert main(base) == 0
        straight = capsys.readouterr().out

        assert main(base + ["--checkpoint-every", "60",
                            "--checkpoint-path", path]) == 0
        capsys.readouterr()
        assert main(base + ["--resume-from", path]) == 0
        resumed = capsys.readouterr().out
        assert "resumed from" in resumed
        assert "at step 120" in resumed

        def spike_line(text):
            return next(line for line in text.splitlines() if "spikes" in line)

        assert spike_line(resumed) == spike_line(straight)

    def test_resume_past_requested_steps_fails_cleanly(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "run.ckpt")
        base = [
            "run", "Izhikevich", "--backend", "folded",
            "--scale", "0.02",
        ]
        assert main(base + ["--steps", "150", "--checkpoint-every", "60",
                            "--checkpoint-path", path]) == 0
        capsys.readouterr()
        assert main(base + ["--steps", "100", "--resume-from", path]) == 2
        assert "past the requested" in capsys.readouterr().err


class TestFrontendCommands:
    def test_example_spec_is_valid_json(self, capsys):
        import json

        assert main(["example-spec"]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["backend"] == "folded"

    def test_simulate_spec_file(self, tmp_path, capsys):
        import json

        from repro.frontend import example_spec

        path = tmp_path / "net.json"
        path.write_text(json.dumps(example_spec()))
        assert main(["simulate", str(path), "--steps", "200"]) == 0
        out = capsys.readouterr().out
        assert "folded-flexon" in out
        assert "spikes" in out

    def test_simulate_reports_plastic_weights(self, tmp_path, capsys):
        import json

        from repro.frontend import example_spec

        spec = example_spec()
        spec["projections"][0]["plasticity"] = {
            "rule": "pair_stdp", "a_plus": 0.01,
        }
        path = tmp_path / "plastic.json"
        path.write_text(json.dumps(spec))
        assert main(["simulate", str(path), "--steps", "100"]) == 0
        assert "mean weight" in capsys.readouterr().out

    def test_simulate_bad_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        assert main(["simulate", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestTelemetryCli:
    BASE = ["run", "Brunel", "--backend", "reference", "--solver", "Euler",
            "--scale", "0.02", "--steps", "60"]

    def test_run_writes_trace_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(self.BASE + ["--trace", str(path)]) == 0
        assert "wrote trace" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) > 60 * 3  # phases plus population kernel spans
        assert doc["otherData"]["dropped_events"] == 0

    def test_run_trace_max_events_bounds_the_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(
            self.BASE + ["--trace", str(path), "--trace-max-events", "12"]
        ) == 0
        doc = json.loads(path.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 12
        assert doc["otherData"]["dropped_events"] > 0

    def test_run_writes_stats_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "stats.json"
        assert main(self.BASE + ["--stats-json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-run-stats/2"
        assert doc["network"] == "Brunel"
        assert doc["n_steps"] == 60
        assert set(doc["phase_fractions"]) == {"stimulus", "neuron", "synapse"}
        assert doc["metrics"]["sim_steps_total"]["values"][0]["value"] == 60

    def test_run_writes_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(self.BASE + ["--prometheus", str(path)]) == 0
        text = path.read_text()
        assert "# TYPE sim_steps_total counter" in text
        assert "sim_steps_total 60" in text
        assert 'sim_phase_seconds_total{phase="neuron"}' in text

    def test_profile_quick_writes_bench_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_profile.json"
        trace = tmp_path / "trace.json"
        code = main(
            ["profile", "--quick", "--workloads", "Brunel",
             "--steps", "30", "--scale", "0.02",
             "--output", str(out), "--trace", str(trace)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "overhead" in stdout
        assert "budget: < 5%" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-profile/1"
        assert payload["reps"] == 2  # --quick caps reps
        assert "Brunel" in payload["workloads"]
        phases = payload["workloads"]["Brunel"]["phases"]
        assert {"stimulus", "neuron", "synapse"} <= set(phases)
        assert json.loads(trace.read_text())["traceEvents"]

    def test_profile_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["profile", "--workloads", "NoSuchNet",
             "--output", str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCli:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workloads == []
        assert args.backend == "reference"
        assert args.max_retries == 2
        assert args.deadline == 120.0
        assert args.checkpoint_every == 50
        assert args.workers == 1
        assert args.chaos_kill_at is None

    def test_sweep_unknown_workload_fails_cleanly(self, capsys):
        assert main(["sweep", "NoSuchNet"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_sweep_runs_supervised_jobs(self, tmp_path, capsys):
        import json

        stats = tmp_path / "sweep.json"
        trace = tmp_path / "trace.json"
        code = main(
            ["sweep", "Nowotny et al.", "--scale", "0.05",
             "--steps", "100", "--seed", "3",
             "--stats-json", str(stats), "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 jobs completed" in out
        assert "completed" in out
        doc = json.loads(stats.read_text())
        assert doc["schema"] == "repro-sweep/1"
        assert doc["jobs"][0]["name"] == "Nowotny et al."
        assert doc["jobs"][0]["outcome"] == "completed"
        assert doc["metrics"]["supervisor_jobs_completed"]
        trace_doc = json.loads(trace.read_text())
        assert any(
            event.get("ph") == "X" for event in trace_doc["traceEvents"]
        )

    def test_sweep_chaos_kill_retries_and_resumes(self, capsys):
        code = main(
            ["sweep", "Nowotny et al.", "--scale", "0.05",
             "--steps", "100", "--seed", "3",
             "--chaos-kill-at", "60", "--checkpoint-every", "25",
             "--backoff-base", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "1/1 jobs completed" in out
