"""Integration test: SIGINT/SIGTERM on a real ``repro run`` process.

Spawns ``python -m repro run``, waits for the run to start, delivers a
signal, and checks the documented contract: a clean message instead of
a traceback, the conventional exit code (130/143), a loadable final
checkpoint, and a partial ``--stats-json`` document.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parent.parent)


def _spawn_run(tmp_path):
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run", "Izhikevich",
            "--backend", "reference", "--scale", "0.05",
            "--steps", "2000000",
            "--checkpoint-path", str(tmp_path / "final.ckpt"),
            "--stats-json", str(tmp_path / "stats.json"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )


def _interrupt_once_running(process, signum):
    """Wait for the run loop to start, then deliver the signal."""
    for line in process.stdout:
        if "built at scale" in line:
            time.sleep(0.5)  # let the step loop actually start
            process.send_signal(signum)
            break
    else:  # pragma: no cover - the run never started
        pytest.fail("run produced no startup banner")
    out, _ = process.communicate(timeout=120)
    return out


class TestGracefulInterrupt:
    def test_sigint_checkpoints_and_exits_130(self, tmp_path):
        process = _spawn_run(tmp_path)
        out = _interrupt_once_running(process, signal.SIGINT)

        assert process.returncode == 130
        assert "interrupted by SIGINT" in out
        assert "Traceback" not in out

        stats = json.loads((tmp_path / "stats.json").read_text())
        assert stats["partial"] is True
        assert stats["interrupted"]["signal"] == "SIGINT"
        assert stats["interrupted"]["exit_code"] == 130
        assert stats["n_steps"] > 0

        from repro.reliability import Checkpoint

        checkpoint = Checkpoint.load(tmp_path / "final.ckpt")
        assert checkpoint.step == stats["interrupted"]["step"]

    def test_sigterm_exits_143(self, tmp_path):
        process = _spawn_run(tmp_path)
        out = _interrupt_once_running(process, signal.SIGTERM)

        assert process.returncode == 143
        assert "interrupted by SIGTERM" in out
        assert (tmp_path / "final.ckpt").exists()
