"""End-to-end metrics publication: simulator, backends, reliability."""

import numpy as np
import pytest

from repro.hardware.backend import FoldedFlexonBackend, HybridBackend
from repro.hardware.event_driven import EventDrivenFlexonBackend
from repro.network import ReferenceBackend, Simulator
from repro.telemetry import MetricsRegistry
from repro.workloads import build_workload

DT = 1e-4


def value_of(snapshot, name, **labels):
    """The value of one metric child in a registry snapshot."""
    for entry in snapshot[name]["values"]:
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            return entry["value"]
    raise AssertionError(f"no {name} child with labels {labels}")


class TestSimulatorMetrics:
    def test_phase_counters_match_result_phases(self, small_network):
        metrics = MetricsRegistry()
        result = Simulator(small_network, dt=DT, seed=3).run(30, metrics=metrics)
        snapshot = result.metrics
        for phase, stats in result.phases.items():
            assert value_of(
                snapshot, "sim_phase_seconds_total", phase=phase
            ) == pytest.approx(stats.seconds)
            assert (
                value_of(snapshot, "sim_phase_operations_total", phase=phase)
                == stats.operations
            )
        assert value_of(snapshot, "sim_steps_total") == 30
        assert value_of(snapshot, "sim_spikes_total") == result.total_spikes()

    def test_step_histogram_observes_every_step(self, small_network):
        metrics = MetricsRegistry()
        result = Simulator(small_network, dt=DT, seed=3).run(25, metrics=metrics)
        entry = result.metrics["sim_step_seconds"]["values"][0]
        assert entry["count"] == 25
        assert entry["sum"] == pytest.approx(result.total_seconds, rel=0.05)

    def test_queue_counters_track_enqueued_events(self, small_network):
        metrics = MetricsRegistry()
        sim = Simulator(small_network, dt=DT, seed=3)
        result = sim.run(40, metrics=metrics)
        total_enqueued = sum(
            value_of(result.metrics, "spike_queue_enqueued_total", population=name)
            for name in small_network.populations
        )
        assert total_enqueued == sum(
            queue.enqueued_events for queue in sim.queues.values()
        )
        assert (
            total_enqueued
            >= result.synaptic_events + result.stimulus_events
        )

    def test_no_registry_means_no_metrics_on_result(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(5)
        assert result.metrics is None

    def test_rerun_with_same_registry_stays_monotone(self, small_network):
        metrics = MetricsRegistry()
        sim = Simulator(small_network, dt=DT, seed=3)
        sim.run(10, metrics=metrics)
        result = sim.run(10, metrics=metrics)
        assert value_of(result.metrics, "sim_steps_total") == 20
        assert value_of(
            result.metrics, "runtime_advances_total", population="exc"
        ) == 20

    def test_compiled_runtime_publishes_advances(self, small_network):
        metrics = MetricsRegistry()
        result = Simulator(
            small_network, ReferenceBackend("Euler"), dt=DT, seed=3
        ).run(15, metrics=metrics)
        assert (
            value_of(
                result.metrics,
                "runtime_advances_total",
                population="exc",
                runtime="compiled",
            )
            == 15
        )

    def test_solver_runtime_publishes_evaluations(self, small_network):
        metrics = MetricsRegistry()
        result = Simulator(
            small_network, ReferenceBackend("RKF45"), dt=DT, seed=3
        ).run(10, metrics=metrics)
        evaluations = value_of(
            result.metrics,
            "runtime_solver_evaluations_total",
            population="exc",
            runtime="solver",
        )
        assert evaluations >= 10


class TestBackendMetrics:
    def test_hardware_backend_publishes_saturation_accounting(self):
        network = build_workload("Izhikevich", scale=0.02, seed=5)
        metrics = MetricsRegistry()
        result = Simulator(
            network, FoldedFlexonBackend(DT), dt=DT, seed=6
        ).run(20, metrics=metrics)
        checked = sum(
            entry["value"]
            for entry in result.metrics["fixedpoint_saturation_checked_total"][
                "values"
            ]
        )
        assert checked > 0
        # A healthy run has the checked counter but no clipped series.
        assert "fixedpoint_saturation_clipped_total" not in result.metrics

    def test_event_driven_backend_publishes_activity_factor(self):
        network = build_workload("Brunel", scale=0.02, seed=5)
        metrics = MetricsRegistry()
        sim = Simulator(network, EventDrivenFlexonBackend(DT), dt=DT, seed=6)
        result = sim.run(30, metrics=metrics)
        for name in network.populations:
            factor = value_of(
                result.metrics, "event_driven_activity_factor", population=name
            )
            assert 0.0 <= factor <= 1.0
            assert (
                value_of(
                    result.metrics,
                    "event_driven_total_updates_total",
                    population=name,
                )
                == 30 * network.populations[name].n
            )

    def test_hybrid_backend_publishes_per_population(self):
        network = build_workload("Brunel", scale=0.02, seed=5)
        metrics = MetricsRegistry()
        result = Simulator(
            network, HybridBackend(DT), dt=DT, seed=6
        ).run(10, metrics=metrics)
        for name in network.populations:
            assert value_of(
                result.metrics, "runtime_neurons", population=name
            ) == network.populations[name].n


class TestFallbackMetrics:
    def test_fallback_runtime_publishes_degrade_counters(self, small_network):
        backend = ReferenceBackend("Euler", fault_policy="fallback")
        sim = Simulator(small_network, backend, dt=DT, seed=3)
        sim.run(5)
        # Poison one population's compiled state mid-run.
        runtime = backend.runtimes["exc"]
        runtime.primary.v[0] = np.nan
        metrics = MetricsRegistry()
        result = sim.run(5, metrics=metrics)
        assert result.diagnostics.fallbacks
        assert (
            value_of(result.metrics, "runtime_fallbacks_total", population="exc")
            == len(result.diagnostics.fallbacks)
        )
        assert value_of(result.metrics, "runtime_degraded", population="exc") == 1.0
        assert value_of(result.metrics, "runtime_degraded", population="inh") == 0.0

    def test_diagnostics_to_dict_is_json_shaped(self, small_network):
        backend = ReferenceBackend("Euler", fault_policy="fallback")
        sim = Simulator(small_network, backend, dt=DT, seed=3)
        sim.run(5)
        backend.runtimes["exc"].primary.v[0] = np.nan
        result = sim.run(5)
        doc = result.diagnostics.to_dict()
        assert doc["healthy"] is False
        assert doc["fallbacks"][0]["population"] == "exc"
        assert isinstance(doc["fallbacks"][0]["indices"], list)
        import json

        json.dumps(doc)
