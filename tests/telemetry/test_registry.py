"""MetricsRegistry: counter/gauge/histogram semantics and exports."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_set_total_is_monotone(self):
        counter = MetricsRegistry().counter("events_total")
        counter.set_total(10)
        counter.set_total(10)
        counter.set_total(12)
        with pytest.raises(ConfigurationError):
            counter.set_total(3)

    def test_create_or_get_returns_same_child(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labels={"phase": "neuron"}).inc(2)
        again = registry.counter("events_total", labels={"phase": "neuron"})
        assert again.value == 2

    def test_label_sets_are_independent_children(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labels={"phase": "neuron"}).inc(2)
        registry.counter("events_total", labels={"phase": "synapse"}).inc(7)
        snapshot = registry.snapshot()["events_total"]
        values = {
            tuple(entry["labels"].items()): entry["value"]
            for entry in snapshot["values"]
        }
        assert values == {
            (("phase", "neuron"),): 2,
            (("phase", "synapse"),): 7,
        }

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad name")


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.5)
        gauge.inc(-1.0)
        assert gauge.value == 2.5


class TestHistogram:
    def test_observe_buckets_cumulatively(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        # Per-bucket: <=0.1 -> 1, <=1.0 -> 2, <=10 -> 1, +Inf -> 1.
        assert histogram.bucket_counts == [1, 2, 1, 1]
        assert histogram.cumulative_counts() == [1, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_le_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_quantile_from_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0
        assert MetricsRegistry().histogram("e", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_rebinding_different_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestExports:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "steps_total", "Steps simulated.", {"workload": "brunel"}
        ).inc(100)
        registry.gauge("activity", "Activity factor.").set(0.25)
        hist = registry.histogram("step_seconds", "Step time.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_snapshot_is_json_serialisable_and_deterministic(self):
        registry = self.make_registry()
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == json.loads(
            json.dumps(registry.snapshot())
        )
        assert snapshot["steps_total"]["type"] == "counter"
        assert snapshot["steps_total"]["values"][0]["labels"] == {
            "workload": "brunel"
        }
        assert snapshot["step_seconds"]["values"][0]["buckets"]["+Inf"] == 2

    def test_prometheus_exposition_format(self):
        text = self.make_registry().to_prometheus()
        lines = text.splitlines()
        assert "# TYPE steps_total counter" in lines
        assert 'steps_total{workload="brunel"} 100' in lines
        assert "# HELP activity Activity factor." in lines
        assert "activity 0.25" in lines
        # Histogram explodes into _bucket/_sum/_count series.
        assert 'step_seconds_bucket{le="0.1"} 1' in lines
        assert 'step_seconds_bucket{le="+Inf"} 2' in lines
        assert "step_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": 'a"b\\c'}).inc()
        assert 'c_total{k="a\\"b\\\\c"} 1' in registry.to_prometheus()

    def test_empty_registry_exports_empty(self):
        registry = MetricsRegistry()
        assert registry.snapshot() == {}
        assert registry.to_prometheus() == ""
