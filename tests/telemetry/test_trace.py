"""TraceHook: structurally valid Perfetto traces from real runs."""

import json

import pytest

from repro.network import Simulator
from repro.telemetry import MetricsRegistry, TraceHook
from repro.workloads import build_workload

DT = 1e-4


@pytest.fixture(scope="module")
def brunel_trace():
    """A trace of a short Brunel run (the acceptance workload)."""
    network = build_workload("Brunel", scale=0.02, seed=3)
    trace = TraceHook()
    Simulator(network, dt=DT, seed=4).run(40, hooks=[trace])
    return network, trace


class TestTraceStructure:
    def test_document_is_valid_trace_event_json(self, brunel_trace):
        _, trace = brunel_trace
        doc = json.loads(json.dumps(trace.trace_json()))
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        phs = {event["ph"] for event in doc["traceEvents"]}
        assert phs == {"M", "X"}

    def test_complete_events_have_required_fields(self, brunel_trace):
        _, trace = brunel_trace
        spans = [e for e in trace.to_trace_events() if e["ph"] == "X"]
        assert spans
        for event in spans:
            assert set(event) >= {"name", "cat", "ph", "pid", "tid", "ts", "dur"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["args"]["step"] >= 0

    def test_every_phase_of_every_step_is_a_span(self, brunel_trace):
        _, trace = brunel_trace
        spans = [e for e in trace.to_trace_events() if e.get("cat") == "phase"]
        assert len(spans) == 40 * 3
        assert {e["name"] for e in spans} == {"stimulus", "neuron", "synapse"}

    def test_population_kernel_spans_on_named_tracks(self, brunel_trace):
        network, trace = brunel_trace
        events = trace.to_trace_events()
        kernels = [e for e in events if e.get("cat") == "kernel"]
        assert {e["name"] for e in kernels} == set(network.populations)
        assert len(kernels) == 40 * len(network.populations)
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for population in network.populations:
            assert f"pop:{population}" in thread_names
        # Kernel spans live on their own tracks, not the phase track.
        phase_tids = {e["tid"] for e in events if e.get("cat") == "phase"}
        kernel_tids = {e["tid"] for e in kernels}
        assert not (phase_tids & kernel_tids)

    def test_spans_nest_inside_their_neuron_phase(self, brunel_trace):
        """Kernel spans belong to, and fit inside, their step's neuron phase."""
        _, trace = brunel_trace
        events = trace.to_trace_events()
        neuron = {
            e["args"]["step"]: e
            for e in events
            if e.get("cat") == "phase" and e["name"] == "neuron"
        }
        kernel_dur = {}
        for event in events:
            if event.get("cat") != "kernel":
                continue
            phase = neuron[event["args"]["step"]]
            # The hook computes span start as dispatch-time minus duration,
            # so timestamps carry a little dispatch lag; durations do not.
            slack_us = 100.0
            assert event["ts"] >= phase["ts"] - slack_us
            assert event["ts"] + event["dur"] <= phase["ts"] + phase["dur"] + slack_us
            step = event["args"]["step"]
            kernel_dur[step] = kernel_dur.get(step, 0.0) + event["dur"]
        # Summed kernel time never exceeds the enclosing phase duration.
        for step, total in kernel_dur.items():
            assert total <= neuron[step]["dur"] + 0.01

    def test_save_round_trips_through_json(self, brunel_trace, tmp_path):
        _, trace = brunel_trace
        path = tmp_path / "trace.json"
        trace.save(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestRingBuffer:
    def test_ring_keeps_most_recent_events(self, small_network):
        trace = TraceHook(max_events=30, populations=False)
        Simulator(small_network, dt=DT, seed=3).run(50, hooks=[trace])
        assert trace.total_events == 150
        assert trace.dropped_events == 120
        spans = [e for e in trace.to_trace_events() if e["ph"] == "X"]
        assert len(spans) == 30
        # The survivors are the last 10 steps' worth of events.
        assert min(e["args"]["step"] for e in spans) == 40

    def test_dropped_count_in_document_metadata(self, small_network):
        trace = TraceHook(max_events=30, populations=False)
        Simulator(small_network, dt=DT, seed=3).run(50, hooks=[trace])
        assert trace.trace_json()["otherData"]["dropped_events"] == 120

    def test_populations_false_skips_kernel_spans(self, small_network):
        trace = TraceHook(populations=False)
        Simulator(small_network, dt=DT, seed=3).run(10, hooks=[trace])
        assert not trace.population_durations()
        assert len([e for e in trace.to_trace_events() if e["ph"] == "X"]) == 30

    def test_duration_helpers_group_by_name(self, small_network):
        trace = TraceHook()
        Simulator(small_network, dt=DT, seed=3).run(10, hooks=[trace])
        phases = trace.phase_durations()
        assert set(phases) == {"stimulus", "neuron", "synapse"}
        assert all(len(v) == 10 for v in phases.values())
        populations = trace.population_durations()
        assert set(populations) == {"exc", "inh"}


class TestTraceWithMetrics:
    def test_trace_and_registry_attach_together(self, small_network):
        trace = TraceHook()
        metrics = MetricsRegistry()
        result = Simulator(small_network, dt=DT, seed=3).run(
            20, hooks=[trace], metrics=metrics
        )
        assert result.metrics is not None
        hist = result.metrics["sim_step_seconds"]["values"][0]
        assert hist["count"] == 20
        assert len([e for e in trace.to_trace_events() if e["ph"] == "X"]) > 0
