"""The ``repro profile`` harness: payload shape and the overhead budget."""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.profile import (
    DEFAULT_WORKLOADS,
    PROFILE_SCHEMA,
    format_profile,
    profile_workload,
    run_profile,
    write_profile,
)


@pytest.fixture(scope="module")
def quick_payload(tmp_path_factory):
    """One small profile over the three default registry workloads."""
    trace_path = tmp_path_factory.mktemp("profile") / "trace.json"
    return (
        run_profile(
            workloads=DEFAULT_WORKLOADS,
            steps=40,
            scale=0.02,
            reps=2,
            trace_path=str(trace_path),
        ),
        trace_path,
    )


class TestProfilePayload:
    def test_covers_three_workloads_with_phase_percentiles(self, quick_payload):
        payload, _ = quick_payload
        assert payload["schema"] == PROFILE_SCHEMA
        assert len(payload["workloads"]) >= 3
        for entry in payload["workloads"].values():
            assert set(entry["phases"]) == {"stimulus", "neuron", "synapse"}
            for stats in entry["phases"].values():
                assert stats["p95_us"] >= stats["p50_us"] >= 0.0
                assert stats["ops_per_sec"] >= 0.0
            assert entry["populations"]
            for stats in entry["populations"].values():
                assert stats["p95_us"] >= stats["p50_us"] >= 0.0
                assert stats["neurons"] > 0

    def test_steps_per_sec_and_reps_recorded(self, quick_payload):
        payload, _ = quick_payload
        for entry in payload["workloads"].values():
            assert entry["steps_per_sec"]["bare"] > 0
            assert entry["steps_per_sec"]["instrumented"] > 0
            assert len(entry["reps"]["bare"]) == 2
            assert len(entry["reps"]["instrumented"]) == 2
        assert payload["max_overhead_delta"] == max(
            entry["overhead_delta"] for entry in payload["workloads"].values()
        )

    def test_shares_bench_engine_top_level_shape(self, quick_payload):
        payload, _ = quick_payload
        # The keys benchmarks/export.py's BENCH_engine.json also carries.
        assert {"dt", "steps", "scale", "python", "machine", "workloads"} <= set(
            payload
        )

    def test_sample_trace_saved_for_first_workload(self, quick_payload):
        _, trace_path = quick_payload
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["network"] == "Brunel"

    def test_write_profile_round_trips(self, quick_payload, tmp_path):
        payload, _ = quick_payload
        out = tmp_path / "BENCH_profile.json"
        write_profile(payload, out)
        assert json.loads(out.read_text()) == payload

    def test_format_profile_mentions_budget(self, quick_payload):
        payload, _ = quick_payload
        text = format_profile(payload)
        assert "overhead" in text
        assert "budget: < 5%" in text
        for name in payload["workloads"]:
            assert name in text


class TestProfileValidation:
    def test_bad_steps_and_reps_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_workload("Brunel", steps=0)
        with pytest.raises(ConfigurationError):
            profile_workload("Brunel", reps=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_workload("Brunel", backend="verilog", steps=1, reps=1)


class TestOverheadBudget:
    def test_izhikevich_overhead_below_five_percent(self):
        """Acceptance: full telemetry costs < 5% steps/sec on Izhikevich.

        Uses the profile command's own self-reported delta. Telemetry
        costs a fixed ~4 events/step, so the budget is asserted at a
        scale where a step does substantial integration work (scale
        0.3, 3000 neurons) — the regime long telemetered runs care
        about; at toy scales the same fixed cost is measured against a
        nearly empty step. Extra reps let the best-of estimator
        converge, and shared CI machines are noisy, so retry before
        failing.
        """
        for attempt in range(3):
            entry = profile_workload(
                "Izhikevich", steps=240, scale=0.3, reps=8, seed=7
            )
            if entry["overhead_delta"] < 0.05:
                break
            time.sleep(2.0)
        assert entry["overhead_delta"] < 0.05, entry["reps"]
