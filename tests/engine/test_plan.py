"""Tests for StepPlan compilation (the models → engine lowering)."""

import numpy as np
import pytest

from repro.engine import StepPlan, compile_step_plan, supports_step_plan
from repro.features import Feature
from repro.models.registry import available_models, create_model

DT = 1e-4

#: Registry models whose step function is the generic FeatureModel one.
PLANNABLE = [
    name
    for name in available_models()
    if name not in ("HH", "NativeIzhikevich")
]


class TestSupportsStepPlan:
    @pytest.mark.parametrize("name", PLANNABLE)
    def test_feature_models_are_plannable(self, name):
        assert supports_step_plan(create_model(name))

    @pytest.mark.parametrize("name", ["HH", "NativeIzhikevich"])
    def test_custom_step_models_are_not(self, name):
        assert not supports_step_plan(create_model(name))

    def test_compile_rejects_unsupported(self):
        with pytest.raises(ValueError):
            compile_step_plan(create_model("HH"), DT)


class TestCompiledPlan:
    @pytest.mark.parametrize("name", PLANNABLE)
    def test_plan_matches_derived_constants(self, name):
        model = create_model(name)
        plan = compile_step_plan(model, DT)
        d = model.parameters.derived(DT)
        assert isinstance(plan, StepPlan)
        assert plan.dt == DT
        assert plan.model_name == model.name
        assert plan.eps_m == d.eps_m
        assert plan.leak_max == d.leak_max
        assert plan.cnt_reload == float(d.cnt_reload)
        np.testing.assert_array_equal(
            plan.one_minus_eps_g[:, 0], d.one_minus_eps_g
        )

    def test_eps_columns_are_readonly_column_vectors(self):
        plan = compile_step_plan(create_model("AdEx_COBA"), DT)
        assert plan.one_minus_eps_g.shape == (plan.n_synapse_types, 1)
        assert plan.e_eps_g.shape == (plan.n_synapse_types, 1)
        assert not plan.one_minus_eps_g.flags.writeable
        assert not plan.e_eps_g.flags.writeable

    def test_kernel_classification(self):
        assert compile_step_plan(create_model("LIF"), DT).kernel == "CUB"
        assert compile_step_plan(create_model("AdEx"), DT).kernel == "COBE"
        assert (
            compile_step_plan(create_model("AdEx_COBA"), DT).kernel == "COBA"
        )

    def test_adaptation_classification(self):
        assert compile_step_plan(create_model("LIF"), DT).adaptation is None
        assert compile_step_plan(create_model("AdEx"), DT).adaptation == "SBT"
        assert (
            compile_step_plan(
                create_model("IF_cond_exp_gsfa_grr"), DT
            ).adaptation
            == "RR"
        )

    def test_threshold_uses_v_theta_with_spike_initiation(self):
        model = create_model("AdEx")  # EXI: fires at v_theta, not theta
        plan = compile_step_plan(model, DT)
        assert model.features.spike_initiation is not None
        assert plan.threshold == model.parameters.v_theta

    def test_threshold_uses_theta_without_spike_initiation(self):
        model = create_model("LIF")
        plan = compile_step_plan(model, DT)
        assert plan.threshold == model.parameters.theta

    def test_feature_flags_mirror_feature_set(self):
        model = create_model("IF_cond_exp_gsfa_grr")
        plan = compile_step_plan(model, DT)
        f = model.features
        assert plan.use_ar == (Feature.AR in f)
        assert plan.use_rev == (Feature.REV in f)
        assert plan.use_lid == (Feature.LID in f)


class TestDerivedConstants:
    def test_cached_per_parameters_and_dt(self):
        p = create_model("LIF").parameters
        assert p.derived(DT) is p.derived(DT)
        assert p.derived(DT) is not p.derived(2 * DT)

    def test_matches_historical_expressions(self):
        p = create_model("AdEx").parameters
        d = p.derived(DT)
        assert d.eps_m == DT / p.tau
        assert d.sbt_gain == (DT / p.tau) * p.a
        for i, tau in enumerate(p.tau_g):
            assert d.eps_g[i] == DT / tau
            assert d.one_minus_eps_g[i] == 1.0 - DT / tau
