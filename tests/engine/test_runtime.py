"""CompiledRuntime must be bit-identical to the dict-state reference.

The engine's whole value proposition is "same numbers, faster": every
registry feature model stepped through a compiled plan must produce
exactly the same fired masks and state trajectories as
``FeatureModel.step`` on dict state — not approximately, bit for bit.
"""

import numpy as np
import pytest

from repro.engine import CompiledRuntime, SolverRuntime
from repro.errors import SimulationError
from repro.models.registry import available_models, create_model
from repro.solvers import create_solver

DT = 1e-4
N = 64
STEPS = 300

PLANNABLE = [
    name for name in available_models() if name not in ("HH", "NativeIzhikevich")
]


def _drive(model, rng, steps=STEPS, n=N):
    """A spiky random input stream shaped for the model."""
    n_types = model.parameters.n_synapse_types
    drive = (rng.random((steps, n_types, n)) < 0.08) * rng.uniform(
        0.5, 40.0, (steps, n_types, n)
    )
    return drive


class TestBitIdentity:
    @pytest.mark.parametrize("name", PLANNABLE)
    def test_exactly_matches_feature_model_step(self, name, rng):
        model = create_model(name)
        inputs = _drive(model, rng)
        reference_state = model.initial_state(N)
        runtime = CompiledRuntime("p", N, model)
        for step in range(STEPS):
            fired_ref = model.step(reference_state, inputs[step], DT)
            fired_eng = runtime.advance(inputs[step], DT)
            assert np.array_equal(fired_ref, fired_eng), (name, step)
            engine_state = runtime.state()
            assert set(engine_state) == set(reference_state)
            for var, values in reference_state.items():
                assert np.array_equal(values, engine_state[var]), (
                    name,
                    step,
                    var,
                )

    @pytest.mark.parametrize("name", PLANNABLE)
    def test_matches_euler_solver_runtime(self, name, rng):
        model = create_model(name)
        inputs = _drive(model, rng, steps=100)
        solver_rt = SolverRuntime("p", N, model, create_solver("Euler"))
        compiled_rt = CompiledRuntime("p", N, model)
        for step in range(100):
            fired_ref = solver_rt.advance(inputs[step], DT)
            fired_eng = compiled_rt.advance(inputs[step], DT)
            assert np.array_equal(fired_ref, fired_eng), (name, step)


class TestCompiledRuntimeContract:
    def test_rejects_unplannable_model(self):
        with pytest.raises(SimulationError):
            CompiledRuntime("p", 4, create_model("HH"))

    def test_plan_bound_lazily_on_first_advance(self):
        runtime = CompiledRuntime("p", 4, create_model("LIF"))
        assert runtime.plan is None
        runtime.advance(np.zeros((2, 4)), DT)
        assert runtime.plan is not None
        assert runtime.plan.dt == DT

    def test_rebinds_when_dt_changes(self):
        runtime = CompiledRuntime("p", 4, create_model("LIF"))
        runtime.advance(np.zeros((2, 4)), DT)
        first = runtime.plan
        runtime.advance(np.zeros((2, 4)), 2 * DT)
        assert runtime.plan is not first
        assert runtime.plan.dt == 2 * DT

    def test_shape_mismatch_raises(self):
        runtime = CompiledRuntime("p", 4, create_model("LIF"))
        with pytest.raises(SimulationError):
            runtime.advance(np.zeros((2, 5)), DT)

    def test_state_views_are_live(self):
        model = create_model("AdEx_COBA")
        runtime = CompiledRuntime("p", 8, model)
        state = runtime.state()
        rng = np.random.default_rng(0)
        inputs = _drive(model, rng, steps=20, n=8)
        before = state["v"].copy()
        for step in range(20):
            runtime.advance(inputs[step], DT)
        assert not np.array_equal(before, state["v"])
        assert state["v"] is runtime.state()["v"]

    def test_load_state_round_trips(self):
        model = create_model("IF_cond_exp_gsfa_grr")
        runtime = CompiledRuntime("p", 8, model)
        snapshot = {
            name: np.random.default_rng(1).normal(size=8)
            for name in runtime.state()
        }
        runtime.load_state(snapshot)
        for name, values in snapshot.items():
            assert np.array_equal(runtime.state()[name], values)

    def test_counts_advances(self):
        runtime = CompiledRuntime("p", 4, create_model("LIF"))
        for _ in range(7):
            runtime.advance(np.zeros((2, 4)), DT)
        assert runtime.advances == 7
        assert runtime.evaluations_per_step() == 1.0
