"""The engine fast path must not change any backend's observable output.

Two guarantees are pinned here:

* ``ReferenceBackend(use_engine=True)`` (the default) produces spike
  trains *identical* to the historical dict-state solver path
  (``use_engine=False``) on real Table I workloads.
* The hardware backends, now routed through ``HardwareRuntime``, stay
  bit-identical to the reference contract they had before the refactor
  (their own equivalence tests cover numerics; here we check the
  runtime seam wiring).
"""

import pytest

from repro.engine import CompiledRuntime, SolverRuntime
from repro.hardware import (
    EventDrivenFlexonBackend,
    FlexonBackend,
    HardwareRuntime,
    HybridBackend,
)
from repro.network import ReferenceBackend, Simulator
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus
from repro.workloads import build_workload
from repro.workloads.builders import DT


def _spikes(network, backend, steps=300, seed=7):
    result = Simulator(network, backend, dt=DT, seed=seed).run(steps)
    return {
        pop: result.spikes.result(pop).spike_pairs()
        for pop in network.populations
    }


@pytest.mark.parametrize("workload", ["Brunel", "Izhikevich"])
def test_engine_path_is_spike_identical_on_workloads(workload):
    engine = _spikes(
        build_workload(workload, scale=0.03, seed=11),
        ReferenceBackend("Euler", use_engine=True),
    )
    seed_path = _spikes(
        build_workload(workload, scale=0.03, seed=11),
        ReferenceBackend("Euler", use_engine=False),
    )
    assert engine == seed_path
    assert any(pairs for pairs in engine.values()), "workload was silent"


def test_engine_backend_builds_compiled_runtimes():
    network = build_workload("Brunel", scale=0.02, seed=1)
    backend = ReferenceBackend("Euler")
    backend.prepare(network)
    assert all(
        isinstance(rt, CompiledRuntime) for rt in backend.runtimes.values()
    )


def test_engine_disabled_builds_solver_runtimes():
    network = build_workload("Brunel", scale=0.02, seed=1)
    backend = ReferenceBackend("Euler", use_engine=False)
    backend.prepare(network)
    assert all(
        isinstance(rt, SolverRuntime) for rt in backend.runtimes.values()
    )


def test_rkf45_stays_on_solver_runtime():
    network = build_workload("Brette et al.", scale=0.02, seed=1)
    backend = ReferenceBackend("RKF45")
    backend.prepare(network)
    assert all(
        isinstance(rt, SolverRuntime) for rt in backend.runtimes.values()
    )


def test_unplannable_model_falls_back_to_solver_runtime():
    network = Network("hh")
    pop = network.add_population("p", 10, "HH")
    network.add_stimulus(PoissonStimulus(pop, 300.0, 5.0, dt=DT))
    backend = ReferenceBackend("Euler")
    backend.prepare(network)
    assert isinstance(backend.runtimes["p"], SolverRuntime)


def test_hardware_backends_route_through_hardware_runtime():
    network = build_workload("Brunel", scale=0.02, seed=1)
    for backend in (FlexonBackend(dt=DT), EventDrivenFlexonBackend(dt=DT)):
        backend.prepare(network)
        assert all(
            isinstance(rt, HardwareRuntime)
            for rt in backend.runtimes.values()
        )


def test_hybrid_backend_splits_runtimes_per_population():
    network = Network("mixed")
    adex = network.add_population("adex", 10, "AdEx")
    hh = network.add_population("hh", 10, "HH")
    network.add_stimulus(PoissonStimulus(adex, 300.0, 5.0, dt=DT))
    network.add_stimulus(PoissonStimulus(hh, 300.0, 5.0, dt=DT))
    backend = HybridBackend(dt=DT)
    backend.prepare(network)
    assert isinstance(backend.runtimes["adex"], HardwareRuntime)
    assert isinstance(backend.runtimes["hh"], SolverRuntime)
    assert backend.offloaded == {"adex": True, "hh": False}
    assert backend.offloaded_fraction() == pytest.approx(0.5)
