"""PhaseHook API and the unified phase-accounting regression tests."""

import pytest

from repro.engine import PHASES, PhaseHook, PhaseTimer, PhaseTrace
from repro.network import ReferenceBackend, Simulator, StateRecorder

DT = 1e-4


class _RecordingHook(PhaseHook):
    def __init__(self):
        self.run_starts = []
        self.steps = []
        self.phases = []
        self.results = []

    def on_run_start(self, network, n_steps):
        self.run_starts.append((network.name, n_steps))

    def on_step_start(self, step):
        self.steps.append(step)

    def on_phase(self, phase, step, seconds, operations):
        self.phases.append((phase, step, operations))

    def on_run_end(self, result):
        self.results.append(result)


class TestPhaseHookStream:
    def test_hook_sees_every_phase_of_every_step(self, small_network):
        hook = _RecordingHook()
        sim = Simulator(small_network, dt=DT, seed=3)
        result = sim.run(25, hooks=[hook])
        assert hook.run_starts == [(small_network.name, 25)]
        assert hook.steps == list(range(25))
        assert len(hook.phases) == 25 * len(PHASES)
        # Per step, the three phases fire in canonical order.
        assert [p for p, _, _ in hook.phases[:3]] == list(PHASES)
        assert hook.results == [result]

    def test_hook_step_numbers_continue_across_runs(self, small_network):
        hook = _RecordingHook()
        sim = Simulator(small_network, dt=DT, seed=3)
        sim.run(10, hooks=[hook])
        sim.run(5, hooks=[hook])
        assert hook.steps == list(range(15))

    def test_phase_trace_counts_steps(self, small_network):
        trace = PhaseTrace()
        Simulator(small_network, dt=DT, seed=3).run(12, hooks=[trace])
        assert trace.steps_recorded() == 12
        assert len(trace.events) == 12 * len(PHASES)

    def test_phase_timer_standalone_accumulates(self):
        timer = PhaseTimer()
        timer.on_phase("neuron", 0, 0.5, 10)
        timer.on_phase("neuron", 1, 0.25, 10)
        assert timer.phases["neuron"].seconds == 0.75
        assert timer.phases["neuron"].operations == 20

    def test_base_hook_methods_are_no_ops(self, small_network):
        # A bare PhaseHook must be attachable without overriding anything.
        Simulator(small_network, dt=DT, seed=3).run(5, hooks=[PhaseHook()])


class TestPhaseAccounting:
    """Regressions for the seed's two phase-accounting bugs: recorder
    sampling silently charged to the neuron phase, and neuron updates
    counted on a second independent path.
    """

    def test_counters_come_from_phase_stats(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(50)
        assert result.neuron_updates == result.phases["neuron"].operations
        assert result.synaptic_events == result.phases["synapse"].operations
        assert result.stimulus_events == result.phases["stimulus"].operations

    def test_neuron_updates_exactly_steps_times_neurons(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(50)
        assert result.neuron_updates == 50 * small_network.n_neurons

    def test_fractions_sum_to_one_with_recorders(self, small_network):
        recorder = StateRecorder("exc", variables=("v",), neurons=[0])
        result = Simulator(small_network, dt=DT, seed=3).run(
            50, state_recorders=[recorder]
        )
        assert sum(result.phase_fractions().values()) == pytest.approx(1.0)
        assert set(result.phases) == set(PHASES)

    def test_recorder_time_not_charged_to_any_phase(self, small_network):
        recorder = StateRecorder("exc", variables=("v",), neurons=[0])
        result = Simulator(small_network, dt=DT, seed=3).run(
            50, state_recorders=[recorder]
        )
        assert result.recording_seconds > 0.0
        assert result.recording_seconds not in [
            stats.seconds for stats in result.phases.values()
        ]

    def test_no_recorders_means_no_recording_time(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(20)
        assert result.recording_seconds == 0.0

    def test_identical_counts_on_engine_and_solver_paths(self, small_network):
        fast = Simulator(
            small_network, ReferenceBackend("Euler"), dt=DT, seed=3
        ).run(50)
        assert (
            fast.neuron_updates == 50 * small_network.n_neurons
        )


class TestPhaseTraceRingBuffer:
    def test_unbounded_by_default(self, small_network):
        trace = PhaseTrace()
        Simulator(small_network, dt=DT, seed=3).run(40, hooks=[trace])
        assert len(trace.events) == 40 * len(PHASES)
        assert trace.total_events == 40 * len(PHASES)
        assert trace.dropped_events == 0

    def test_ring_keeps_most_recent_events(self, small_network):
        trace = PhaseTrace(max_events=9)
        Simulator(small_network, dt=DT, seed=3).run(40, hooks=[trace])
        assert len(trace.events) == 9
        assert trace.total_events == 120
        assert trace.dropped_events == 111
        # The survivors are the last three steps' phase events.
        assert [step for step, *_ in trace.events] == [37, 37, 37, 38, 38, 38, 39, 39, 39]
        assert trace.steps_recorded() == 3

    def test_durations_of_reads_only_the_buffer(self, small_network):
        trace = PhaseTrace(max_events=6)
        Simulator(small_network, dt=DT, seed=3).run(10, hooks=[trace])
        durations = trace.durations_of("neuron")
        assert len(durations) == 2
        assert all(value >= 0.0 for value in durations)


class _FailingHook(PhaseHook):
    """Raises from one chosen callback at one chosen step."""

    def __init__(self, callback, fail_step=0, error=ValueError("boom")):
        self.callback = callback
        self.fail_step = fail_step
        self.error = error
        self.calls = []

    def _maybe_fail(self, name, step):
        self.calls.append((name, step))
        if name == self.callback and step >= self.fail_step:
            raise self.error

    def on_step_start(self, step):
        self._maybe_fail("on_step_start", step)

    def on_phase(self, phase, step, seconds, operations):
        self._maybe_fail("on_phase", step)

    def on_run_end(self, result):
        self._maybe_fail("on_run_end", result.n_steps)


class TestHookFailureSemantics:
    """Pins the contract in the hooks module docstring: plain exceptions
    are isolated (hook detached, HookError recorded, warning emitted);
    ReproError subclasses propagate after the phase closed.
    """

    def test_failing_hook_is_isolated_and_recorded(self, small_network):
        hook = _FailingHook("on_phase", fail_step=5)
        with pytest.warns(RuntimeWarning, match="on_phase"):
            result = Simulator(small_network, dt=DT, seed=3).run(20, hooks=[hook])
        assert len(result.hook_errors) == 1
        error = result.hook_errors[0]
        assert error.hook == "_FailingHook"
        assert error.callback == "on_phase"
        assert error.step == 5
        assert "boom" in error.error
        assert "detached" in error.describe()

    def test_failed_hook_detached_for_rest_of_run(self, small_network):
        hook = _FailingHook("on_phase", fail_step=5)
        with pytest.warns(RuntimeWarning):
            Simulator(small_network, dt=DT, seed=3).run(20, hooks=[hook])
        # The hook saw nothing after the step where it raised.
        assert max(step for _, step in hook.calls) == 5

    def test_phase_accounting_survives_hook_failure(self, small_network):
        hook = _FailingHook("on_phase", fail_step=0)
        with pytest.warns(RuntimeWarning):
            result = Simulator(small_network, dt=DT, seed=3).run(20, hooks=[hook])
        assert set(result.phases) == set(PHASES)
        assert result.neuron_updates == 20 * small_network.n_neurons
        assert sum(result.phase_fractions().values()) == pytest.approx(1.0)

    def test_other_hooks_keep_running(self, small_network):
        failing = _FailingHook("on_phase", fail_step=0)
        healthy = _RecordingHook()
        with pytest.warns(RuntimeWarning):
            Simulator(small_network, dt=DT, seed=3).run(
                20, hooks=[failing, healthy]
            )
        assert len(healthy.phases) == 20 * len(PHASES)

    def test_step_start_failure_isolated_too(self, small_network):
        hook = _FailingHook("on_step_start", fail_step=3)
        with pytest.warns(RuntimeWarning):
            result = Simulator(small_network, dt=DT, seed=3).run(10, hooks=[hook])
        assert result.hook_errors[0].callback == "on_step_start"
        assert result.n_steps == 10

    def test_run_end_failure_recorded(self, small_network):
        hook = _FailingHook("on_run_end")
        with pytest.warns(RuntimeWarning):
            result = Simulator(small_network, dt=DT, seed=3).run(5, hooks=[hook])
        assert result.hook_errors[0].callback == "on_run_end"

    def test_repro_error_propagates(self, small_network):
        from repro.errors import NumericsError

        hook = _FailingHook("on_phase", fail_step=5, error=NumericsError("nan"))
        with pytest.raises(NumericsError):
            Simulator(small_network, dt=DT, seed=3).run(20, hooks=[hook])

    def test_hook_errors_reach_metrics_registry(self, small_network):
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
        hook = _FailingHook("on_phase", fail_step=0)
        with pytest.warns(RuntimeWarning):
            result = Simulator(small_network, dt=DT, seed=3).run(
                10, hooks=[hook], metrics=metrics
            )
        entry = [
            e
            for e in result.metrics["sim_hook_errors_total"]["values"]
        ]
        assert entry[0]["value"] == 1


class _SpanHook(PhaseHook):
    def __init__(self):
        self.spans = []

    def on_population(self, population, step, seconds, operations):
        self.spans.append((population, step, seconds, operations))


class TestPopulationSpans:
    def test_span_hook_sees_every_population_every_step(self, small_network):
        hook = _SpanHook()
        Simulator(small_network, dt=DT, seed=3).run(10, hooks=[hook])
        assert len(hook.spans) == 10 * len(small_network.populations)
        assert {name for name, *_ in hook.spans} == set(small_network.populations)
        assert all(seconds >= 0.0 for _, _, seconds, _ in hook.spans)
        assert all(
            operations == small_network.populations[name].n
            for name, _, _, operations in hook.spans
        )

    def test_opt_out_attribute_suppresses_spans(self, small_network):
        hook = _SpanHook()
        hook.wants_population_spans = False
        Simulator(small_network, dt=DT, seed=3).run(10, hooks=[hook])
        assert hook.spans == []

    def test_span_seconds_fit_inside_neuron_phase(self, small_network):
        hook = _SpanHook()
        result = Simulator(small_network, dt=DT, seed=3).run(10, hooks=[hook])
        assert sum(s for _, _, s, _ in hook.spans) <= result.phases["neuron"].seconds
