"""PhaseHook API and the unified phase-accounting regression tests."""

import pytest

from repro.engine import PHASES, PhaseHook, PhaseTimer, PhaseTrace
from repro.network import ReferenceBackend, Simulator, StateRecorder

DT = 1e-4


class _RecordingHook(PhaseHook):
    def __init__(self):
        self.run_starts = []
        self.steps = []
        self.phases = []
        self.results = []

    def on_run_start(self, network, n_steps):
        self.run_starts.append((network.name, n_steps))

    def on_step_start(self, step):
        self.steps.append(step)

    def on_phase(self, phase, step, seconds, operations):
        self.phases.append((phase, step, operations))

    def on_run_end(self, result):
        self.results.append(result)


class TestPhaseHookStream:
    def test_hook_sees_every_phase_of_every_step(self, small_network):
        hook = _RecordingHook()
        sim = Simulator(small_network, dt=DT, seed=3)
        result = sim.run(25, hooks=[hook])
        assert hook.run_starts == [(small_network.name, 25)]
        assert hook.steps == list(range(25))
        assert len(hook.phases) == 25 * len(PHASES)
        # Per step, the three phases fire in canonical order.
        assert [p for p, _, _ in hook.phases[:3]] == list(PHASES)
        assert hook.results == [result]

    def test_hook_step_numbers_continue_across_runs(self, small_network):
        hook = _RecordingHook()
        sim = Simulator(small_network, dt=DT, seed=3)
        sim.run(10, hooks=[hook])
        sim.run(5, hooks=[hook])
        assert hook.steps == list(range(15))

    def test_phase_trace_counts_steps(self, small_network):
        trace = PhaseTrace()
        Simulator(small_network, dt=DT, seed=3).run(12, hooks=[trace])
        assert trace.steps_recorded() == 12
        assert len(trace.events) == 12 * len(PHASES)

    def test_phase_timer_standalone_accumulates(self):
        timer = PhaseTimer()
        timer.on_phase("neuron", 0, 0.5, 10)
        timer.on_phase("neuron", 1, 0.25, 10)
        assert timer.phases["neuron"].seconds == 0.75
        assert timer.phases["neuron"].operations == 20

    def test_base_hook_methods_are_no_ops(self, small_network):
        # A bare PhaseHook must be attachable without overriding anything.
        Simulator(small_network, dt=DT, seed=3).run(5, hooks=[PhaseHook()])


class TestPhaseAccounting:
    """Regressions for the seed's two phase-accounting bugs: recorder
    sampling silently charged to the neuron phase, and neuron updates
    counted on a second independent path.
    """

    def test_counters_come_from_phase_stats(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(50)
        assert result.neuron_updates == result.phases["neuron"].operations
        assert result.synaptic_events == result.phases["synapse"].operations
        assert result.stimulus_events == result.phases["stimulus"].operations

    def test_neuron_updates_exactly_steps_times_neurons(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(50)
        assert result.neuron_updates == 50 * small_network.n_neurons

    def test_fractions_sum_to_one_with_recorders(self, small_network):
        recorder = StateRecorder("exc", variables=("v",), neurons=[0])
        result = Simulator(small_network, dt=DT, seed=3).run(
            50, state_recorders=[recorder]
        )
        assert sum(result.phase_fractions().values()) == pytest.approx(1.0)
        assert set(result.phases) == set(PHASES)

    def test_recorder_time_not_charged_to_any_phase(self, small_network):
        recorder = StateRecorder("exc", variables=("v",), neurons=[0])
        result = Simulator(small_network, dt=DT, seed=3).run(
            50, state_recorders=[recorder]
        )
        assert result.recording_seconds > 0.0
        assert result.recording_seconds not in [
            stats.seconds for stats in result.phases.values()
        ]

    def test_no_recorders_means_no_recording_time(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(20)
        assert result.recording_seconds == 0.0

    def test_identical_counts_on_engine_and_solver_paths(self, small_network):
        fast = Simulator(
            small_network, ReferenceBackend("Euler"), dt=DT, seed=3
        ).run(50)
        assert (
            fast.neuron_updates == 50 * small_network.n_neurons
        )
