"""Tests: the windowed shard protocol is bit-identical to the simulator."""

import numpy as np
import pytest

from repro.errors import ShardingError
from repro.network.backends import ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PoissonStimulus
from repro.sharding import (
    ShardPlan,
    ShardRunner,
    merge_spikes,
    merge_windows,
    simulate_sharded,
    window_digest,
)

DT = 1e-4
SEED = 11


def _network():
    rng = np.random.default_rng(5)
    network = Network("shard-net")
    exc = network.add_population("exc", 40, "DLIF")
    network.add_population("inh", 10, "DLIF")
    network.connect(
        "exc", "exc", probability=0.3, weight=0.05, syn_type=0, rng=rng,
        delay_steps=2, delay_jitter=4,
    )
    network.connect(
        "inh", "exc", probability=0.3, weight=0.18, syn_type=1, rng=rng,
        delay_steps=3,
    )
    network.connect(
        "exc", "inh", probability=0.3, weight=0.07, syn_type=0, rng=rng,
        delay_steps=2,
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=900.0, weight=0.10, dt=DT, n_sources=8)
    )
    return network


def _single_digest(steps):
    simulator = Simulator(_network(), ReferenceBackend(), dt=DT, seed=SEED)
    result = simulator.run(steps)
    return result.spikes.digest(), result.total_spikes()


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_inline_sharded_matches_single_process(self, n_shards):
        steps = 120
        digest, total = _single_digest(steps)
        result = simulate_sharded(
            _network(), n_shards, steps, dt=DT, seed=SEED
        )
        assert total > 0, "silent network would make the pin vacuous"
        assert result.total_spikes() == total
        assert result.digest() == digest

    def test_partial_final_window(self):
        # steps not divisible by the window: the last epoch is short.
        steps = 115  # window 2 -> 57 full epochs + 1 step
        digest, _ = _single_digest(steps)
        result = simulate_sharded(_network(), 3, steps, dt=DT, seed=SEED)
        assert result.epochs == -(-steps // result.window)
        assert result.digest() == digest

    @pytest.mark.parametrize("kill_epoch", [0, 3, 17])
    def test_kill_and_recover_preserves_digest(self, kill_epoch):
        steps = 90
        digest, _ = _single_digest(steps)
        result = simulate_sharded(
            _network(), 3, steps, dt=DT, seed=SEED,
            kill_shard=1, kill_epoch=kill_epoch,
        )
        assert result.recovered
        assert result.digest() == digest

    def test_sparse_checkpoints_still_recover(self):
        steps = 90
        digest, _ = _single_digest(steps)
        result = simulate_sharded(
            _network(), 2, steps, dt=DT, seed=SEED,
            checkpoint_every=5, kill_shard=0, kill_epoch=13,
        )
        assert result.recovered
        assert result.digest() == digest


class TestRunnerMechanics:
    def test_snapshot_restore_round_trip(self):
        network = _network()
        plan = ShardPlan(network, 2)
        runner = ShardRunner(
            network, plan, 0, ReferenceBackend(), dt=DT, seed=SEED
        )
        peer = ShardRunner(
            network, plan, 1, ReferenceBackend(), dt=DT, seed=SEED
        )
        for epoch in range(4):
            windows = [
                runner.run_window(plan.window), peer.run_window(plan.window)
            ]
            merged = merge_windows(plan, windows, plan.window)
            runner.apply_exchange(merged, plan.window)
            peer.apply_exchange(merged, plan.window)
        payload = runner.snapshot()

        rebuilt = ShardRunner(
            _network(), ShardPlan(_network(), 2), 0,
            ReferenceBackend(), dt=DT, seed=SEED,
        )
        rebuilt.restore(payload)
        assert rebuilt.step == runner.step
        # Both evolve identically from the restore point.
        left = runner.run_window(plan.window)
        right = rebuilt.run_window(plan.window)
        assert window_digest(left) == window_digest(right)

    def test_restore_rejects_wrong_shard(self):
        network = _network()
        plan = ShardPlan(network, 2)
        runner = ShardRunner(
            network, plan, 0, ReferenceBackend(), dt=DT, seed=SEED
        )
        payload = runner.snapshot()
        other = ShardRunner(
            _network(), ShardPlan(_network(), 2), 1,
            ReferenceBackend(), dt=DT, seed=SEED,
        )
        with pytest.raises(ShardingError, match="shard"):
            other.restore(payload)

    def test_exchange_length_mismatch_rejected(self):
        network = _network()
        plan = ShardPlan(network, 2)
        runner = ShardRunner(
            network, plan, 0, ReferenceBackend(), dt=DT, seed=SEED
        )
        window = runner.run_window(plan.window)
        merged = merge_windows(plan, [window], plan.window)
        short = {name: steps[:-1] for name, steps in merged.items()}
        with pytest.raises(ShardingError, match="steps"):
            runner.apply_exchange(short, plan.window)

    def test_merge_windows_preserves_ascending_order(self):
        network = _network()
        plan = ShardPlan(network, 3)
        runners = [
            ShardRunner(
                network, plan, shard, ReferenceBackend(), dt=DT, seed=SEED
            )
            for shard in range(3)
        ]
        for _ in range(8):
            windows = [r.run_window(plan.window) for r in runners]
            merged = merge_windows(plan, windows, plan.window)
            for per_step in merged.values():
                for fired in per_step:
                    assert np.all(np.diff(fired) > 0) or fired.size <= 1
            for r in runners:
                r.apply_exchange(merged, plan.window)

    def test_merge_spikes_matches_single_recorder_layout(self):
        steps = 60
        simulator = Simulator(
            _network(), ReferenceBackend(), dt=DT, seed=SEED
        )
        reference = simulator.run(steps).spikes
        result = simulate_sharded(_network(), 3, steps, dt=DT, seed=SEED)
        merged = merge_spikes([result.spikes.snapshot()])
        assert merged.digest() == reference.digest()
