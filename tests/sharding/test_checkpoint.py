"""Tests for composite (all-shard) checkpoint files."""

import pickle

import pytest

from repro.errors import CheckpointError
from repro.sharding.checkpoint import CompositeCheckpoint


def _checkpoint():
    return CompositeCheckpoint(
        signature={"network": "net", "n_shards": 2, "window": 3},
        epoch=4,
        step=15,
        shards={0: {"step": 15}, 1: {"step": 15}},
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "composite.ckpt")
        original = _checkpoint()
        original.save(path)
        loaded = CompositeCheckpoint.load(path)
        assert loaded.epoch == original.epoch
        assert loaded.step == original.step
        assert loaded.shards == original.shards
        assert loaded.matches(original.signature)
        assert not loaded.matches({"network": "other"})

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        path = tmp_path / "composite.ckpt"
        _checkpoint().save(str(path))
        _checkpoint().save(str(path))
        assert [p.name for p in tmp_path.iterdir()] == ["composite.ckpt"]

    def test_shard_keys_survive_json_like_stringification(self):
        payload = _checkpoint().to_payload()
        payload["shards"] = {str(k): v for k, v in payload["shards"].items()}
        rebuilt = CompositeCheckpoint.from_payload(payload)
        assert set(rebuilt.shards) == {0, 1}


class TestLoadFailures:
    def test_missing_file(self, tmp_path):
        path = str(tmp_path / "nope.ckpt")
        with pytest.raises(CheckpointError) as info:
            CompositeCheckpoint.load(path)
        assert info.value.path == path
        assert info.value.reason == "not-found"

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        _checkpoint().save(str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError) as info:
            CompositeCheckpoint.load(str(path))
        assert info.value.path == str(path)
        assert info.value.reason in ("truncated", "not-a-pickle", "corrupt")

    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "noise.ckpt"
        path.write_bytes(b"plain text, not a pickle")
        with pytest.raises(CheckpointError) as info:
            CompositeCheckpoint.load(str(path))
        assert info.value.reason in ("not-a-pickle", "truncated", "corrupt")

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "list.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError) as info:
            CompositeCheckpoint.load(str(path))
        assert info.value.reason == "wrong-type"

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        payload = _checkpoint().to_payload()
        payload["version"] = 99
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError) as info:
            CompositeCheckpoint.load(str(path))
        assert info.value.reason == "corrupt"
        assert info.value.path == str(path)
