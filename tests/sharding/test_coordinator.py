"""Tests: the process-backed shard coordinator, including chaos paths.

These spawn real worker processes (the same spawn context the
supervisor uses), so they are the slowest tests in the suite — each
one builds the Brunel workload in the coordinator and once per worker.
The digest pin is against a single-process run computed once per
module.
"""

import pytest

from repro.errors import SupervisionError
from repro.sharding import CompositeCheckpoint, ShardChaos, ShardCoordinator
from repro.supervision import JobSpec, RetryPolicy

STEPS = 200
SCALE = 0.05
SEED = 3


def _spec(n_shards, name="coord-test"):
    return JobSpec(
        name=f"{name}-x{n_shards}", workload="Brunel",
        backend="reference", steps=STEPS, scale=SCALE, seed=SEED,
        shards=n_shards,
    )


@pytest.fixture(scope="module")
def single_digest():
    from repro.network.simulator import Simulator
    from repro.network.backends import ReferenceBackend
    from repro.workloads import build_workload
    from repro.workloads.builders import DT

    network = build_workload("Brunel", scale=SCALE, seed=SEED)
    simulator = Simulator(network, ReferenceBackend(), dt=DT, seed=SEED + 1)
    result = simulator.run(STEPS)
    assert result.total_spikes() > 0
    return result.spikes.digest()


class TestHappyPath:
    def test_two_shards_bit_identical(self, single_digest):
        result = ShardCoordinator(_spec(2)).run()
        assert result.spike_digest == single_digest
        assert result.restarts == [0, 0]
        assert not result.degraded
        assert result.diagnostics.healthy()
        stats = result.to_stats_dict()
        assert stats["schema"] == "repro-shard-run/1"
        assert stats["spike_digest"] == single_digest

    def test_composite_checkpoint_written(self, single_digest, tmp_path):
        path = str(tmp_path / "composite.ckpt")
        result = ShardCoordinator(
            _spec(2), checkpoint_every=5, checkpoint_path=path
        ).run()
        assert result.spike_digest == single_digest
        composite = CompositeCheckpoint.load(path)
        assert set(composite.shards) == {0, 1}
        assert composite.signature["n_shards"] == 2


class TestChaos:
    def test_sigkill_recovery_bit_identical(self, single_digest):
        result = ShardCoordinator(
            _spec(2, "kill"),
            chaos=ShardChaos(shard=1, kill_epoch=5),
            retry=RetryPolicy(max_retries=2, base_delay=0.1),
        ).run()
        assert result.restarts == [0, 1]
        assert not result.degraded
        assert result.spike_digest == single_digest

    def test_stall_recovery_bit_identical(self, single_digest):
        result = ShardCoordinator(
            _spec(2, "stall"),
            chaos=ShardChaos(shard=0, stall_epoch=8),
            retry=RetryPolicy(max_retries=2, base_delay=0.1),
            barrier_timeout=2.0,
        ).run()
        assert result.restarts == [1, 0]
        assert not result.degraded
        assert result.spike_digest == single_digest

    def test_exhausted_retries_degrade_to_single_process(self, single_digest):
        # Retry budget zero: the first kill exhausts it, and the run
        # must complete degraded — single-process, same digest, with a
        # structured DegradedEvent in the diagnostics.
        result = ShardCoordinator(
            _spec(2, "degrade"),
            chaos=ShardChaos(shard=1, kill_epoch=3),
            retry=RetryPolicy(max_retries=0, base_delay=0.1),
        ).run()
        assert result.degraded
        assert result.spike_digest == single_digest
        assert not result.diagnostics.healthy()
        reasons = [event.reason for event in result.diagnostics.degraded]
        assert "retries-exhausted" in reasons


class TestValidation:
    def test_rejects_fewer_than_two_shards(self):
        with pytest.raises(SupervisionError):
            ShardCoordinator(_spec(1))

    def test_rejects_chaos_shard_out_of_range(self):
        with pytest.raises(SupervisionError):
            ShardCoordinator(
                _spec(2), chaos=ShardChaos(shard=2, kill_epoch=1)
            )

    def test_rejects_non_positive_barrier_timeout(self):
        with pytest.raises(SupervisionError):
            ShardCoordinator(_spec(2), barrier_timeout=0.0)
