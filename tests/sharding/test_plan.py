"""Tests for the deterministic shard partition plan."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus
from repro.plasticity import PairSTDP
from repro.sharding import ShardPlan

DT = 1e-4


def _network(n_exc=30, n_inh=8):
    rng = np.random.default_rng(7)
    network = Network("plan-net")
    exc = network.add_population("exc", n_exc, "DLIF")
    network.add_population("inh", n_inh, "DLIF")
    network.connect(
        "exc", "exc", probability=0.3, weight=0.05, syn_type=0, rng=rng,
        delay_steps=3, delay_jitter=4,
    )
    network.connect(
        "inh", "exc", probability=0.3, weight=0.15, syn_type=1, rng=rng,
        delay_steps=4,
    )
    network.connect(
        "exc", "inh", probability=0.3, weight=0.06, syn_type=0, rng=rng,
        delay_steps=5,
    )
    network.add_stimulus(
        PoissonStimulus(exc, rate_hz=900.0, weight=0.09, dt=DT, n_sources=8)
    )
    return network


class TestPartition:
    def test_slices_partition_every_population(self):
        plan = ShardPlan(_network(), 4)
        for name, n in plan.population_sizes.items():
            bounds = plan.bounds[name]
            assert bounds[0][0] == 0
            assert bounds[-1][1] == n
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo  # contiguous, no gaps, no overlap

    def test_balanced_within_one(self):
        plan = ShardPlan(_network(31, 7), 4)
        for bounds in plan.bounds.values():
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_neurons_yields_empty_slices(self):
        plan = ShardPlan(_network(30, 2), 5)
        sizes = [hi - lo for lo, hi in plan.bounds["inh"]]
        assert sizes.count(0) == 3
        assert sum(sizes) == 2
        # owned() drops the empty slices but keeps population order.
        for shard in range(5):
            owned = plan.owned(shard)
            assert all(hi > lo for lo, hi in owned.values())

    def test_window_is_global_min_delay(self):
        plan = ShardPlan(_network(), 2)
        assert plan.window == 3

    def test_epochs_and_window_lengths_cover_the_run(self):
        plan = ShardPlan(_network(), 2)
        n_steps = 10  # window 3 -> epochs of 3,3,3,1
        epochs = plan.epochs_for(n_steps)
        assert epochs == 4
        lengths = [plan.window_length(e, n_steps) for e in range(epochs)]
        assert lengths == [3, 3, 3, 1]
        assert plan.window_length(epochs, n_steps) == 0


class TestValidation:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(_network(), 0)
        with pytest.raises(ConfigurationError):
            ShardPlan(_network(), True)

    def test_rejects_plasticity(self):
        network = _network()
        network.add_plasticity(network.projections[0], PairSTDP())
        with pytest.raises(ConfigurationError, match="plasticity"):
            ShardPlan(network, 2)

    def test_shard_out_of_range(self):
        plan = ShardPlan(_network(), 3)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.slice_of("exc", 3)

    def test_unknown_population_names_known_ones(self):
        plan = ShardPlan(_network(), 2)
        with pytest.raises(ConfigurationError, match="exc"):
            plan.slice_of("nope", 0)


class TestPayload:
    def test_round_trip(self):
        network = _network()
        plan = ShardPlan(network, 3)
        rebuilt = ShardPlan.from_payload(plan.to_payload(), network)
        assert rebuilt.bounds == plan.bounds
        assert rebuilt.window == plan.window
        assert rebuilt.signature() == plan.signature()

    def test_payload_for_wrong_network_rejected(self):
        plan = ShardPlan(_network(), 3)
        other = _network(n_exc=31)
        with pytest.raises(ConfigurationError, match="does not describe"):
            ShardPlan.from_payload(plan.to_payload(), other)

    def test_unknown_version_rejected(self):
        network = _network()
        payload = ShardPlan(network, 2).to_payload()
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            ShardPlan.from_payload(payload, network)
