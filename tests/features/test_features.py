"""Tests for the feature taxonomy, combination rules, and catalog."""

import pytest

from repro.errors import FeatureConflictError, UnknownModelError
from repro.features import (
    CATEGORY_OF,
    Feature,
    FeatureCategory,
    FeatureSet,
    MODEL_FEATURES,
    combination_matrix,
    feature_table,
    features_for_model,
    model_names,
    models_using,
)


class TestTaxonomy:
    def test_exactly_twelve_features(self):
        assert len(Feature) == 12

    def test_exactly_five_categories(self):
        assert len(FeatureCategory) == 5

    def test_every_feature_has_a_category(self):
        assert set(CATEGORY_OF) == set(Feature)

    def test_category_sizes_match_table2(self):
        by_category = {}
        for feature, category in CATEGORY_OF.items():
            by_category.setdefault(category, []).append(feature)
        assert len(by_category[FeatureCategory.MEMBRANE_DECAY]) == 2
        assert len(by_category[FeatureCategory.INPUT_SPIKE_ACCUMULATION]) == 4
        assert len(by_category[FeatureCategory.SPIKE_INITIATION]) == 2
        assert len(by_category[FeatureCategory.SPIKE_TRIGGERED_CURRENT]) == 2
        assert len(by_category[FeatureCategory.REFRACTORY]) == 2

    def test_feature_table_has_twelve_rows(self):
        assert len(feature_table()) == 12


class TestFeatureSetValidation:
    def test_requires_a_membrane_decay(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.CUB])

    def test_exd_and_lid_conflict(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.LID])

    def test_qdi_and_exi_conflict(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.QDI, Feature.EXI])

    def test_cub_and_cobe_conflict(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.CUB, Feature.COBE])

    def test_cobe_and_coba_conflict(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.COBE, Feature.COBA])

    def test_rev_requires_conductance(self):
        # "cannot be used w/ CUB" (Equation 4)
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.CUB, Feature.REV])
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.REV])

    def test_sbt_requires_adt(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet([Feature.EXD, Feature.CUB, Feature.SBT])

    def test_valid_minimal_lif(self):
        fs = FeatureSet([Feature.EXD, Feature.CUB])
        assert Feature.EXD in fs
        assert len(fs) == 2

    def test_accepts_string_names(self):
        fs = FeatureSet(["exd", "cub", "ar"])
        assert Feature.AR in fs

    def test_unknown_string_raises(self):
        with pytest.raises(FeatureConflictError):
            FeatureSet(["EXD", "BOGUS"])


class TestFeatureSetQueries:
    def test_iteration_is_canonical_order(self):
        fs = FeatureSet([Feature.AR, Feature.CUB, Feature.EXD])
        assert list(fs) == [Feature.EXD, Feature.CUB, Feature.AR]

    def test_membrane_decay_property(self):
        assert FeatureSet([Feature.LID, Feature.CUB]).membrane_decay is Feature.LID

    def test_accumulation_kernel_defaults_to_cub(self):
        assert FeatureSet([Feature.EXD]).accumulation_kernel is Feature.CUB

    def test_uses_conductance(self):
        assert FeatureSet([Feature.EXD, Feature.COBE]).uses_conductance
        assert not FeatureSet([Feature.EXD, Feature.CUB]).uses_conductance

    def test_spike_initiation_none_by_default(self):
        assert FeatureSet([Feature.EXD, Feature.CUB]).spike_initiation is None

    def test_spike_initiation_qdi(self):
        fs = FeatureSet([Feature.EXD, Feature.COBE, Feature.QDI])
        assert fs.spike_initiation is Feature.QDI

    def test_with_features_and_without(self):
        fs = FeatureSet([Feature.EXD, Feature.CUB])
        extended = fs.with_features(Feature.AR)
        assert Feature.AR in extended
        assert Feature.AR not in fs  # immutability
        assert extended.without(Feature.AR) == fs

    def test_equality_and_hash(self):
        a = FeatureSet([Feature.EXD, Feature.CUB])
        b = FeatureSet([Feature.CUB, Feature.EXD])
        assert a == b
        assert hash(a) == hash(b)

    def test_state_variables_lif(self):
        assert FeatureSet([Feature.EXD, Feature.CUB]).state_variables() == ("v",)

    def test_state_variables_adex(self):
        names = MODEL_FEATURES["AdEx"].state_variables(2)
        assert names == ("v", "g0", "g1", "w", "cnt")

    def test_state_variables_coba(self):
        names = MODEL_FEATURES["AdEx_COBA"].state_variables(2)
        assert "y0" in names and "y1" in names

    def test_state_variables_rr(self):
        names = MODEL_FEATURES["IF_cond_exp_gsfa_grr"].state_variables(2)
        assert "r" in names and "w" in names


class TestCatalog:
    def test_eleven_table3_models_plus_lif(self):
        assert len(MODEL_FEATURES) == 12
        assert "LIF" in MODEL_FEATURES

    def test_all_catalog_entries_are_valid_feature_sets(self):
        for name, fs in MODEL_FEATURES.items():
            assert isinstance(fs, FeatureSet), name

    def test_llif_row(self):
        fs = features_for_model("LLIF")
        assert fs == FeatureSet([Feature.LID, Feature.CUB, Feature.AR])

    def test_adex_uses_seven_features(self):
        assert len(features_for_model("AdEx")) == 7

    def test_every_table3_model_has_ar_except_lif(self):
        for name, fs in MODEL_FEATURES.items():
            if name == "LIF":
                assert Feature.AR not in fs
            else:
                assert Feature.AR in fs, name

    def test_only_llif_uses_lid(self):
        assert models_using(Feature.LID) == ["LLIF"]

    def test_only_gsfa_grr_uses_rr(self):
        assert models_using(Feature.RR) == ["IF_cond_exp_gsfa_grr"]

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            features_for_model("NoSuchModel")

    def test_matrix_has_eleven_rows_and_twelve_columns(self):
        matrix = combination_matrix()
        assert len(matrix) == 11  # LIF is the baseline, not a row
        for _, enabled in matrix:
            assert len(enabled) == 12

    def test_every_feature_used_by_some_model(self):
        for feature in Feature:
            assert models_using(feature), feature

    def test_model_names_contains_table3_order(self):
        names = model_names()
        assert names[0] == "LLIF"
        assert "AdEx" in names
