"""Recorder sampling intervals and SimulationResult edge cases."""

import numpy as np
import pytest

from repro.engine.hooks import PhaseStats
from repro.network import (
    PHASES,
    SimulationResult,
    Simulator,
    SpikeRecorder,
    StateRecorder,
)

DT = 1e-4


def offer(recorder, n, size=4):
    for step in range(n):
        recorder.sample({"v": np.full(size, float(step)), "u": np.zeros(size)})


class TestStateRecorderIntervals:
    def test_default_interval_keeps_every_sample(self):
        recorder = StateRecorder("exc", ["v"], neurons=[0, 2])
        offer(recorder, 10)
        assert recorder.samples_offered == 10
        assert recorder.samples_kept() == 10
        assert recorder.trace("v").shape == (10, 2)

    def test_every_three_keeps_first_of_each_window(self):
        recorder = StateRecorder("exc", ["v"], neurons=[0], every=3)
        offer(recorder, 10)
        # Offered samples 0..9; kept at 0, 3, 6, 9.
        assert recorder.samples_offered == 10
        assert recorder.samples_kept() == 4
        assert recorder.trace("v")[:, 0].tolist() == [0.0, 3.0, 6.0, 9.0]

    def test_interval_larger_than_run_keeps_first_sample_only(self):
        recorder = StateRecorder("exc", ["v"], every=100)
        offer(recorder, 7)
        assert recorder.samples_kept() == 1
        assert recorder.trace("v")[0, 0] == 0.0

    def test_interval_applies_across_multiple_variables(self):
        recorder = StateRecorder("exc", ["v", "u"], every=2)
        offer(recorder, 5)
        assert recorder.trace("v").shape == recorder.trace("u").shape == (3, 1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            StateRecorder("exc", ["v"], every=0)
        with pytest.raises(ValueError):
            StateRecorder("exc", ["v"], every=-2)

    def test_empty_recorder_reports_zero_kept(self):
        recorder = StateRecorder("exc", ["v"])
        assert recorder.samples_kept() == 0
        assert recorder.trace("v").shape == (0, 1)

    def test_simulator_honours_sampling_interval(self, small_network):
        coarse = StateRecorder("exc", ["v"], neurons=[0], every=4)
        fine = StateRecorder("exc", ["v"], neurons=[0])
        Simulator(small_network, dt=DT, seed=3).run(
            20, state_recorders=[coarse, fine]
        )
        assert fine.samples_kept() == 20
        assert coarse.samples_kept() == 5
        # The coarse trace is the fine trace downsampled.
        np.testing.assert_allclose(
            coarse.trace("v")[:, 0], fine.trace("v")[::4, 0]
        )


class TestSpikeRecorder:
    def test_record_mask_and_indices_agree(self):
        by_mask, by_idx = SpikeRecorder(), SpikeRecorder()
        mask = np.array([True, False, True, False])
        by_mask.record("exc", 3, mask)
        by_idx.record_indices("exc", 3, np.nonzero(mask)[0])
        assert by_mask.result("exc").spike_pairs() == {(3, 0), (3, 2)}
        assert by_mask.result("exc").spike_pairs() == by_idx.result(
            "exc"
        ).spike_pairs()

    def test_unseen_population_yields_empty_record(self):
        record = SpikeRecorder().result("ghost")
        assert record.n_spikes == 0
        assert record.spikes_of(0).size == 0
        assert record.rate_hz(10, 100, DT) == 0.0

    def test_snapshot_load_round_trip(self):
        recorder = SpikeRecorder()
        recorder.record_indices("exc", 1, np.array([0, 3]))
        recorder.record_indices("inh", 2, np.array([1]))
        restored = SpikeRecorder()
        restored.load(recorder.snapshot())
        assert restored.total_spikes() == 3
        assert restored.populations() == ["exc", "inh"]
        restored.record_indices("exc", 5, np.array([2]))
        assert restored.result("exc").spike_pairs() == {(1, 0), (1, 3), (5, 2)}


def make_result(phases):
    return SimulationResult(
        network_name="t",
        backend_name="b",
        n_steps=0,
        dt=DT,
        spikes=SpikeRecorder(),
        phases=phases,
    )


class TestPhaseFractions:
    def test_zero_duration_run_reports_all_zero_fractions(self):
        result = make_result(
            {phase: PhaseStats(seconds=0.0, operations=0) for phase in PHASES}
        )
        fractions = result.phase_fractions()
        assert set(fractions) == set(PHASES)
        assert all(value == 0.0 for value in fractions.values())

    def test_missing_phase_still_present_with_zero_fraction(self):
        result = make_result({"neuron": PhaseStats(seconds=2.0, operations=10)})
        fractions = result.phase_fractions()
        assert set(fractions) == set(PHASES)
        assert fractions["neuron"] == 1.0
        assert fractions["stimulus"] == 0.0
        assert fractions["synapse"] == 0.0

    def test_empty_phases_dict_reports_all_zero(self):
        fractions = make_result({}).phase_fractions()
        assert set(fractions) == set(PHASES)
        assert sum(fractions.values()) == 0.0

    def test_real_run_fractions_sum_to_one(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(10)
        fractions = result.phase_fractions()
        assert set(fractions) == set(PHASES)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_stats_dict_is_json_shaped(self, small_network):
        import json

        result = Simulator(small_network, dt=DT, seed=3).run(10)
        doc = result.to_stats_dict()
        assert doc["schema"] == "repro-run-stats/2"
        assert doc["n_steps"] == 10
        assert set(doc["phase_fractions"]) == set(PHASES)
        assert doc["counters"]["total_spikes"] == result.total_spikes()
        assert doc["hook_errors"] == []
        json.dumps(doc)
