"""Tests: malformed specs fail with field-level ReproError messages.

A typo'd or structurally wrong spec must never surface as a raw
``KeyError``/``TypeError`` from deep inside a builder — every failure
here asserts both the exception type (:class:`ConfigurationError`, a
:class:`ReproError`) and that the message names the offending field.
"""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.frontend import build_network, build_simulation, load_spec
from repro.frontend.spec import example_spec
from repro.workloads import WorkloadSpec, build_workload, validate_scale


def _spec(**overrides):
    spec = example_spec()
    spec.update(overrides)
    return spec


class TestTopLevel:
    def test_non_dict_spec(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            build_network(["not", "a", "spec"])

    def test_non_numeric_seed(self):
        with pytest.raises(ConfigurationError, match="'seed'"):
            build_network(_spec(seed="tomorrow"))

    def test_non_numeric_dt(self):
        with pytest.raises(ConfigurationError, match="'dt'"):
            build_network(_spec(dt=[1e-4]))

    def test_negative_dt(self):
        with pytest.raises(ConfigurationError, match="'dt'"):
            build_network(_spec(dt=-1e-4))

    def test_populations_must_be_a_list(self):
        with pytest.raises(ConfigurationError, match="'populations'"):
            build_network(_spec(populations={"exc": 10}))

    def test_population_entries_must_be_objects(self):
        with pytest.raises(ConfigurationError, match=r"populations\[0\]"):
            build_network(_spec(populations=["exc"]))

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(tmp_path / "nope.json")

    def test_build_simulation_validates_seed(self):
        with pytest.raises(ConfigurationError, match="'seed'"):
            build_simulation(_spec(seed=None))


class TestPopulations:
    def test_non_integer_n(self):
        spec = _spec()
        spec["populations"][0]["n"] = "eighty"
        with pytest.raises(ConfigurationError, match="'n'"):
            build_network(spec)

    def test_zero_n(self):
        spec = _spec()
        spec["populations"][0]["n"] = 0
        with pytest.raises(ConfigurationError, match="'n'"):
            build_network(spec)

    def test_missing_required_key(self):
        spec = _spec()
        del spec["populations"][0]["model"]
        with pytest.raises(ConfigurationError, match="'model'"):
            build_network(spec)

    def test_parameters_must_be_an_object(self):
        spec = _spec()
        spec["populations"][0]["parameters"] = [0.02]
        with pytest.raises(ConfigurationError, match="'parameters'"):
            build_network(spec)

    def test_unknown_parameter_name(self):
        spec = _spec()
        spec["populations"][0]["parameters"] = {"not_a_param": 1.0}
        with pytest.raises(ConfigurationError, match="model parameters"):
            build_network(spec)

    def test_non_list_conductance_tuple(self):
        spec = _spec()
        spec["populations"][0]["parameters"] = {"tau_g": 0.005}
        with pytest.raises(ConfigurationError, match="'tau_g'"):
            build_network(spec)


class TestProjections:
    def test_non_numeric_probability(self):
        spec = _spec()
        spec["projections"][0]["probability"] = "dense"
        with pytest.raises(ConfigurationError, match="'probability'"):
            build_network(spec)

    def test_non_integer_delay(self):
        spec = _spec()
        spec["projections"][0]["delay_steps"] = 1.5
        # int coercion truncates numerics; only non-numerics fail
        build_network(spec)
        spec["projections"][0]["delay_steps"] = "soon"
        with pytest.raises(ConfigurationError, match="'delay_steps'"):
            build_network(spec)

    def test_plasticity_must_be_an_object(self):
        spec = _spec()
        spec["projections"][0]["plasticity"] = "pair_stdp"
        with pytest.raises(ConfigurationError, match="'plasticity'"):
            build_network(spec)

    def test_unknown_plasticity_parameter(self):
        spec = _spec()
        spec["projections"][0]["plasticity"] = {
            "rule": "pair_stdp",
            "a_minus_plus": 0.01,
        }
        with pytest.raises(ConfigurationError, match="plasticity parameters"):
            build_network(spec)


class TestStimuli:
    def test_missing_required_field(self):
        spec = _spec()
        del spec["stimuli"][0]["rate_hz"]
        with pytest.raises(ConfigurationError, match="'rate_hz'"):
            build_network(spec)

    def test_pattern_events_must_be_a_mapping(self):
        spec = _spec()
        spec["stimuli"] = [
            {"kind": "pattern", "target": "exc", "weight": 1.0,
             "events": [[0, 1]]}
        ]
        with pytest.raises(ConfigurationError, match="'events'"):
            build_network(spec)

    def test_pattern_event_steps_must_be_integers(self):
        spec = _spec()
        spec["stimuli"] = [
            {"kind": "pattern", "target": "exc", "weight": 1.0,
             "events": {"soon": [0, 1]}}
        ]
        with pytest.raises(ConfigurationError, match="event step"):
            build_network(spec)

    def test_pattern_event_indices_must_be_lists(self):
        spec = _spec()
        spec["stimuli"] = [
            {"kind": "pattern", "target": "exc", "weight": 1.0,
             "events": {"0": "all"}}
        ]
        with pytest.raises(ConfigurationError, match="indices"):
            build_network(spec)


class TestWorkloadSpecs:
    def test_valid_spec_builds(self):
        spec = WorkloadSpec(
            name="t", paper_neurons=100, paper_synapses=1000,
            model_name="LIF", solver="Euler", framework="NEST",
        )
        assert spec.scaled_neurons(1.0) == 100

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"name": ""}, "name"),
            ({"paper_neurons": "many"}, "paper_neurons"),
            ({"paper_neurons": -5}, "positive"),
            ({"n_synapse_types": 0}, "n_synapse_types"),
            ({"solver": "Leapfrog"}, "solver"),
            ({"framework": "Brian2"}, "framework"),
        ],
    )
    def test_field_level_errors(self, overrides, field):
        kwargs = dict(
            name="t", paper_neurons=100, paper_synapses=1000,
            model_name="LIF", solver="Euler", framework="NEST",
        )
        kwargs.update(overrides)
        with pytest.raises(ConfigurationError, match=field):
            WorkloadSpec(**kwargs)

    @pytest.mark.parametrize("bad", ["0.1", None, -0.5, 0, float("nan")])
    def test_validate_scale_rejects_non_positive_non_numbers(self, bad):
        with pytest.raises(ConfigurationError, match="scale"):
            validate_scale(bad)

    def test_build_workload_validates_scale(self):
        with pytest.raises(ReproError, match="scale"):
            build_workload("Brunel", scale="big")
