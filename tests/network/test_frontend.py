"""Tests for the declarative front-end (Section VII-B)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.frontend import (
    build_backend,
    build_network,
    build_simulation,
    example_spec,
    load_spec,
)


class TestBuildNetwork:
    def test_example_spec_builds_and_runs(self):
        simulator, network = build_simulation(example_spec())
        assert network.n_neurons == 100
        result = simulator.run(300)
        assert result.total_spikes() > 0

    def test_population_parameters_applied(self):
        spec = {
            "populations": [
                {"name": "p", "n": 5, "model": "LIF",
                 "parameters": {"tau": 0.05}},
            ],
        }
        network = build_network(spec)
        assert network.populations["p"].model.parameters.tau == 0.05

    def test_tuple_parameters_coerced(self):
        spec = {
            "populations": [
                {"name": "p", "n": 5, "model": "DLIF",
                 "parameters": {"tau_g": [0.005, 0.01], "v_g": [4.0, -1.0]}},
            ],
        }
        network = build_network(spec)
        assert network.populations["p"].model.parameters.v_g == (4.0, -1.0)

    def test_pattern_stimulus(self):
        spec = {
            "populations": [{"name": "p", "n": 4, "model": "LIF"}],
            "stimuli": [
                {"kind": "pattern", "target": "p", "weight": 1.0,
                 "events": {"0": [1, 2]}, "period": 10},
            ],
        }
        network = build_network(spec)
        assert len(network.stimuli) == 1

    def test_plastic_projection(self):
        spec = {
            "populations": [
                {"name": "a", "n": 4, "model": "LIF"},
                {"name": "b", "n": 2, "model": "LIF"},
            ],
            "projections": [
                {"pre": "a", "post": "b", "probability": 1.0,
                 "weight": 1.0,
                 "plasticity": {"rule": "pair_stdp", "a_plus": 0.05}},
            ],
        }
        network = build_network(spec)
        assert len(network.plasticity_rules) == 1
        assert network.plasticity_rules[0].a_plus == 0.05

    def test_unknown_top_level_key_rejected(self):
        spec = example_spec()
        spec["populatoins"] = []  # typo
        with pytest.raises(ConfigurationError, match="populatoins"):
            build_network(spec)

    def test_unknown_population_key_rejected(self):
        spec = {
            "populations": [
                {"name": "p", "n": 4, "model": "LIF", "size": 4},
            ],
        }
        with pytest.raises(ConfigurationError, match="size"):
            build_network(spec)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            build_network({"populations": [{"name": "p", "n": 4}]})

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            build_network({})

    def test_unknown_stimulus_kind_rejected(self):
        spec = {
            "populations": [{"name": "p", "n": 4, "model": "LIF"}],
            "stimuli": [{"kind": "laser", "target": "p"}],
        }
        with pytest.raises(ConfigurationError, match="laser"):
            build_network(spec)

    def test_stimulus_unknown_target_rejected(self):
        spec = {
            "populations": [{"name": "p", "n": 4, "model": "LIF"}],
            "stimuli": [
                {"kind": "poisson", "target": "ghost", "rate_hz": 1,
                 "weight": 1},
            ],
        }
        with pytest.raises(ConfigurationError, match="unknown target"):
            build_network(spec)

    def test_unknown_plasticity_rule_rejected(self):
        spec = {
            "populations": [{"name": "p", "n": 4, "model": "LIF"}],
            "projections": [
                {"pre": "p", "post": "p", "probability": 1.0,
                 "plasticity": {"rule": "triplet_stdp"}},
            ],
        }
        with pytest.raises(ConfigurationError, match="triplet_stdp"):
            build_network(spec)


class TestBackends:
    @pytest.mark.parametrize(
        "name, type_name",
        [
            ("reference", "ReferenceBackend"),
            ("flexon", "FlexonBackend"),
            ("folded", "FoldedFlexonBackend"),
            ("hybrid", "HybridBackend"),
        ],
    )
    def test_backend_selection(self, name, type_name):
        backend = build_backend({"backend": name})
        assert type(backend).__name__ == type_name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            build_backend({"backend": "fpga"})

    def test_default_is_reference(self):
        assert type(build_backend({})).__name__ == "ReferenceBackend"


class TestLoadSpec:
    def test_round_trip_via_json(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(example_spec()))
        spec = load_spec(path)
        simulator, network = build_simulation(spec)
        assert network.name == "frontend-demo"

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_spec(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_spec(path)
