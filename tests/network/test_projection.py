"""Tests for projections and the connect() builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import LIF
from repro.network import Population, Projection, connect


def _pops(n_pre=10, n_post=20):
    return Population("pre", n_pre, LIF()), Population("post", n_post, LIF())


class TestProjection:
    def test_csr_layout_sorted_by_pre(self):
        pre, post = _pops()
        proj = Projection(
            pre,
            post,
            pre_idx=np.array([3, 1, 1, 0]),
            post_idx=np.array([5, 6, 7, 8]),
            weights=np.array([0.1, 0.2, 0.3, 0.4]),
            delays=np.array([1, 2, 3, 4]),
            syn_type=0,
        )
        assert proj.n_synapses == 4
        # pre 0 -> ptr [0,1); pre 1 -> [1,3); pre 3 -> [3,4)
        assert list(proj.pre_ptr[:5]) == [0, 1, 3, 3, 4]
        assert proj.post_idx[0] == 8  # pre 0's synapse

    def test_synapses_of_gathers_fired_rows(self):
        pre, post = _pops()
        proj = Projection(
            pre,
            post,
            pre_idx=np.array([0, 0, 2]),
            post_idx=np.array([1, 2, 3]),
            weights=np.array([0.5, 0.6, 0.7]),
            delays=np.array([1, 2, 3]),
            syn_type=0,
        )
        post_idx, weights, delays = proj.synapses_of(np.array([0, 2]))
        assert sorted(post_idx.tolist()) == [1, 2, 3]
        assert sorted(weights.tolist()) == [0.5, 0.6, 0.7]
        assert sorted(delays.tolist()) == [1, 2, 3]

    def test_synapses_of_empty_fired(self):
        pre, post = _pops()
        proj = connect(pre, post, probability=0.5, rng=np.random.default_rng(0))
        post_idx, weights, delays = proj.synapses_of(np.array([], dtype=np.int64))
        assert post_idx.size == 0

    def test_synapses_of_neuron_without_outgoing(self):
        pre, post = _pops()
        proj = Projection(
            pre,
            post,
            pre_idx=np.array([0]),
            post_idx=np.array([1]),
            weights=np.array([0.5]),
            delays=np.array([1]),
            syn_type=0,
        )
        post_idx, _, _ = proj.synapses_of(np.array([5]))
        assert post_idx.size == 0

    def test_max_delay(self):
        pre, post = _pops()
        proj = Projection(
            pre, post,
            pre_idx=np.array([0, 1]),
            post_idx=np.array([0, 1]),
            weights=np.array([1.0, 1.0]),
            delays=np.array([3, 9]),
            syn_type=0,
        )
        assert proj.max_delay == 9

    def test_rejects_mismatched_arrays(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError):
            Projection(
                pre, post,
                pre_idx=np.array([0]),
                post_idx=np.array([0, 1]),
                weights=np.array([1.0]),
                delays=np.array([1]),
                syn_type=0,
            )

    def test_rejects_out_of_range_indices(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError):
            Projection(
                pre, post,
                pre_idx=np.array([99]),
                post_idx=np.array([0]),
                weights=np.array([1.0]),
                delays=np.array([1]),
                syn_type=0,
            )

    def test_rejects_zero_delay(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError):
            Projection(
                pre, post,
                pre_idx=np.array([0]),
                post_idx=np.array([0]),
                weights=np.array([1.0]),
                delays=np.array([0]),
                syn_type=0,
            )

    def test_rejects_bad_synapse_type(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError):
            Projection(
                pre, post,
                pre_idx=np.array([0]),
                post_idx=np.array([0]),
                weights=np.array([1.0]),
                delays=np.array([1]),
                syn_type=5,
            )


class TestConnect:
    def test_all_to_all(self):
        pre, post = _pops(4, 5)
        proj = connect(pre, post, probability=1.0)
        assert proj.n_synapses == 20

    def test_self_connections_excluded_by_default(self):
        pop = Population("p", 6, LIF())
        proj = connect(pop, pop, probability=1.0)
        assert proj.n_synapses == 30
        assert not np.any(
            np.repeat(np.arange(6), np.diff(proj.pre_ptr)) == proj.post_idx
        )

    def test_probability_hits_expected_count(self):
        pre, post = _pops(100, 100)
        proj = connect(
            pre, post, probability=0.1, rng=np.random.default_rng(3)
        )
        assert 800 <= proj.n_synapses <= 1200

    def test_sparse_path_for_large_pairs(self):
        # Above the 4M-pair threshold the binomial sampler kicks in.
        pre = Population("pre", 2500, LIF())
        post = Population("post", 2500, LIF())
        proj = connect(
            pre, post, probability=0.001, rng=np.random.default_rng(4)
        )
        expected = 2500 * 2500 * 0.001
        assert 0.8 * expected <= proj.n_synapses <= 1.2 * expected

    def test_weight_jitter_keeps_sign(self):
        pre, post = _pops(50, 50)
        proj = connect(
            pre, post, probability=0.5, weight=-0.1, weight_std=0.2,
            rng=np.random.default_rng(5),
        )
        assert np.all(proj.weights <= 0.0)

    def test_delay_jitter_range(self):
        pre, post = _pops(20, 20)
        proj = connect(
            pre, post, probability=1.0, delay_steps=3, delay_jitter=4,
            rng=np.random.default_rng(6),
        )
        assert proj.delays.min() >= 3
        assert proj.delays.max() <= 7

    def test_rejects_bad_probability(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError):
            connect(pre, post, probability=1.5)

    def test_rejects_zero_delay_steps(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError, match="delay_steps"):
            connect(pre, post, probability=1.0, delay_steps=0)

    def test_rejects_negative_delay_jitter(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError, match="delay_jitter"):
            connect(pre, post, probability=1.0, delay_jitter=-1)

    def test_rejects_non_integer_delay_fields(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError, match="delay_steps"):
            connect(pre, post, probability=1.0, delay_steps=1.5)
        with pytest.raises(ConfigurationError, match="delay_jitter"):
            connect(pre, post, probability=1.0, delay_jitter=True)

    def test_delay_errors_name_the_endpoints(self):
        pre, post = _pops()
        with pytest.raises(ConfigurationError, match="'pre' -> 'post'"):
            connect(pre, post, probability=1.0, delay_steps=-3)

    def test_numpy_integer_delays_accepted(self):
        pre, post = _pops()
        proj = connect(
            pre, post, probability=1.0,
            delay_steps=np.int64(2), delay_jitter=np.int32(0),
        )
        assert proj.min_delay == 2
        assert proj.max_delay == 2
