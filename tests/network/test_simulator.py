"""Tests for the three-phase simulator and the reference backend."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network import (
    Network,
    PatternStimulus,
    PoissonStimulus,
    ReferenceBackend,
    Simulator,
    StateRecorder,
)

DT = 1e-4


class TestSimulator:
    def test_runs_and_reports_counters(self, small_network):
        sim = Simulator(small_network, dt=DT, seed=3)
        result = sim.run(200)
        assert result.n_steps == 200
        assert result.neuron_updates == 200 * small_network.n_neurons
        assert result.stimulus_events > 0
        assert set(result.phases) == {"stimulus", "neuron", "synapse"}

    def test_phase_fractions_sum_to_one(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(50)
        assert sum(result.phase_fractions().values()) == pytest.approx(1.0)

    def test_deterministic_given_seed(self, rng):
        def build():
            net = Network("d")
            pop = net.add_population("p", 20, "LIF")
            net.add_stimulus(
                PoissonStimulus(pop, 500.0, 30.0, dt=DT, n_sources=5)
            )
            return net

        res_a = Simulator(build(), dt=DT, seed=9).run(300)
        res_b = Simulator(build(), dt=DT, seed=9).run(300)
        assert (
            res_a.spikes.result("p").spike_pairs()
            == res_b.spikes.result("p").spike_pairs()
        )

    def test_different_seeds_differ(self):
        def build():
            net = Network("d")
            pop = net.add_population("p", 20, "LIF")
            net.add_stimulus(
                PoissonStimulus(pop, 500.0, 30.0, dt=DT, n_sources=5)
            )
            return net

        res_a = Simulator(build(), dt=DT, seed=1).run(300)
        res_b = Simulator(build(), dt=DT, seed=2).run(300)
        assert (
            res_a.spikes.result("p").spike_pairs()
            != res_b.spikes.result("p").spike_pairs()
        )

    def test_spike_propagates_after_exact_delay(self):
        # One source neuron wired to one target with delay 5: the
        # target's input arrives exactly 5 steps after the source fires.
        net = Network("delay")
        src = net.add_population("src", 1, "LIF")
        net.add_population("dst", 1, "LIF")
        net.connect("src", "dst", probability=1.0, weight=500.0,
                    delay_steps=5, allow_self=True)
        # Kick the source over threshold at step 2.
        net.add_stimulus(PatternStimulus(src, {2: [0]}, weight=500.0))
        backend = ReferenceBackend("Euler")
        sim = Simulator(net, backend, dt=DT, seed=0)
        result = sim.run(12)
        src_spikes = result.spikes.result("src").spikes_of(0)
        dst_spikes = result.spikes.result("dst").spikes_of(0)
        assert src_spikes.tolist() == [2]
        assert dst_spikes.tolist() == [7]  # 2 + delay 5

    def test_state_recorder_sampled_every_step(self, small_network):
        recorder = StateRecorder("exc", variables=("v",), neurons=[0])
        Simulator(small_network, dt=DT, seed=3).run(
            40, state_recorders=[recorder]
        )
        assert recorder.trace("v").shape == (40, 1)

    def test_zero_steps(self, small_network):
        result = Simulator(small_network, dt=DT, seed=0).run(0)
        assert result.total_spikes() == 0

    def test_negative_steps_raises(self, small_network):
        with pytest.raises(SimulationError):
            Simulator(small_network, dt=DT, seed=0).run(-1)

    def test_bad_dt_raises(self, small_network):
        with pytest.raises(SimulationError):
            Simulator(small_network, dt=0.0)

    def test_current_step_advances(self, small_network):
        sim = Simulator(small_network, dt=DT, seed=0)
        sim.run(10)
        sim.run(5)
        assert sim.current_step == 15

    def test_record_spikes_false_skips_recording(self, small_network):
        result = Simulator(small_network, dt=DT, seed=3).run(
            100, record_spikes=False
        )
        assert result.total_spikes() == 0
        assert result.neuron_updates > 0


class TestReferenceBackend:
    def test_requires_prepare(self):
        backend = ReferenceBackend()
        with pytest.raises(SimulationError):
            backend.advance("x", np.zeros((2, 1)), DT)

    def test_unknown_population(self, small_network):
        backend = ReferenceBackend()
        backend.prepare(small_network)
        with pytest.raises(SimulationError):
            backend.advance("ghost", np.zeros((2, 1)), DT)

    def test_state_of_returns_live_state(self, small_network):
        backend = ReferenceBackend()
        backend.prepare(small_network)
        state = backend.state_of("exc")
        assert state["v"].shape == (40,)

    def test_rkf45_backend_reports_evaluations(self, small_network):
        backend = ReferenceBackend("RKF45")
        sim = Simulator(small_network, backend, dt=DT, seed=3)
        result = sim.run(20)
        assert result.evaluations_per_step["exc"] >= 6.0

    def test_euler_backend_reports_one_evaluation(self, small_network):
        backend = ReferenceBackend("Euler")
        sim = Simulator(small_network, backend, dt=DT, seed=3)
        result = sim.run(20)
        assert result.evaluations_per_step["exc"] == 1.0
