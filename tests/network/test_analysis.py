"""Tests for the spike-train statistics module."""

import numpy as np
import pytest

from repro.analysis import (
    activity_trace,
    cv_isi,
    fano_factor,
    firing_rates,
    isi_distribution,
    population_rate_hz,
    synchrony_index,
)
from repro.errors import ConfigurationError
from repro.network.recorder import SpikeRecord

DT = 1e-4


def _record(pairs):
    steps = np.array([p[0] for p in pairs], dtype=np.int64)
    neurons = np.array([p[1] for p in pairs], dtype=np.int64)
    return SpikeRecord(steps, neurons)


class TestRates:
    def test_firing_rates_per_neuron(self):
        record = _record([(0, 0), (10, 0), (5, 1)])
        rates = firing_rates(record, n_neurons=3, n_steps=1000, dt=DT)
        assert rates.tolist() == [20.0, 10.0, 0.0]

    def test_population_rate(self):
        record = _record([(0, 0), (10, 0), (5, 1)])
        assert population_rate_hz(record, 3, 1000, DT) == pytest.approx(10.0)

    def test_empty_record(self):
        record = _record([])
        assert population_rate_hz(record, 4, 100, DT) == 0.0

    def test_bad_geometry_rejected(self):
        record = _record([])
        with pytest.raises(ConfigurationError):
            firing_rates(record, 0, 100, DT)
        with pytest.raises(ConfigurationError):
            firing_rates(record, 4, 0, DT)


class TestIsi:
    def test_isi_single_neuron(self):
        record = _record([(0, 0), (10, 0), (25, 0)])
        assert isi_distribution(record, neuron=0).tolist() == [10, 15]

    def test_isi_pooled_ignores_single_spike_neurons(self):
        record = _record([(0, 0), (10, 0), (5, 1)])
        assert isi_distribution(record).tolist() == [10]

    def test_cv_of_clockwork_firing_is_zero(self):
        record = _record([(step, 0) for step in range(0, 200, 10)])
        assert cv_isi(record) == pytest.approx(0.0)

    def test_cv_of_poisson_firing_near_one(self):
        rng = np.random.default_rng(0)
        steps = np.cumsum(rng.geometric(0.05, size=2000))
        record = _record([(int(s), 0) for s in steps])
        assert cv_isi(record) == pytest.approx(1.0, abs=0.15)

    def test_cv_undefined_for_too_few_spikes(self):
        assert np.isnan(cv_isi(_record([(0, 0)])))
        assert np.isnan(cv_isi(_record([])))


class TestTraces:
    def test_activity_trace_bins(self):
        record = _record([(0, 0), (5, 1), (10, 0), (19, 1)])
        trace = activity_trace(record, n_steps=20, bin_steps=10)
        assert trace.tolist() == [2.0, 2.0]

    def test_activity_trace_pads_to_full_length(self):
        record = _record([(0, 0)])
        assert activity_trace(record, n_steps=100, bin_steps=10).size == 10

    def test_fano_factor_poisson_near_one(self):
        rng = np.random.default_rng(1)
        pairs = [
            (int(step), 0)
            for step in np.nonzero(rng.random(100_000) < 0.02)[0]
        ]
        assert fano_factor(_record(pairs), 100_000, 100) == pytest.approx(
            1.0, abs=0.25
        )

    def test_fano_undefined_for_silence(self):
        assert np.isnan(fano_factor(_record([]), 1000))


class TestSynchrony:
    def _synchronous(self, n=20, period=50, steps=1000):
        pairs = []
        for t in range(0, steps, period):
            pairs.extend((t, unit) for unit in range(n))
        return _record(pairs)

    def _asynchronous(self, n=20, steps=1000, seed=2):
        rng = np.random.default_rng(seed)
        pairs = []
        for unit in range(n):
            fired = np.nonzero(rng.random(steps) < 0.02)[0]
            pairs.extend((int(t), unit) for t in fired)
        return _record(pairs)

    def test_lockstep_population_scores_high(self):
        chi = synchrony_index(self._synchronous(), 20, 1000)
        assert chi > 0.9

    def test_asynchronous_population_scores_low(self):
        chi = synchrony_index(self._asynchronous(), 20, 1000)
        assert chi < 0.3

    def test_synchrony_ordering(self):
        assert synchrony_index(
            self._synchronous(), 20, 1000
        ) > synchrony_index(self._asynchronous(), 20, 1000)

    def test_silent_population_undefined(self):
        assert np.isnan(synchrony_index(_record([]), 10, 100))


class TestWorkloadRegimes:
    """The Table I networks are in their intended dynamical states."""

    @pytest.fixture(scope="class")
    def brunel_record(self):
        from repro.network import ReferenceBackend, Simulator
        from repro.workloads import build_workload

        network = build_workload("Brunel", scale=0.05, seed=1)
        result = Simulator(
            network, ReferenceBackend("Euler"), dt=DT, seed=2
        ).run(3000)
        exc = result.spikes.result("exc")
        return exc, network.populations["exc"].n

    def test_brunel_fires_irregularly(self, brunel_record):
        record, _ = brunel_record
        # The inhibition-dominated regime is irregular: CV well above
        # the clockwork value.
        assert cv_isi(record) > 0.4

    def test_brunel_is_asynchronous(self, brunel_record):
        record, n = brunel_record
        assert synchrony_index(record, n, 3000) < 0.5
