"""Tests for pair-based STDP and its simulator integration."""

import math

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError, SimulationError
from repro.models import LIF
from repro.network import Network, PatternStimulus, Population, Projection, Simulator
from repro.plasticity import PairSTDP

DT = 1e-4


def _one_to_one(weight=0.5):
    pre = Population("pre", 3, LIF())
    post = Population("post", 3, LIF())
    projection = Projection(
        pre,
        post,
        pre_idx=np.array([0, 1, 2]),
        post_idx=np.array([0, 1, 2]),
        weights=np.full(3, weight),
        delays=np.array([1, 1, 1]),
        syn_type=0,
    )
    return projection


def _fire(*idx):
    return np.asarray(idx, dtype=np.int64)


class TestPairSTDPRule:
    def test_requires_attachment(self):
        rule = PairSTDP()
        with pytest.raises(SimulationError):
            rule.step(_fire(), _fire(), DT)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PairSTDP(tau_plus=0.0)
        with pytest.raises(ConfigurationError):
            PairSTDP(w_min=1.0, w_max=0.0)

    def test_pre_before_post_potentiates(self):
        projection = _one_to_one()
        rule = PairSTDP(a_plus=0.1, a_minus=0.1)
        rule.attach(projection)
        rule.step(_fire(0), _fire(), DT)  # pre spike
        before = projection.weights[0]
        rule.step(_fire(), _fire(0), DT)  # post spike one step later
        assert projection.weights[0] > before

    def test_post_before_pre_depresses(self):
        projection = _one_to_one()
        rule = PairSTDP(a_plus=0.1, a_minus=0.1)
        rule.attach(projection)
        rule.step(_fire(), _fire(0), DT)  # post spike
        before = projection.weights[0]
        rule.step(_fire(0), _fire(), DT)  # pre spike one step later
        assert projection.weights[0] < before

    def test_simultaneous_pair_is_neutral(self):
        projection = _one_to_one()
        rule = PairSTDP(a_plus=0.1, a_minus=0.1)
        rule.attach(projection)
        before = projection.weights.copy()
        rule.step(_fire(0), _fire(0), DT)
        np.testing.assert_array_equal(projection.weights, before)

    def test_update_magnitude_decays_with_time_difference(self):
        def potentiation_after(gap_steps):
            projection = _one_to_one()
            rule = PairSTDP(a_plus=0.1, tau_plus=20e-3)
            rule.attach(projection)
            rule.step(_fire(0), _fire(), DT)
            for _ in range(gap_steps - 1):
                rule.step(_fire(), _fire(), DT)
            before = projection.weights[0]
            rule.step(_fire(), _fire(0), DT)
            return projection.weights[0] - before

        short = potentiation_after(1)
        long = potentiation_after(100)
        assert short > long > 0.0
        # The decay follows exp(-gap / tau): 100 steps = 10 ms = tau/2.
        assert long / short == pytest.approx(math.exp(-99 * DT / 20e-3), rel=1e-6)

    def test_only_touched_synapses_change(self):
        projection = _one_to_one()
        rule = PairSTDP(a_plus=0.1, a_minus=0.1)
        rule.attach(projection)
        rule.step(_fire(0), _fire(), DT)
        before = projection.weights.copy()
        rule.step(_fire(), _fire(0), DT)
        assert projection.weights[0] != before[0]
        np.testing.assert_array_equal(projection.weights[1:], before[1:])

    def test_weights_clip_to_bounds(self):
        projection = _one_to_one(weight=0.99)
        rule = PairSTDP(a_plus=10.0, a_minus=10.0, w_min=0.0, w_max=1.0)
        rule.attach(projection)
        for _ in range(5):
            rule.step(_fire(0), _fire(), DT)
            rule.step(_fire(), _fire(0), DT)
        assert 0.0 <= projection.weights[0] <= 1.0

    def test_traces_decay_exponentially(self):
        projection = _one_to_one()
        rule = PairSTDP(tau_plus=20e-3)
        rule.attach(projection)
        rule.step(_fire(0), _fire(), DT)
        first = rule.pre_trace[0]
        for _ in range(10):
            rule.step(_fire(), _fire(), DT)
        assert rule.pre_trace[0] == pytest.approx(
            first * math.exp(-10 * DT / 20e-3)
        )

    def test_cannot_attach_to_two_projections(self):
        rule = PairSTDP()
        rule.attach(_one_to_one())
        with pytest.raises(ConfigurationError):
            rule.attach(_one_to_one())

    def test_mean_weight_monitor(self):
        projection = _one_to_one(weight=0.5)
        rule = PairSTDP()
        rule.attach(projection)
        assert rule.mean_weight() == pytest.approx(0.5)

    def test_rejects_changing_dt(self):
        rule = PairSTDP()
        rule.attach(_one_to_one())
        rule.step(_fire(0), _fire(), DT)
        with pytest.raises(SimulationError):
            rule.step(_fire(), _fire(0), DT * 2)

    def test_deferred_counters_scale_with_silence(self):
        rule = PairSTDP()
        rule.attach(_one_to_one())
        for _ in range(10):
            rule.step(_fire(), _fire(), DT)
        # 3 pre + 3 post traces, decayed by the dense schedule on
        # every one of 10 silent steps, all deferred by the lazy one.
        assert rule.deferred_updates == 60
        assert rule.applied_updates == 0
        assert rule.trace_refreshes == 0
        assert rule.steps_seen == 10

    def test_dense_mode_defers_nothing(self):
        rule = PairSTDP(deferred=False)
        rule.attach(_one_to_one())
        for _ in range(10):
            rule.step(_fire(), _fire(), DT)
        assert rule.deferred_updates == 0
        assert rule.trace_refreshes == 60

    def test_restore_rejects_pre_lazy_payload(self):
        rule = PairSTDP()
        rule.attach(_one_to_one())
        legacy = {
            "x_pre": np.zeros(3),
            "y_post": np.zeros(3),
            "weights": np.full(3, 0.5),
        }
        with pytest.raises(CheckpointError, match="lazy-trace"):
            rule.restore(legacy)


class TestProjectionIndexViews:
    def test_pre_of_synapses(self):
        projection = _one_to_one()
        assert projection.pre_of_synapses().tolist() == [0, 1, 2]

    def test_synapse_indices_into(self):
        pre = Population("pre", 2, LIF())
        post = Population("post", 2, LIF())
        projection = Projection(
            pre, post,
            pre_idx=np.array([0, 0, 1]),
            post_idx=np.array([0, 1, 1]),
            weights=np.ones(3),
            delays=np.ones(3, dtype=np.int64),
            syn_type=0,
        )
        into_1 = projection.synapse_indices_into(np.array([1]))
        assert sorted(projection.post_idx[into_1].tolist()) == [1, 1]
        pres = projection.pre_of_synapses()[into_1]
        assert sorted(pres.tolist()) == [0, 1]

    def test_empty_queries(self):
        projection = _one_to_one()
        assert projection.synapse_indices_of(_fire()).size == 0
        assert projection.synapse_indices_into(_fire()).size == 0


class TestSimulatorIntegration:
    def _learning_network(self, deferred=True):
        net = Network("stdp")
        inputs = net.add_population("inputs", 4, "LIF")
        net.add_population("output", 1, "LIF")
        # Weak enough that input arrivals alone never fire the
        # output: only the forced "teacher" spike at step 3 does.
        projection = net.connect(
            "inputs", "output", probability=1.0, weight=5.0, delay_steps=1
        )
        # Channels 0,1 fire 2 steps before the output is forced to
        # fire; channels 2,3 fire right after it.
        net.add_stimulus(
            PatternStimulus(inputs, {0: [0, 1], 5: [2, 3]}, weight=200.0,
                            period=40)
        )
        net.add_stimulus(
            PatternStimulus(
                net.populations["output"], {3: [0]}, weight=200.0, period=40
            )
        )
        rule = PairSTDP(
            a_plus=0.5, a_minus=0.5, w_min=0.0, w_max=20.0,
            deferred=deferred,
        )
        net.add_plasticity(projection, rule)
        return net, projection, rule

    def test_causal_channels_potentiate_anticausal_depress(self):
        net, projection, rule = self._learning_network()
        Simulator(net, dt=DT, seed=0).run(400)
        pre_of = projection.pre_of_synapses()
        causal = projection.weights[np.isin(pre_of, [0, 1])].mean()
        anticausal = projection.weights[np.isin(pre_of, [2, 3])].mean()
        assert causal > 5.0
        assert anticausal < 5.0

    def test_weights_frozen_without_rule(self):
        net = Network("static")
        inputs = net.add_population("inputs", 4, "LIF")
        net.add_population("output", 1, "LIF")
        projection = net.connect(
            "inputs", "output", probability=1.0, weight=30.0
        )
        net.add_stimulus(
            PatternStimulus(inputs, {0: [0, 1, 2, 3]}, weight=200.0, period=10)
        )
        Simulator(net, dt=DT, seed=0).run(200)
        assert np.all(projection.weights == 30.0)

    def test_add_plasticity_requires_member_projection(self):
        net = Network("x")
        net.add_population("a", 2, "LIF")
        foreign = _one_to_one()
        with pytest.raises(ConfigurationError):
            net.add_plasticity(foreign, PairSTDP())

    def test_lazy_and_dense_runs_are_bit_identical(self):
        from repro.supervision.job import spike_digest

        def run(deferred):
            net, projection, _ = self._learning_network(deferred=deferred)
            result = Simulator(net, dt=DT, seed=0).run(400)
            return spike_digest(result.spikes), projection.weights.copy()

        lazy_digest, lazy_weights = run(True)
        dense_digest, dense_weights = run(False)
        assert lazy_digest == dense_digest
        np.testing.assert_array_equal(lazy_weights, dense_weights)

    def test_plasticity_metrics_published_integrally(self):
        from repro.telemetry import MetricsRegistry

        net, projection, rule = self._learning_network()
        metrics = MetricsRegistry()
        Simulator(net, dt=DT, seed=0).run(200, metrics=metrics)
        snapshot = metrics.snapshot()
        deferred = snapshot["plasticity_deferred_updates_total"]["values"][0]
        assert deferred["labels"]["projection"] == projection.name
        assert deferred["value"] == rule.deferred_updates > 0
        assert type(deferred["value"]) is int
        applied = snapshot["plasticity_applied_updates_total"]["values"][0]
        assert applied["value"] == rule.applied_updates > 0
        assert type(applied["value"]) is int
        pending = snapshot["spike_queue_pending_events"]["values"]
        assert all(type(entry["value"]) is int for entry in pending)
        enqueued = snapshot["ring_events_enqueued_total"]["values"]
        assert all(type(entry["value"]) is int for entry in enqueued)
        assert sum(entry["value"] for entry in enqueued) > 0
