"""Tests for populations, spike queues, stimuli, recorders, Network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.models import LIF
from repro.network import (
    Network,
    PatternStimulus,
    PoissonStimulus,
    Population,
    SpikeQueue,
    SpikeRecorder,
    StateRecorder,
)

DT = 1e-4


class TestPopulation:
    def test_basic_properties(self):
        pop = Population("exc", 100, LIF())
        assert len(pop) == 100
        assert pop.n_synapse_types == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Population("", 10, LIF())

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            Population("p", 0, LIF())


class TestSpikeQueue:
    def test_enqueue_and_deliver_after_delay(self):
        queue = SpikeQueue(n=5, n_synapse_types=2, max_delay=3)
        queue.enqueue(
            np.array([2]), np.array([0.7]), np.array([2]), syn_type=0
        )
        assert queue.current()[0, 2] == 0.0
        queue.rotate()
        assert queue.current()[0, 2] == 0.0
        queue.rotate()
        assert queue.current()[0, 2] == pytest.approx(0.7)

    def test_enqueue_now_lands_in_current_slot(self):
        queue = SpikeQueue(5, 2, 3)
        queue.enqueue_now(np.array([1]), np.array([0.3]), syn_type=1)
        assert queue.current()[1, 1] == pytest.approx(0.3)

    def test_accumulates_multiple_events_to_same_target(self):
        queue = SpikeQueue(4, 1, 2)
        queue.enqueue(
            np.array([0, 0, 0]),
            np.array([0.1, 0.2, 0.3]),
            np.array([1, 1, 1]),
            syn_type=0,
        )
        queue.rotate()
        assert queue.current()[0, 0] == pytest.approx(0.6)

    def test_slot_cleared_after_rotation(self):
        queue = SpikeQueue(3, 1, 2)
        queue.enqueue_now(np.array([0]), np.array([1.0]), 0)
        queue.rotate()
        for _ in range(3):
            queue.rotate()
        assert queue.pending_total() == 0.0

    def test_delay_out_of_range_raises(self):
        queue = SpikeQueue(3, 1, 2)
        with pytest.raises(SimulationError):
            queue.enqueue(np.array([0]), np.array([1.0]), np.array([5]), 0)
        with pytest.raises(SimulationError):
            queue.enqueue(np.array([0]), np.array([1.0]), np.array([0]), 0)

    def test_weight_conservation(self):
        queue = SpikeQueue(10, 2, 5)
        rng = np.random.default_rng(0)
        total = 0.0
        for _ in range(20):
            idx = rng.integers(0, 10, size=4)
            weights = rng.random(4)
            delays = rng.integers(1, 6, size=4)
            queue.enqueue(idx, weights, delays, syn_type=0)
            total += weights.sum()
        assert queue.pending_weight() == pytest.approx(total)

    def test_pending_total_counts_events_integrally(self):
        queue = SpikeQueue(10, 2, 5)
        rng = np.random.default_rng(0)
        events = 0
        for _ in range(20):
            idx = rng.integers(0, 10, size=4)
            queue.enqueue(idx, rng.random(4), rng.integers(1, 6, size=4), 0)
            events += 4
        assert queue.pending_total() == events
        assert type(queue.pending_total()) is int
        queue.rotate()
        assert queue.pending_total() <= events
        assert type(queue.pending_total()) is int


class TestStimuli:
    def test_poisson_rate_statistics(self):
        pop = Population("p", 200, LIF())
        stim = PoissonStimulus(pop, rate_hz=1000.0, weight=1.0, dt=DT)
        rng = np.random.default_rng(1)
        events = sum(
            stim.generate(step, rng)[0].size for step in range(1000)
        )
        # Expected: 200 neurons x p=0.1 x 1000 steps = 20000.
        assert 18000 < events < 22000

    def test_poisson_zero_rate_is_silent(self):
        pop = Population("p", 10, LIF())
        stim = PoissonStimulus(pop, rate_hz=0.0, weight=1.0, dt=DT)
        rng = np.random.default_rng(2)
        assert stim.generate(0, rng)[0].size == 0

    def test_poisson_multiple_sources_stack_weight(self):
        pop = Population("p", 50, LIF())
        stim = PoissonStimulus(
            pop, rate_hz=5000.0, weight=0.5, dt=DT, n_sources=10
        )
        rng = np.random.default_rng(3)
        _, weights = stim.generate(0, rng)
        assert np.any(weights > 0.5)  # some neurons get several events

    def test_poisson_slice_targets_subset(self):
        pop = Population("p", 10, LIF())
        stim = PoissonStimulus(
            pop, rate_hz=1e6, weight=1.0, dt=DT, neuron_slice=slice(0, 3)
        )
        rng = np.random.default_rng(4)
        idx, _ = stim.generate(0, rng)
        assert set(idx.tolist()) <= {0, 1, 2}

    def test_poisson_rejects_negative_rate(self):
        pop = Population("p", 10, LIF())
        with pytest.raises(ConfigurationError):
            PoissonStimulus(pop, rate_hz=-1.0, weight=1.0, dt=DT)

    def test_pattern_fires_at_steps(self):
        pop = Population("p", 10, LIF())
        stim = PatternStimulus(pop, {3: [1, 2]}, weight=0.5)
        rng = np.random.default_rng(0)
        assert stim.generate(0, rng)[0].size == 0
        idx, weights = stim.generate(3, rng)
        assert idx.tolist() == [1, 2]
        assert np.all(weights == 0.5)

    def test_pattern_repeats_with_period(self):
        pop = Population("p", 10, LIF())
        stim = PatternStimulus(pop, {1: [0]}, weight=1.0, period=4)
        rng = np.random.default_rng(0)
        assert stim.generate(5, rng)[0].size == 1
        assert stim.generate(6, rng)[0].size == 0

    def test_pattern_rejects_out_of_range_target(self):
        pop = Population("p", 4, LIF())
        with pytest.raises(ConfigurationError):
            PatternStimulus(pop, {0: [9]}, weight=1.0)

    def test_stimulus_rejects_bad_synapse_type(self):
        pop = Population("p", 4, LIF())
        with pytest.raises(ConfigurationError):
            PoissonStimulus(pop, 10.0, 1.0, DT, syn_type=7)


class TestRecorders:
    def test_spike_recorder_collects_pairs(self):
        recorder = SpikeRecorder()
        recorder.record("a", 0, np.array([True, False, True]))
        recorder.record("a", 2, np.array([False, True, False]))
        record = recorder.result("a")
        assert record.n_spikes == 3
        assert record.spike_pairs() == {(0, 0), (0, 2), (2, 1)}

    def test_spike_record_rate(self):
        recorder = SpikeRecorder()
        for step in range(10):
            recorder.record("a", step, np.array([True]))
        record = recorder.result("a")
        assert record.rate_hz(1, 10, DT) == pytest.approx(10 / (10 * DT))

    def test_spikes_of_single_neuron(self):
        recorder = SpikeRecorder()
        recorder.record("a", 4, np.array([False, True]))
        recorder.record("a", 7, np.array([False, True]))
        assert recorder.result("a").spikes_of(1).tolist() == [4, 7]

    def test_empty_population_record(self):
        recorder = SpikeRecorder()
        record = recorder.result("missing")
        assert record.n_spikes == 0
        assert record.rate_hz(10, 100, DT) == 0.0

    def test_total_spikes(self):
        recorder = SpikeRecorder()
        recorder.record("a", 0, np.array([True, True]))
        recorder.record("b", 0, np.array([True]))
        assert recorder.total_spikes() == 3

    def test_state_recorder_traces(self):
        recorder = StateRecorder("pop", variables=("v",), neurons=[0, 2])
        state = {"v": np.array([0.1, 0.2, 0.3])}
        recorder.sample(state)
        state["v"][:] = [0.4, 0.5, 0.6]
        recorder.sample(state)
        trace = recorder.trace("v")
        assert trace.shape == (2, 2)
        np.testing.assert_allclose(trace[:, 1], [0.3, 0.6])

    def test_state_recorder_empty_trace(self):
        recorder = StateRecorder("pop", variables=("v",))
        assert recorder.trace("v").shape == (0, 1)


class TestNetwork:
    def test_builders_and_counts(self):
        net = Network("n")
        net.add_population("a", 10, "LIF")
        net.add_population("b", 5, "LIF")
        net.connect("a", "b", probability=1.0, weight=0.1)
        assert net.n_neurons == 15
        assert net.n_synapses == 50

    def test_duplicate_population_rejected(self):
        net = Network()
        net.add_population("a", 10, "LIF")
        with pytest.raises(ConfigurationError):
            net.add_population("a", 5, "LIF")

    def test_connect_unknown_population_rejected(self):
        net = Network()
        net.add_population("a", 10, "LIF")
        with pytest.raises(ConfigurationError):
            net.connect("a", "ghost")

    def test_stimulus_must_target_member_population(self):
        net = Network()
        net.add_population("a", 10, "LIF")
        foreign = Population("x", 5, LIF())
        with pytest.raises(ConfigurationError):
            net.add_stimulus(PoissonStimulus(foreign, 10.0, 1.0, DT))

    def test_max_delay_over_projections(self):
        net = Network()
        net.add_population("a", 10, "LIF")
        net.connect("a", "a", probability=0.5, delay_steps=4, delay_jitter=3)
        assert net.max_delay() >= 4

    def test_projections_into_and_from(self):
        net = Network()
        net.add_population("a", 10, "LIF")
        net.add_population("b", 10, "LIF")
        net.connect("a", "b", probability=0.5)
        assert len(net.projections_into("b")) == 1
        assert len(net.projections_from("a")) == 1
        assert net.projections_into("a") == []

    def test_model_by_name_with_kwargs(self):
        net = Network()
        pop = net.add_population("a", 3, "LIF")
        assert pop.model.name == "LIF"
