"""Tests for the Euler and RKF45 solvers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.models import LIF, AdEx, ModelParameters
from repro.models.feature_model import FeatureModel
from repro.features import Feature, FeatureSet
from repro.solvers import EulerSolver, RKF45Solver, create_solver
from repro.solvers.rkf45 import rkf45_integrate

DT = 1e-4


class TestCreateSolver:
    def test_names(self):
        assert create_solver("Euler").name == "Euler"
        assert create_solver("RKF45").name == "RKF45"
        assert create_solver("euler").name == "Euler"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            create_solver("RK4")


class TestEulerSolver:
    def test_counts_one_evaluation_per_step(self):
        solver = EulerSolver()
        model = LIF()
        state = model.initial_state(3)
        for _ in range(10):
            solver.advance(model, state, np.zeros((2, 3)), DT)
        assert solver.evaluations_per_step() == 1.0
        assert solver.evaluations == 10

    def test_matches_model_step(self):
        model = LIF()
        solver = EulerSolver()
        state_a = model.initial_state(2)
        state_b = model.initial_state(2)
        inputs = np.full((2, 2), 10.0)
        fired_a = solver.advance(model, state_a, inputs.copy(), DT)
        fired_b = model.step(state_b, inputs.copy(), DT)
        np.testing.assert_array_equal(fired_a, fired_b)
        np.testing.assert_array_equal(state_a["v"], state_b["v"])

    def test_reset_counters(self):
        solver = EulerSolver()
        solver.advance(LIF(), LIF().initial_state(1), np.zeros((2, 1)), DT)
        solver.reset_counters()
        assert solver.evaluations == 0
        assert solver.evaluations_per_step() == 1.0


class TestRKF45Integrate:
    def test_exponential_decay_accuracy(self):
        # dy/dt = -10 y; exact: y0 * exp(-10 t)
        y0 = np.array([1.0])
        y1, evaluations = rkf45_integrate(
            lambda t, y: -10.0 * y, y0, 0.0, 0.5, rtol=1e-8, atol=1e-12
        )
        assert y1[0] == pytest.approx(np.exp(-5.0), rel=1e-6)
        assert evaluations % 6 == 0

    def test_harmonic_oscillator_conserves_energy(self):
        def rhs(_t, y):
            return np.array([y[1], -y[0]])

        y0 = np.array([1.0, 0.0])
        y1, _ = rkf45_integrate(rhs, y0, 0.0, 2 * np.pi, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(y1, y0, atol=1e-5)

    def test_adaptive_takes_fewer_steps_for_smooth_problems(self):
        _, easy = rkf45_integrate(lambda t, y: -y, np.array([1.0]), 0.0, 1.0)
        _, hard = rkf45_integrate(
            lambda t, y: -200.0 * y, np.array([1.0]), 0.0, 1.0
        )
        assert easy < hard

    def test_zero_span_is_identity(self):
        y0 = np.array([3.0])
        y1, evaluations = rkf45_integrate(lambda t, y: y, y0, 1.0, 1.0)
        assert y1[0] == 3.0
        assert evaluations == 0

    def test_max_steps_exceeded_raises(self):
        with pytest.raises(SimulationError):
            rkf45_integrate(
                lambda t, y: -1e9 * y,
                np.array([1.0]),
                0.0,
                1.0,
                rtol=1e-13,
                atol=1e-16,
                max_steps=3,
            )


class TestRKF45Solver:
    def test_lif_cub_jumps_drive_firing(self):
        # In the continuous formulation CUB inputs are instantaneous
        # jumps: accumulating 0.4 per step crosses threshold quickly.
        model = LIF(ModelParameters(tau=20e-3))
        state = model.initial_state(1)
        rkf = RKF45Solver()
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 0.4
        fired_any = any(
            rkf.advance(model, state, inputs.copy(), DT)[0]
            for _ in range(30)
        )
        assert fired_any

    def test_decay_only_agreement(self):
        model = LIF(ModelParameters(tau=20e-3))
        euler_state = model.initial_state(1)
        rkf_state = model.initial_state(1)
        euler_state["v"][:] = 0.8
        rkf_state["v"][:] = 0.8
        euler = EulerSolver()
        rkf = RKF45Solver()
        zeros = np.zeros((2, 1))
        for _ in range(100):
            euler.advance(model, euler_state, zeros.copy(), DT)
            rkf.advance(model, rkf_state, zeros.copy(), DT)
        # Both approximate 0.8 exp(-t/tau); Euler carries O(dt) error.
        exact = 0.8 * np.exp(-100 * DT / 20e-3)
        assert rkf_state["v"][0] == pytest.approx(exact, rel=1e-5)
        assert euler_state["v"][0] == pytest.approx(exact, rel=1e-2)

    def test_counts_evaluations(self):
        model = AdEx()
        solver = RKF45Solver()
        state = model.initial_state(2)
        for _ in range(5):
            solver.advance(model, state, np.zeros((2, 2)), DT)
        assert solver.evaluations_per_step() >= 6.0

    def test_fires_and_resets(self):
        model = LIF()
        solver = RKF45Solver()
        state = model.initial_state(1)
        state["v"][:] = 1.5  # above threshold
        fired = solver.advance(model, state, np.zeros((2, 1)), DT)
        assert fired[0]
        assert state["v"][0] == 0.0

    def test_lid_has_no_continuous_form(self):
        from repro.models import LLIF

        model = LLIF()
        solver = RKF45Solver()
        with pytest.raises(NotImplementedError):
            solver.advance(model, model.initial_state(1), np.zeros((2, 1)), DT)

    def test_conductance_jump_goes_to_g(self):
        model = FeatureModel(
            FeatureSet([Feature.EXD, Feature.COBE]), ModelParameters()
        )
        solver = RKF45Solver()
        state = model.initial_state(1)
        inputs = np.zeros((2, 1))
        inputs[0, 0] = 0.5
        solver.advance(model, state, inputs, DT)
        assert state["g0"][0] > 0.4  # jumped then decayed slightly
