"""The trace context that rides every worker-init pipe payload.

Supervision and sharding workers are spawn-safe: they receive one init
payload over a pipe and nothing else. The trace context is one more
key in that payload (``"trace"``), so correlation survives process
boundaries without any shared state:

``run_id``
    The sweep/run correlation id (``run-<12 hex>``), identical across
    the coordinator and every worker incarnation of one run.
``job_id``
    The job (workload) name for supervised sweeps, ``None`` for
    sharded runs.
``shard_id``
    The shard index for sharded runs, ``None`` for supervised jobs.
``attempt``
    Which incarnation this process is (0-based; bumped on restart).
``parent_span``
    The name of the parent's span that spawned this process — e.g.
    ``"job:Brunel#a1"`` — so a merged trace can attribute a worker
    track to the exact supervisor attempt span that owns it.

Workers echo the context back inside their span-ring dumps, which lets
the merge reject rings from a different run (stale sidecars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """Correlation ids propagated over the worker-init wire payload."""

    run_id: str
    job_id: Optional[str] = None
    shard_id: Optional[int] = None
    attempt: int = 0
    parent_span: Optional[str] = None

    def to_payload(self) -> dict:
        """Pipe/JSON-safe dict (the ``"trace"`` init-payload key)."""
        return {
            "run_id": self.run_id,
            "job_id": self.job_id,
            "shard_id": self.shard_id,
            "attempt": self.attempt,
            "parent_span": self.parent_span,
        }

    @staticmethod
    def from_payload(payload: Optional[dict]) -> "TraceContext":
        """Rebuild from a wire payload; tolerates a missing block."""
        payload = payload or {}
        shard = payload.get("shard_id")
        return TraceContext(
            run_id=str(payload.get("run_id", "")),
            job_id=payload.get("job_id"),
            shard_id=None if shard is None else int(shard),
            attempt=int(payload.get("attempt", 0)),
            parent_span=payload.get("parent_span"),
        )

    @property
    def track_label(self) -> str:
        """Human label for this process's trace track."""
        if self.shard_id is not None:
            return f"shard{self.shard_id}#a{self.attempt}"
        if self.job_id:
            return f"worker:{self.job_id}#a{self.attempt}"
        return f"worker#a{self.attempt}"
