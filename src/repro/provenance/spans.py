"""Per-process span rings and their dual-exit-path shipping.

A :class:`SpanRecorder` is the provenance sibling of the engine's
:class:`~repro.engine.hooks.PhaseTrace`: a bounded ring of completed
spans, but stamped with *wall-clock* start times so rings from
different processes can be merged after clock-offset correction
(monotonic clocks do not compare across processes). Each span is a
compact dict::

    {"name": ..., "cat": ..., "ts": <time.time() at start>,
     "dur": <seconds>, "args": {...},
     "flow_out": [ids...], "flow_in": [ids...]}   # optional keys

``flow_out`` / ``flow_in`` mark the span as an anchor for Perfetto
flow arrows (barrier exchange send → peer receive); the merge turns
them into ``ph: "s"`` / ``ph: "f"`` events.

Shipping follows the flight recorder's dual exit paths exactly:

* the ring rides the worker's ``done``/``failed`` pipe message when
  the process gets to say goodbye, and
* :meth:`SpanRecorder.sync` keeps an atomic sidecar file fresh on the
  heartbeat cadence, so a SIGKILL'd worker still leaves its most
  recent spans behind for the parent to collect.

:class:`PhaseSpanHook` adapts the engine's phase event stream into a
recorder, giving supervised job workers per-phase spans for free.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import List, Optional

from repro.engine.hooks import PhaseHook
from repro.io import atomic_write_json
from repro.provenance.context import TraceContext

__all__ = ["SPANS_SCHEMA", "PhaseSpanHook", "SpanRecorder"]

#: Schema tag of a span-ring dump (pipe payload and sidecar alike).
SPANS_SCHEMA = "repro-spans/1"

#: Default ring capacity. Spans are a provenance breadcrumb, not a
#: full profile (that is TraceHook's job): keep the recent window
#: small enough that rings ride pipe messages and ledger entries
#: without bloat.
DEFAULT_MAX_SPANS = 512

#: Minimum seconds between sidecar rewrites (heartbeat cadence).
SYNC_INTERVAL = 1.0


class SpanRecorder:
    """Bounded ring of completed wall-clock spans for one process."""

    def __init__(
        self,
        context: Optional[TraceContext] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        sidecar_path: Optional[str] = None,
        sync_interval: float = SYNC_INTERVAL,
    ) -> None:
        self.context = context or TraceContext(run_id="")
        self.spans: "deque[dict]" = deque(maxlen=max_spans)
        self.max_spans = max_spans
        self.sidecar_path = sidecar_path
        self.sync_interval = sync_interval
        self.total_spans = 0
        self._last_sync = 0.0

    @property
    def dropped_spans(self) -> int:
        """Spans evicted by the ring (0 while within capacity)."""
        return self.total_spans - len(self.spans)

    def record(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
        flow_out: Optional[List[int]] = None,
        flow_in: Optional[List[int]] = None,
    ) -> dict:
        """Append one completed span (``ts`` = wall-clock start)."""
        span = {"name": name, "cat": cat, "ts": ts, "dur": dur}
        if args:
            span["args"] = args
        if flow_out:
            span["flow_out"] = list(flow_out)
        if flow_in:
            span["flow_in"] = list(flow_in)
        self.total_spans += 1
        self.spans.append(span)
        return span

    def dump(self) -> dict:
        """Pipe/JSON-safe snapshot of the ring (most recent window)."""
        return {
            "schema": SPANS_SCHEMA,
            "pid": os.getpid(),
            "context": self.context.to_payload(),
            "total_spans": self.total_spans,
            "dropped_spans": self.dropped_spans,
            "spans": list(self.spans),
        }

    def sync(self, force: bool = False) -> None:
        """Refresh the sidecar file, throttled to the sync interval.

        Same contract as ``FlightRecorder.sync``: cheap enough to call
        on every heartbeat, atomic so a kill mid-write leaves the
        previous good dump. No-op without a sidecar path.
        """
        if not self.sidecar_path:
            return
        now = time.monotonic()
        if not force and now - self._last_sync < self.sync_interval:
            return
        self._last_sync = now
        try:
            atomic_write_json(self.sidecar_path, self.dump(), indent=None)
        except OSError:  # pragma: no cover - disk full / dir gone
            pass

    @staticmethod
    def load_dump(path: str) -> Optional[dict]:
        """Read a sidecar dump; ``None`` if absent or unusable."""
        import json

        try:
            with open(path, "r", encoding="utf-8") as handle:
                dump = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(dump, dict)
            or dump.get("schema") != SPANS_SCHEMA
        ):
            return None
        return dump


class PhaseSpanHook(PhaseHook):
    """Adapt the simulator's phase stream into a span ring.

    ``on_phase`` receives the phase duration *after* the phase ran, so
    the span start is reconstructed as ``time.time() - seconds`` — one
    extra clock read per phase, the same budget class as the heartbeat
    hook. Deliberately does not override ``on_population``: kernel
    spans stay opt-in via the telemetry TraceHook.
    """

    def __init__(self, recorder: SpanRecorder) -> None:
        self.recorder = recorder

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        self.recorder.record(
            phase,
            "phase",
            time.time() - seconds,
            seconds,
            args={"step": step},
        )
