"""Merging per-process span rings into one Chrome/Perfetto trace.

Clock-offset correction
-----------------------
Worker spans are stamped with the worker's own ``time.time()``; the
parent timeline is the coordinator's clock. For a true offset ``d``
(``worker_clock = parent_clock + d``) and one-way pipe latency
``l >= 0``, a handshake message sent at worker time ``s`` and received
at parent time ``r`` satisfies ``r = (s - d) + l``, i.e.
``s - r = d - l <= d``. Every started/heartbeat message therefore
yields a lower bound on ``d``; the estimate is the *maximum* of
``s - r`` over all handshake samples (the bound is tightest for the
sample with the smallest latency), and corrected spans use
``ts - d_hat``, leaving a residual error of at most the minimum
observed latency. On one host the clocks agree and the correction is
just the pipe latency, but the machinery is what keeps merged tracks
honest if a future transport crosses machines — and what the property
tests drive with adversarial synthetic offsets.

Track layout
------------
One Perfetto *thread* track per process incarnation (``pid: 1`` with
distinct ``tid``s, matching the telemetry TraceHook's convention), a
``process_name`` metadata record naming the run, and one
``thread_name`` record per track. Spans become ``ph: "X"`` complete
events; ``flow_out``/``flow_in`` markers become ``ph: "s"``/``"f"``
flow events anchored at the span's end/start, which is what draws the
barrier-exchange arrows between shard tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ProcessRing",
    "barrier_recv_id",
    "barrier_send_id",
    "estimate_offset",
    "merge_rings",
]


def estimate_offset(samples: Iterable[Tuple[float, float]]) -> float:
    """Estimate a worker's clock offset from handshake samples.

    ``samples`` are ``(worker_send_ts, parent_recv_ts)`` wall-clock
    pairs from the started/heartbeat messages. Returns ``d_hat`` such
    that ``worker_ts - d_hat`` maps onto the parent clock (0.0 with no
    samples). See the module docstring for the math.
    """
    best: Optional[float] = None
    for sent, received in samples:
        bound = sent - received
        if best is None or bound > best:
            best = bound
    return 0.0 if best is None else best


def barrier_send_id(epoch: int, shard: int, n_shards: int) -> int:
    """Flow id of shard ``shard``'s window send for ``epoch``."""
    return (epoch * n_shards + shard) * 2


def barrier_recv_id(epoch: int, shard: int, n_shards: int) -> int:
    """Flow id of shard ``shard``'s exchange receive for ``epoch``."""
    return (epoch * n_shards + shard) * 2 + 1


@dataclass
class ProcessRing:
    """One process incarnation's span ring, ready to merge.

    ``offset`` is the clock-offset estimate for this process (0 for
    the coordinator itself); ``spans`` use the recorder's compact
    format. ``from_dump`` adapts a ``SpanRecorder`` dump shipped over
    the pipe or recovered from a sidecar.
    """

    label: str
    pid: int = 0
    offset: float = 0.0
    spans: List[dict] = field(default_factory=list)
    dropped: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (what ledger entries store as ``trace_rings``)."""
        return {
            "label": self.label,
            "pid": self.pid,
            "offset": self.offset,
            "spans": list(self.spans),
            "dropped": self.dropped,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ProcessRing":
        """Rebuild a ring from its :meth:`to_dict` form."""
        return ProcessRing(
            label=str(payload.get("label", "process")),
            pid=int(payload.get("pid", 0)),
            offset=float(payload.get("offset", 0.0)),
            spans=list(payload.get("spans", ())),
            dropped=int(payload.get("dropped", 0)),
        )

    @staticmethod
    def from_dump(
        dump: dict, label: Optional[str] = None, offset: float = 0.0
    ) -> "ProcessRing":
        from repro.provenance.context import TraceContext

        context = TraceContext.from_payload(dump.get("context"))
        return ProcessRing(
            label=label or context.track_label,
            pid=int(dump.get("pid", 0)),
            offset=offset,
            spans=list(dump.get("spans", ())),
            dropped=int(dump.get("dropped_spans", 0)),
        )


def merge_rings(
    rings: Sequence[ProcessRing],
    run_id: str = "",
    network: Optional[str] = None,
) -> dict:
    """Fuse process rings into one Chrome/Perfetto trace document.

    Returns the same envelope shape the telemetry TraceHook emits
    (``traceEvents`` + ``displayTimeUnit`` + ``otherData``), so every
    trace artifact in the repo opens the same way in Perfetto/chrome
    about:tracing. Timestamps are microseconds relative to the
    earliest corrected span start; each track's events are sorted, so
    per-track timestamps are monotone by construction.
    """
    corrected: List[Tuple[ProcessRing, List[dict]]] = []
    base: Optional[float] = None
    for ring in rings:
        spans = sorted(
            (dict(span) for span in ring.spans),
            key=lambda span: float(span.get("ts", 0.0)),
        )
        for span in spans:
            span["ts"] = float(span.get("ts", 0.0)) - ring.offset
            start = span["ts"]
            if base is None or start < base:
                base = start
        corrected.append((ring, spans))
    if base is None:
        base = 0.0

    title = f"repro:{network}" if network else (run_id or "repro")
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": title},
        }
    ]
    offsets: Dict[str, float] = {}
    for tid, (ring, _) in enumerate(corrected, start=1):
        label = ring.label + (f" (pid {ring.pid})" if ring.pid else "")
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
        )
        offsets[ring.label] = ring.offset
    for tid, (ring, spans) in enumerate(corrected, start=1):
        for span in spans:
            ts_us = round((span["ts"] - base) * 1e6, 3)
            dur_us = round(float(span.get("dur", 0.0)) * 1e6, 3)
            event = {
                "name": span.get("name", "span"),
                "cat": span.get("cat", "span"),
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": ts_us,
                "dur": dur_us,
            }
            if span.get("args"):
                event["args"] = span["args"]
            events.append(event)
            for flow in span.get("flow_out", ()):
                events.append(
                    {
                        "name": "barrier-exchange",
                        "cat": "barrier",
                        "ph": "s",
                        "id": int(flow),
                        "pid": 1,
                        "tid": tid,
                        "ts": round(ts_us + dur_us, 3),
                    }
                )
            for flow in span.get("flow_in", ()):
                # Anchored at the span *end*: the flow terminates when
                # the blocking recv returns, which keeps every arrow
                # pointing forward in time (send end <= receive end).
                events.append(
                    {
                        "name": "barrier-exchange",
                        "cat": "barrier",
                        "ph": "f",
                        "bp": "e",
                        "id": int(flow),
                        "pid": 1,
                        "tid": tid,
                        "ts": round(ts_us + dur_us, 3),
                    }
                )
    dropped = sum(ring.dropped for ring in rings)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": run_id,
            "network": network,
            "n_tracks": len(corrected),
            "clock_offsets": offsets,
            "dropped_spans": dropped,
        },
    }
