"""The run ledger: ``ledger.jsonl``, schema ``repro-ledger/1``.

Every ``repro run`` / ``sweep`` / ``bench`` / ``profile`` appends one
entry recording what ran and what it produced: the config digest (a
SHA-256 over the canonical JSON of the resolved configuration), seed,
backend, shard count, the spike digest that pins bit-identity, the
outcome, wall duration, a metrics snapshot, and the paths of every
artifact the command wrote. The file is append-only through
:func:`repro.io.append_jsonl` (``O_APPEND`` + ``flock`` + single
write), so concurrent commands interleave whole lines, and loads are
torn-line-tolerant like ``BENCH_history.jsonl`` — a crash mid-append
costs at most the final line.

Entries may carry the run's per-process span rings inline
(``trace_rings``, :class:`~repro.provenance.merge.ProcessRing`
dicts with clock offsets already estimated) so ``repro runs trace
RUN_ID`` can re-merge the Perfetto document later without re-running
anything; rings are bounded (the span recorders cap their windows),
which keeps entries to tens of kilobytes.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.io import append_jsonl, load_jsonl

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "DIFF_FIELDS",
    "LEDGER_SCHEMA",
    "append_entry",
    "config_digest",
    "diff_entries",
    "find_entry",
    "load_ledger",
    "make_entry",
    "runs_document",
    "summarize_entry",
]

LEDGER_SCHEMA = "repro-ledger/1"

#: Default ledger location, relative to the working directory (the
#: same convention as ``BENCH_history.jsonl``).
DEFAULT_LEDGER_PATH = "ledger.jsonl"

#: Fields ``repro runs diff`` compares, in report order.
DIFF_FIELDS = (
    "kind",
    "workload",
    "backend",
    "shards",
    "steps",
    "scale",
    "seed",
    "dt",
    "config_digest",
    "spike_digest",
    "outcome",
)


def config_digest(config: dict) -> str:
    """SHA-256 over the canonical JSON of a resolved configuration.

    Canonical = sorted keys, no whitespace variance — so two runs with
    the same effective configuration digest identically regardless of
    argument order or dict construction history.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_entry(
    kind: str,
    run_id: str,
    config: dict,
    *,
    workload: Optional[str] = None,
    backend: Optional[str] = None,
    shards: int = 0,
    steps: int = 0,
    scale: float = 0.0,
    seed: int = 0,
    dt: float = 0.0,
    spike_digest: Optional[str] = None,
    outcome: str = "completed",
    duration: float = 0.0,
    metrics: Optional[dict] = None,
    artifacts: Optional[dict] = None,
    trace_rings: Optional[list] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Build one ledger entry (pure; append with :func:`append_entry`)."""
    entry = {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id,
        "ts": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "kind": kind,
        "workload": workload,
        "backend": backend,
        "shards": int(shards),
        "steps": int(steps),
        "scale": float(scale),
        "seed": int(seed),
        "dt": float(dt),
        "config_digest": config_digest(config),
        "config": config,
        "spike_digest": spike_digest,
        "outcome": outcome,
        "duration": float(duration),
        "metrics": metrics or {},
        "artifacts": {
            key: value
            for key, value in (artifacts or {}).items()
            if value
        },
    }
    if trace_rings:
        entry["trace_rings"] = trace_rings
    if extra:
        entry.update(extra)
    return entry


def append_entry(path: str, entry: dict) -> None:
    """Append one entry to the ledger (concurrency-safe, atomic line)."""
    append_jsonl(path, entry)


def load_ledger(path: str) -> List[dict]:
    """Load a ledger, skipping torn lines and foreign schemas."""
    return load_jsonl(path, schema=LEDGER_SCHEMA)


def find_entry(entries: Iterable[dict], run_id: str) -> dict:
    """Resolve ``run_id`` (full id or unique prefix) to one entry.

    A repeated run id (e.g. a sweep and its jobs sharing one id) is
    resolved to the *latest* matching entry; an ambiguous prefix
    matching different ids is an error listing the candidates.
    """
    exact = [e for e in entries if e.get("run_id") == run_id]
    if exact:
        return exact[-1]
    matches = [
        e for e in entries if str(e.get("run_id", "")).startswith(run_id)
    ]
    distinct = sorted({str(e.get("run_id")) for e in matches})
    if len(distinct) > 1:
        raise ReproError(
            f"run id prefix {run_id!r} is ambiguous: "
            + ", ".join(distinct)
        )
    if not matches:
        raise ReproError(f"no ledger entry matches run id {run_id!r}")
    return matches[-1]


def diff_entries(a: dict, b: dict) -> List[Tuple[str, object, object]]:
    """Field-by-field differences between two entries.

    Returns ``(field, a_value, b_value)`` tuples for every
    :data:`DIFF_FIELDS` member that differs — the caller decides which
    differences are benign (backend, duration) and which are alarming
    (``spike_digest`` with matching config).
    """
    differences = []
    for field in DIFF_FIELDS:
        left, right = a.get(field), b.get(field)
        if left != right:
            differences.append((field, left, right))
    return differences


def summarize_entry(entry: dict) -> dict:
    """Compact row for ``repro runs list`` and ``GET /runs``."""
    digest = entry.get("spike_digest")
    return {
        "run_id": entry.get("run_id"),
        "timestamp": entry.get("timestamp"),
        "kind": entry.get("kind"),
        "workload": entry.get("workload"),
        "backend": entry.get("backend"),
        "shards": entry.get("shards"),
        "steps": entry.get("steps"),
        "seed": entry.get("seed"),
        "outcome": entry.get("outcome"),
        "duration": entry.get("duration"),
        "config_digest": (entry.get("config_digest") or "")[:12] or None,
        "spike_digest": (digest or "")[:12] or None,
    }


def runs_document(
    entries: Sequence[dict], limit: Optional[int] = None
) -> dict:
    """The ``GET /runs`` payload: newest first, summaries only."""
    ordered = sorted(
        entries, key=lambda e: float(e.get("ts", 0.0)), reverse=True
    )
    if limit is not None:
        ordered = ordered[:limit]
    return {
        "schema": LEDGER_SCHEMA,
        "n_runs": len(entries),
        "runs": [summarize_entry(entry) for entry in ordered],
    }
