"""Run provenance: distributed tracing + the durable run ledger.

Two coupled pieces turn the repo's multi-process runs into auditable
history:

* **Distributed tracing** — a :class:`TraceContext` rides the existing
  supervision/sharding pipe protocols into every worker; each worker
  records a bounded :class:`SpanRecorder` ring of wall-clock spans and
  ships it back over the same dual exit paths as the flight recorder
  (pipe message on ``done``/``failed``, atomic sidecar on SIGKILL).
  :func:`merge_rings` fuses the coordinator's ring with every worker
  incarnation's ring into one Chrome/Perfetto trace — one track per
  process, per-process clock-offset correction estimated from the
  started/heartbeat handshakes, and flow events linking barrier
  exchange sends to the peers' receives.
* **Run ledger** — ``ledger.jsonl`` (schema ``repro-ledger/1``), an
  append-only, torn-line-tolerant record of every ``repro run`` /
  ``sweep`` / ``bench`` / ``profile``: config digest, seed, backend,
  shard count, spike digest, outcome, duration, metrics snapshot and
  artifact paths. Queried by ``repro runs list|show|diff|trace`` and
  served as ``GET /runs`` on the observability plane.
"""

from repro.provenance.context import TraceContext
from repro.provenance.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    append_entry,
    config_digest,
    diff_entries,
    find_entry,
    load_ledger,
    make_entry,
    runs_document,
    summarize_entry,
)
from repro.provenance.merge import (
    ProcessRing,
    barrier_recv_id,
    barrier_send_id,
    estimate_offset,
    merge_rings,
)
from repro.provenance.spans import (
    SPANS_SCHEMA,
    PhaseSpanHook,
    SpanRecorder,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "SPANS_SCHEMA",
    "PhaseSpanHook",
    "ProcessRing",
    "SpanRecorder",
    "TraceContext",
    "append_entry",
    "barrier_recv_id",
    "barrier_send_id",
    "config_digest",
    "diff_entries",
    "estimate_offset",
    "find_entry",
    "load_ledger",
    "make_entry",
    "merge_rings",
    "runs_document",
    "summarize_entry",
]
