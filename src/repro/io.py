"""Crash-safe file output shared by every layer that writes artifacts.

A killed process must never leave a truncated checkpoint, stats dump,
or benchmark export behind — a half-written JSON file is worse than no
file, because downstream tooling trusts whatever parses. Every writer
in the repo therefore goes through the same discipline:

1. write the complete payload to a temporary file *in the destination
   directory* (same filesystem, so the rename below is atomic),
2. flush and ``fsync`` so the bytes are durably on disk,
3. ``os.replace`` the temporary file over the destination.

A crash — including SIGKILL — at any point leaves either the previous
good file or no file, never a partial one. The helpers here are the
single implementation (extracted from the checkpoint writer, which
pioneered the pattern in this repo):

* :func:`atomic_writer` — context manager yielding a file handle;
* :func:`atomic_write_bytes` / :func:`atomic_write_text` — one-shot
  payload writers;
* :func:`atomic_write_json` — the JSON artifact writer used by
  ``repro run --stats-json``, ``repro sweep --stats-json``,
  ``BENCH_profile.json``, and the benchmark exports.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Iterator, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
]

PathLike = Union[str, "os.PathLike[str]"]


@contextlib.contextmanager
def atomic_writer(path: PathLike, mode: str = "wb") -> Iterator:
    """Open a temp file that atomically replaces ``path`` on success.

    The handle is flushed, fsynced and renamed over ``path`` only when
    the ``with`` body completes; any exception (or a process kill)
    leaves the previous file contents untouched. ``mode`` must be a
    write mode (``"wb"`` or ``"w"``); text mode writes UTF-8.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_writer needs a write mode, got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix="." + os.path.basename(path) + "-", suffix=".tmp",
        dir=directory,
    )
    try:
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    with atomic_writer(path, "w") as handle:
        handle.write(text)


def atomic_write_json(
    path: PathLike,
    payload,
    indent: int = 2,
    sort_keys: bool = False,
) -> None:
    """Atomically write ``payload`` as JSON (trailing newline included)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
