"""Crash-safe file output shared by every layer that writes artifacts.

A killed process must never leave a truncated checkpoint, stats dump,
or benchmark export behind — a half-written JSON file is worse than no
file, because downstream tooling trusts whatever parses. Every writer
in the repo therefore goes through the same discipline:

1. write the complete payload to a temporary file *in the destination
   directory* (same filesystem, so the rename below is atomic),
2. flush and ``fsync`` so the bytes are durably on disk,
3. ``os.replace`` the temporary file over the destination.

A crash — including SIGKILL — at any point leaves either the previous
good file or no file, never a partial one. The helpers here are the
single implementation (extracted from the checkpoint writer, which
pioneered the pattern in this repo):

* :func:`atomic_writer` — context manager yielding a file handle;
* :func:`atomic_write_bytes` / :func:`atomic_write_text` — one-shot
  payload writers;
* :func:`atomic_write_json` — the JSON artifact writer used by
  ``repro run --stats-json``, ``repro sweep --stats-json``,
  ``BENCH_profile.json``, and the benchmark exports.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Iterator, List, Optional, Union

try:  # POSIX only; JSONL appends degrade to unlocked on other platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
    "load_jsonl",
]

PathLike = Union[str, "os.PathLike[str]"]


@contextlib.contextmanager
def atomic_writer(path: PathLike, mode: str = "wb") -> Iterator:
    """Open a temp file that atomically replaces ``path`` on success.

    The handle is flushed, fsynced and renamed over ``path`` only when
    the ``with`` body completes; any exception (or a process kill)
    leaves the previous file contents untouched. ``mode`` must be a
    write mode (``"wb"`` or ``"w"``); text mode writes UTF-8.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_writer needs a write mode, got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix="." + os.path.basename(path) + "-", suffix=".tmp",
        dir=directory,
    )
    try:
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    with atomic_writer(path, "w") as handle:
        handle.write(text)


def atomic_write_json(
    path: PathLike,
    payload,
    indent: int = 2,
    sort_keys: bool = False,
) -> None:
    """Atomically write ``payload`` as JSON (trailing newline included)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)


def append_jsonl(path: PathLike, record: dict) -> None:
    """Append one JSON record as a whole line, safe under concurrency.

    Append-only histories (``BENCH_history.jsonl``, ``ledger.jsonl``)
    have a different failure model than one-shot artifacts: several
    processes may append at once, and none of them may clobber the
    others' lines. A read-modify-rename cycle loses lines under that
    race, so appends go through ``O_APPEND`` plus an exclusive
    ``flock`` (where available) and a single ``write`` + ``fsync``.
    A crash mid-write can leave at most one torn *final* line, which
    :func:`load_jsonl` tolerates by skipping unparsable lines.
    """
    line = json.dumps(record) + "\n"
    fd = os.open(
        os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(fd, fcntl.LOCK_EX)
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def load_jsonl(path: PathLike, schema: Optional[str] = None) -> List[dict]:
    """Load a JSONL history, skipping torn or foreign lines.

    A record survives only if the line parses as a JSON object and,
    when ``schema`` is given, carries that ``"schema"`` value — so a
    truncated final line (crash mid-append) or a record written by a
    different tool version degrades to a shorter history, never an
    exception. A missing file is an empty history.
    """
    records: List[dict] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                if schema is not None and record.get("schema") != schema:
                    continue
                records.append(record)
    except FileNotFoundError:
        return []
    return records
