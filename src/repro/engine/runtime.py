"""PopulationRuntime: the one execution seam every backend runs through.

A :class:`PopulationRuntime` owns one population's state and advances
it one step per call. The simulator's neuron-computation phase only
ever talks to this interface, so the reference float path, the
fixed-point hardware models, and any future executor plug in behind the
same contract:

* :class:`CompiledRuntime` — the engine fast path: a precompiled
  :class:`~repro.engine.plan.StepPlan` executed over preallocated
  structure-of-arrays state with reusable scratch buffers. This is the
  compile-once/step-many discipline of GeNN-style simulators, and it is
  bit-identical to ``FeatureModel.step``.
* :class:`SolverRuntime` — the general path: dict-of-arrays state
  advanced by a :class:`~repro.solvers.Solver` (forward Euler calling
  ``model.step``, or RKF45 keeping its smooth/jump split). Models the
  plan compiler cannot express (Hodgkin-Huxley, native Izhikevich) run
  here.
* ``HardwareRuntime`` (in :mod:`repro.hardware.backend`) — quantises
  inputs and steps a Flexon / folded-Flexon array model.

Registering a new backend therefore means implementing one
``build_runtime(population)`` hook; see DESIGN.md's "Engine layer".
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError, SimulationError
from repro.features import Feature
from repro.models.base import NeuronModel, State
from repro.models.feature_model import FeatureModel
from repro.engine.plan import StepPlan, compile_step_plan, supports_step_plan
from repro.solvers.base import Solver

#: Absolute state value beyond which a float runtime is considered
#: divergent. The shift-and-scale normalisation keeps healthy membrane
#: potentials within a few units of [0, 1] and conductances far below
#: this, so the bound trips only on genuine blow-ups, never on
#: legitimate dynamics.
DIVERGENCE_LIMIT = 1e6


class PopulationRuntime(abc.ABC):
    """Owns one population's state; advances it one step at a time."""

    def __init__(self, name: str, n: int) -> None:
        self.name = name
        self.n = n

    @abc.abstractmethod
    def advance(self, inputs: np.ndarray, dt: float) -> np.ndarray:
        """Consume this step's ``(n_synapse_types, n)`` accumulated
        input, update the state in place, and return the fired mask.

        The returned array may be a reused buffer: consume it (record,
        ``np.nonzero``) before the next ``advance`` call.
        """

    @abc.abstractmethod
    def state(self) -> State:
        """A float-valued live view of the state (for recording)."""

    def evaluations_per_step(self) -> float:
        """Solver evaluations charged per step (cost-model input)."""
        return 1.0

    # -- routing seam ------------------------------------------------------

    def bind_ring(self, ring) -> None:
        """Offer this population's :class:`~repro.routing.DelayRing`.

        Called once per run setup by the simulator. Most runtimes
        ignore it — they only ever see the dense input array — but
        ring-aware runtimes (the event-driven monitors) keep the
        reference to consult exact per-step event counts, e.g. to skip
        scanning an input bucket that provably received no deliveries.
        Binding must never change numerics, only let a runtime avoid
        provably-redundant work.
        """

    # -- telemetry seam ----------------------------------------------------

    def publish_metrics(self, metrics) -> None:
        """Publish this runtime's lifetime counters into a registry.

        Called at collect time (run end), never on the hot path.
        Lifetime tallies use ``Counter.set_total`` so repeated runs of
        one simulator stay monotone. Subclasses extend with their own
        counters and call ``super().publish_metrics(metrics)``.
        """
        metrics.gauge(
            "runtime_neurons",
            "Neurons owned by each population runtime.",
            {"population": self.name},
        ).set(self.n)

    # -- reliability seam --------------------------------------------------

    def health(
        self, limit: Optional[float] = DIVERGENCE_LIMIT
    ) -> Optional[Tuple[str, np.ndarray]]:
        """Cheap numeric screen of the live state.

        Returns ``None`` while every state variable is finite (and
        within ``±limit`` when a limit is given); otherwise the name of
        the first bad variable and the indices of the offending
        neurons. Fixed-point runtimes are bounded by construction, so
        this default only ever trips on the float paths.
        """
        for variable, values in self.state().items():
            bad = ~np.isfinite(values)
            if limit is not None:
                bad |= np.abs(values) > limit
            if bad.any():
                return variable, np.nonzero(bad)[0]
        return None

    def snapshot(self) -> Dict[str, object]:
        """Everything needed to rebuild this runtime's state bit for bit.

        Subclasses override both halves; the base refuses so a backend
        with a non-checkpointable runtime fails loudly at capture time
        rather than resuming wrong.
        """
        raise CheckpointError(
            f"runtime {type(self).__name__} does not support checkpointing"
        )

    def restore(self, payload: Dict[str, object]) -> None:
        """Overwrite this runtime's state from a :meth:`snapshot`."""
        raise CheckpointError(
            f"runtime {type(self).__name__} does not support checkpointing"
        )

    def _check_restore_sizes(self, state: Dict[str, np.ndarray]) -> None:
        for name, values in state.items():
            if np.asarray(values).shape != (self.n,):
                raise CheckpointError(
                    f"checkpointed variable {name!r} of {self.name!r} has "
                    f"shape {np.asarray(values).shape}, expected ({self.n},)"
                )


class CompiledRuntime(PopulationRuntime):
    """Executes a precompiled :class:`StepPlan` over SoA state.

    State lives in flat float64 blocks — ``v`` as ``(n,)``, the
    per-synapse-type conductances as one contiguous ``(types, n)``
    block — so the per-type Python loop of the dict-state path becomes
    a single broadcast numpy operation, and every scratch array is
    allocated once and reused. The plan is compiled on construction
    when ``dt`` is known, else lazily on the first ``advance`` (and
    recompiled if the caller ever changes ``dt``).
    """

    def __init__(
        self,
        name: str,
        n: int,
        model: FeatureModel,
        dt: Optional[float] = None,
    ) -> None:
        super().__init__(name, n)
        if not supports_step_plan(model):
            raise SimulationError(
                f"model {model.name!r} cannot be compiled to a step plan"
            )
        self.model = model
        self.advances = 0
        self._plan: Optional[StepPlan] = None
        self._kernel: Optional[Callable[[np.ndarray], np.ndarray]] = None

        p = model.parameters
        f = model.features
        n_types = p.n_synapse_types
        self._n_types = n_types
        # -- structure-of-arrays state ----------------------------------
        self.v = np.full(n, p.v_rest, dtype=np.float64)
        self.g = (
            np.zeros((n_types, n), dtype=np.float64)
            if f.uses_conductance
            else None
        )
        self.y = (
            np.zeros((n_types, n), dtype=np.float64)
            if Feature.COBA in f
            else None
        )
        self.w = (
            np.zeros(n, dtype=np.float64) if f.has_adaptation_state else None
        )
        self.r = np.zeros(n, dtype=np.float64) if Feature.RR in f else None
        self.cnt = np.zeros(n, dtype=np.float64) if Feature.AR in f else None
        # Live float views under the canonical dict-state names.
        views: State = {"v": self.v}
        if self.g is not None:
            for i in range(n_types):
                views[f"g{i}"] = self.g[i]
        if self.y is not None:
            for i in range(n_types):
                views[f"y{i}"] = self.y[i]
        if self.w is not None:
            views["w"] = self.w
        if self.r is not None:
            views["r"] = self.r
        if self.cnt is not None:
            views["cnt"] = self.cnt
        self._views = views
        if dt is not None:
            self._bind(dt)

    # -- plan compilation ------------------------------------------------

    @property
    def plan(self) -> Optional[StepPlan]:
        """The currently bound step plan (None before first advance)."""
        return self._plan

    def _bind(self, dt: float) -> None:
        self._plan = compile_step_plan(self.model, dt)
        self._kernel = self._build_kernel(self._plan)

    def _build_kernel(self, plan: StepPlan) -> Callable[[np.ndarray], np.ndarray]:
        """Close the plan's constants and this runtime's arrays over a
        flat update function; all feature dispatch happens here, once.
        """
        n = self.n
        n_types = self._n_types
        v, g, y, w, r, cnt = self.v, self.g, self.y, self.w, self.r, self.cnt

        # Preallocated scratch, reused every step.
        gated = np.empty((n_types, n)) if plan.use_ar else None
        ar_gate = np.empty(n, dtype=bool) if plan.use_ar else None
        ts = np.empty((n_types, n)) if (plan.kernel == "COBA" or plan.use_rev) else None
        syn = np.empty(n)
        tmp = np.empty(n)
        tmp2 = np.empty(n) if plan.use_qdi else None
        v_new = np.empty(n)
        fired = np.empty(n, dtype=bool)

        kernel_kind = plan.kernel
        adaptation = plan.adaptation
        use_ar, use_rev = plan.use_ar, plan.use_rev
        use_lid, use_qdi, use_exi = plan.use_lid, plan.use_qdi, plan.use_exi
        one_minus_eps_g, e_eps_g, v_g = plan.one_minus_eps_g, plan.e_eps_g, plan.v_g
        eps_m, v_rest, theta = plan.eps_m, plan.v_rest, plan.theta
        v_c, delta_t, leak_max = plan.v_c, plan.delta_t, plan.leak_max
        threshold, reset_voltage = plan.threshold, plan.reset_voltage
        one_minus_eps_w, one_minus_eps_r = plan.one_minus_eps_w, plan.one_minus_eps_r
        sbt_gain, v_w_target = plan.sbt_gain, plan.v_w
        v_rr, v_ar, b, q_r = plan.v_rr, plan.v_ar, plan.b, plan.q_r
        cnt_reload = plan.cnt_reload

        def kernel(inputs: np.ndarray) -> np.ndarray:
            # In-place augmented assignments below would otherwise make
            # these closure names local (and unbound) inside the kernel.
            nonlocal g, y, w, r, syn, tmp, ts, v_new
            # 1. absolute refractory gates the inputs of silenced neurons
            if use_ar:
                np.less_equal(cnt, 0.0, out=ar_gate)
                np.multiply(inputs, ar_gate, out=gated)
                x = gated
            else:
                x = inputs

            # 2-3. synaptic kernels and reversal scaling (old v)
            if kernel_kind == "COBA":
                y *= one_minus_eps_g
                y += x
                g *= one_minus_eps_g
                np.multiply(y, e_eps_g, out=ts)
                g += ts
                contribution = g
            elif kernel_kind == "COBE":
                g *= one_minus_eps_g
                g += x
                contribution = g
            else:  # CUB: instantaneous, no stored conductance
                contribution = x
            if use_rev:
                np.subtract(v_g, v, out=ts)
                ts *= contribution
                np.sum(ts, axis=0, out=syn)
            else:
                np.sum(contribution, axis=0, out=syn)

            # 4-5. membrane update
            if use_lid:
                np.subtract(v, v_rest, out=tmp)
                np.maximum(tmp, 0.0, out=tmp)
                np.minimum(tmp, leak_max, out=tmp)
                np.add(v, syn, out=v_new)
                v_new -= tmp
            else:
                np.subtract(v_rest, v, out=tmp)
                syn += tmp  # syn now holds the drive
                if use_qdi:
                    np.subtract(v_c, v, out=tmp2)
                    tmp *= tmp2
                    syn += tmp
                elif use_exi:
                    np.subtract(v, theta, out=tmp)
                    tmp /= delta_t
                    np.exp(tmp, out=tmp)
                    tmp *= delta_t
                    syn += tmp
                syn *= eps_m
                np.add(v, syn, out=v_new)

            # 6. spike-triggered current / relative refractory (old v)
            if adaptation == "RR":
                w *= one_minus_eps_w
                r *= one_minus_eps_r
                np.subtract(v_rr, v, out=tmp)
                tmp *= r
                v_new += tmp
                np.subtract(v_ar, v, out=tmp)
                tmp *= w
                v_new += tmp
            elif adaptation == "SBT":
                w *= one_minus_eps_w
                np.subtract(v, v_w_target, out=tmp)
                tmp *= sbt_gain
                w += tmp
                v_new += w
            elif adaptation == "ADT":
                w *= one_minus_eps_w
                v_new += w

            # 7. fire & reset
            np.greater(v_new, threshold, out=fired)
            v_new[fired] = reset_voltage
            if adaptation == "RR":
                w[fired] += b
                r[fired] += q_r
            elif adaptation is not None:
                w[fired] -= b
            if use_ar:
                np.subtract(cnt, 1.0, out=cnt)
                np.maximum(cnt, 0.0, out=cnt)
                cnt[fired] = cnt_reload
            v[:] = v_new
            return fired

        return kernel

    # -- PopulationRuntime interface --------------------------------------

    def advance(self, inputs: np.ndarray, dt: float) -> np.ndarray:
        if self._plan is None or dt != self._plan.dt:
            self._bind(dt)
        if inputs.shape != (self._n_types, self.n):
            raise SimulationError(
                f"expected inputs of shape {(self._n_types, self.n)}, "
                f"got {inputs.shape}"
            )
        self.advances += 1
        return self._kernel(inputs)

    def publish_metrics(self, metrics) -> None:
        super().publish_metrics(metrics)
        metrics.counter(
            "runtime_advances_total",
            "Population steps executed by each runtime.",
            {"population": self.name, "runtime": "compiled"},
        ).set_total(self.advances)

    def state(self) -> State:
        return self._views

    def load_state(self, state: State) -> None:
        """Overwrite the SoA blocks from a dict-state snapshot."""
        for name, values in state.items():
            self._views[name][:] = values

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "compiled",
            "state": {name: view.copy() for name, view in self._views.items()},
            "advances": self.advances,
        }

    def restore(self, payload: Dict[str, object]) -> None:
        state = payload["state"]
        if set(state) != set(self._views):
            raise CheckpointError(
                f"checkpoint variables {sorted(state)} do not match "
                f"{self.name!r}'s state {sorted(self._views)}"
            )
        self._check_restore_sizes(state)
        self.load_state(state)
        self.advances = int(payload["advances"])


class SolverRuntime(PopulationRuntime):
    """Dict-state fallback: a software solver advancing ``model.step``
    (Euler) or the smooth/jump split (RKF45). This is the seed
    reference-backend path, kept verbatim for models without a step
    plan and for adaptive integration.
    """

    def __init__(self, name: str, n: int, model: NeuronModel, solver: Solver):
        super().__init__(name, n)
        self.model = model
        self.solver = solver
        self._state = model.initial_state(n)

    def advance(self, inputs: np.ndarray, dt: float) -> np.ndarray:
        return self.solver.advance(self.model, self._state, inputs, dt)

    def state(self) -> State:
        return self._state

    def evaluations_per_step(self) -> float:
        return self.solver.evaluations_per_step()

    def publish_metrics(self, metrics) -> None:
        super().publish_metrics(metrics)
        labels = {"population": self.name, "runtime": "solver"}
        metrics.counter(
            "runtime_advances_total",
            "Population steps executed by each runtime.",
            labels,
        ).set_total(self.solver.advances)
        metrics.counter(
            "runtime_solver_evaluations_total",
            "Derivative/step evaluations performed by the solver.",
            labels,
        ).set_total(self.solver.evaluations)

    def load_state(self, state: State) -> None:
        """Overwrite the dict state in place (keeps recorder views live)."""
        for name, values in state.items():
            self._state[name][:] = values

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "solver",
            "state": {name: values.copy() for name, values in self._state.items()},
            "evaluations": self.solver.evaluations,
            "advances": self.solver.advances,
        }

    def restore(self, payload: Dict[str, object]) -> None:
        state = payload["state"]
        if set(state) != set(self._state):
            raise CheckpointError(
                f"checkpoint variables {sorted(state)} do not match "
                f"{self.name!r}'s state {sorted(self._state)}"
            )
        self._check_restore_sizes(state)
        self.load_state(state)
        self.solver.evaluations = int(payload["evaluations"])
        self.solver.advances = int(payload["advances"])
