"""The engine layer: compile-once/step-many simulation machinery.

This package is the seam between the network description and the code
that actually advances neuron state. It has three parts:

* :mod:`repro.engine.plan` — ``StepPlan``: a population's
  ``FeatureSet`` + ``ModelParameters`` + ``dt`` lowered, at prepare
  time, into a flat update recipe with every per-step scalar
  precomputed;
* :mod:`repro.engine.runtime` — ``PopulationRuntime``: the common
  execution interface every backend (reference, Flexon, folded,
  event-driven, hybrid) steps populations through, with the
  plan-driven ``CompiledRuntime`` fast path and the dict-state
  ``SolverRuntime`` fallback;
* :mod:`repro.engine.hooks` — ``PhaseHook``: pluggable per-phase
  instrumentation for the simulator loop.
"""

from repro.engine.hooks import (
    PHASES,
    HookError,
    PhaseHook,
    PhaseStats,
    PhaseTimer,
    PhaseTrace,
)
from repro.engine.plan import StepPlan, compile_step_plan, supports_step_plan
from repro.engine.runtime import CompiledRuntime, PopulationRuntime, SolverRuntime

__all__ = [
    "PHASES",
    "CompiledRuntime",
    "HookError",
    "PhaseHook",
    "PhaseStats",
    "PhaseTimer",
    "PhaseTrace",
    "PopulationRuntime",
    "SolverRuntime",
    "StepPlan",
    "compile_step_plan",
    "supports_step_plan",
]
