"""StepPlan: a population's per-step update, lowered ahead of time.

GeNN-style simulators get their speed by compiling the model
description into a flat kernel once and then looping over preallocated
dense arrays. :func:`compile_step_plan` is that compile step for this
repo: it lowers a :class:`~repro.models.feature_model.FeatureModel`'s
``FeatureSet`` + ``ModelParameters`` + ``dt`` into a :class:`StepPlan`
— every feature flag resolved to a plain bool, every ``eps_*`` scalar
precomputed, and the per-synapse-type constants laid out as column
vectors that broadcast over a structure-of-arrays state (see
:class:`~repro.engine.runtime.CompiledRuntime`).

The lowered arithmetic reproduces ``FeatureModel.step`` operation for
operation, so a plan-driven Euler update is bit-identical to the
dict-state reference path — the property the engine equivalence tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.features import Feature
from repro.models.base import NeuronModel
from repro.models.feature_model import FeatureModel

#: Euler's number, matching the COBA cascade gain of FeatureModel.step.
_E = float(np.e)


@dataclass(frozen=True)
class StepPlan:
    """A flat, fully resolved per-population update recipe for one dt.

    All feature dispatch is folded into plain bools and the per-step
    scalars are precomputed, so executing the plan performs no dict
    lookups, no ``Feature ... in feature_set`` membership tests, and no
    ``dt / tau`` arithmetic. Arrays are column vectors of shape
    ``(n_synapse_types, 1)`` so they broadcast over ``(types, n)``
    state blocks.
    """

    model_name: str
    dt: float
    n_synapse_types: int
    state_names: Tuple[str, ...]

    # -- resolved feature dispatch --------------------------------------
    kernel: str  #: input-accumulation kernel: "CUB", "COBE", or "COBA"
    adaptation: Optional[str]  #: "ADT", "SBT", "RR", or None
    use_ar: bool
    use_rev: bool
    use_lid: bool
    use_qdi: bool
    use_exi: bool

    # -- membrane scalars ------------------------------------------------
    eps_m: float
    v_rest: float
    theta: float
    v_c: float
    delta_t: float
    leak_max: float
    threshold: float
    reset_voltage: float

    # -- adaptation / refractory scalars ---------------------------------
    one_minus_eps_w: float
    one_minus_eps_r: float
    sbt_gain: float
    v_w: float
    v_rr: float
    v_ar: float
    b: float
    q_r: float
    cnt_reload: float

    # -- per-synapse-type columns, shape (n_synapse_types, 1) ------------
    one_minus_eps_g: np.ndarray
    e_eps_g: np.ndarray
    v_g: np.ndarray

    @property
    def uses_conductance(self) -> bool:
        return self.kernel in ("COBE", "COBA")

    @property
    def has_adaptation_state(self) -> bool:
        return self.adaptation is not None


def supports_step_plan(model: NeuronModel) -> bool:
    """Whether ``model``'s semantics are exactly the feature lowering.

    Only models that inherit the canonical ``FeatureModel.step`` (and
    the stock zero-initialised state) can be compiled — a subclass that
    overrides either has private semantics the plan would silently
    diverge from, so it falls back to the solver path.
    """
    return (
        isinstance(model, FeatureModel)
        and type(model).step is FeatureModel.step
        and type(model).initial_state is NeuronModel.initial_state
    )


def compile_step_plan(model: NeuronModel, dt: float) -> StepPlan:
    """Lower a feature model at a fixed ``dt`` into a :class:`StepPlan`."""
    if not supports_step_plan(model):
        raise ValueError(
            f"model {model.name!r} does not use the canonical feature-model "
            "step semantics; no step plan can be compiled for it"
        )
    p = model.parameters
    f = model.features
    d = p.derived(dt)
    n_types = p.n_synapse_types

    if Feature.COBA in f:
        kernel = "COBA"
    elif Feature.COBE in f:
        kernel = "COBE"
    else:
        kernel = "CUB"
    if Feature.RR in f:
        adaptation: Optional[str] = "RR"
    elif Feature.SBT in f:
        adaptation = "SBT"
    elif Feature.ADT in f:
        adaptation = "ADT"
    else:
        adaptation = None

    def column(values) -> np.ndarray:
        arr = np.array(values, dtype=np.float64).reshape(n_types, 1)
        arr.setflags(write=False)
        return arr

    return StepPlan(
        model_name=model.name,
        dt=dt,
        n_synapse_types=n_types,
        state_names=model.state_variable_names(),
        kernel=kernel,
        adaptation=adaptation,
        use_ar=Feature.AR in f,
        use_rev=Feature.REV in f,
        use_lid=Feature.LID in f,
        use_qdi=Feature.QDI in f,
        use_exi=Feature.EXI in f,
        eps_m=d.eps_m,
        v_rest=p.v_rest,
        theta=p.theta,
        v_c=p.v_c,
        delta_t=p.delta_t,
        leak_max=d.leak_max,
        threshold=p.v_theta if f.spike_initiation is not None else p.theta,
        reset_voltage=p.reset_voltage,
        one_minus_eps_w=d.one_minus_eps_w,
        one_minus_eps_r=d.one_minus_eps_r,
        sbt_gain=d.sbt_gain,
        v_w=p.v_w,
        v_rr=p.v_rr,
        v_ar=p.v_ar,
        b=p.b,
        q_r=p.q_r,
        cnt_reload=float(d.cnt_reload),
        one_minus_eps_g=column(d.one_minus_eps_g),
        e_eps_g=column(tuple(_E * e for e in d.eps_g)),
        v_g=column(p.v_g[:n_types]),
    )
