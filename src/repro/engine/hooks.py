"""PhaseHook: pluggable per-phase instrumentation for the simulator.

The three-phase loop (stimulus generation, neuron computation, synapse
calculation) instruments each phase with wall-clock time and abstract
operation counts. Rather than hard-coding that bookkeeping in the
loop, the simulator emits phase events to :class:`PhaseHook` observers;
the built-in :class:`PhaseTimer` turns them into the
``SimulationResult.phases`` statistics, and user hooks can layer
tracing, profiling, or progress reporting on the same stream without
touching the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Canonical phase order of one simulated time step (Section II-C).
PHASES = ("stimulus", "neuron", "synapse")


@dataclass
class PhaseStats:
    """Accumulated cost of one phase across a run."""

    seconds: float = 0.0
    operations: int = 0

    def add(self, seconds: float, operations: int) -> None:
        self.seconds += seconds
        self.operations += operations


class PhaseHook:
    """Observer of the simulator's per-phase event stream.

    Subclass and override any subset; all default implementations are
    no-ops. ``on_phase`` is the hot callback — it fires three times per
    simulated step — so implementations should do O(1) work and defer
    aggregation to ``on_run_end``.
    """

    def on_run_start(self, network, n_steps: int) -> None:
        """Called once before the first step of a ``Simulator.run``."""

    def on_step_start(self, step: int) -> None:
        """Called at the top of every simulated step."""

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        """Called after each phase with its wall time and op count."""

    def on_run_end(self, result) -> None:
        """Called once with the finished ``SimulationResult``."""


class PhaseTimer(PhaseHook):
    """The built-in hook: accumulates per-phase ``PhaseStats``."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStats] = {
            phase: PhaseStats() for phase in PHASES
        }

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        self.phases[phase].add(seconds, operations)


class PhaseTrace(PhaseHook):
    """Records every phase event — a debugging/profiling aid.

    Stores ``(step, phase, seconds, operations)`` tuples; useful for
    inspecting per-step cost evolution (e.g. warm-up effects) rather
    than run-level aggregates.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[int, str, float, int]] = []

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        self.events.append((step, phase, seconds, operations))

    def steps_recorded(self) -> int:
        """Number of distinct steps that produced at least one event."""
        return len({step for step, *_ in self.events})
