"""PhaseHook: pluggable per-phase instrumentation for the simulator.

The three-phase loop (stimulus generation, neuron computation, synapse
calculation) instruments each phase with wall-clock time and abstract
operation counts. Rather than hard-coding that bookkeeping in the
loop, the simulator emits phase events to :class:`PhaseHook` observers;
the built-in :class:`PhaseTimer` turns them into the
``SimulationResult.phases`` statistics, and user hooks can layer
tracing, profiling, or progress reporting on the same stream without
touching the hot loop.

Hooks that override :meth:`PhaseHook.on_population` additionally
receive one *kernel span* per population per step — the wall time of
that population's ``advance`` inside the neuron phase. The simulator
only pays for the extra clock reads while such a hook is attached.

Failure semantics (pinned by tests): the built-in timer always closes
a phase *before* user hooks see it, so no hook can corrupt phase
accounting. A hook that raises a structured
:class:`~repro.errors.ReproError` is treated as deliberate (e.g.
``NumericsGuard``, ``CheckpointHook``) and propagates; any other
exception is isolated — the hook is detached for the rest of the run
and the failure is recorded as a :class:`HookError` on
``SimulationResult.hook_errors`` (and the ``sim_hook_errors_total``
metric), with a ``RuntimeWarning`` emitted so it cannot pass silently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Canonical phase order of one simulated time step (Section II-C).
PHASES = ("stimulus", "neuron", "synapse")


@dataclass
class PhaseStats:
    """Accumulated cost of one phase across a run."""

    seconds: float = 0.0
    operations: int = 0

    def add(self, seconds: float, operations: int) -> None:
        self.seconds += seconds
        self.operations += operations


@dataclass(frozen=True)
class HookError:
    """One isolated user-hook failure (see module docstring)."""

    #: Class name of the hook that raised.
    hook: str
    #: Callback that raised (``on_phase``, ``on_step_start``, ...).
    callback: str
    #: Step index at which the failure happened.
    step: int
    #: ``repr`` of the exception (the original is not kept alive).
    error: str

    def describe(self) -> str:
        return (
            f"step {self.step}: {self.hook}.{self.callback} raised "
            f"{self.error}; hook detached for the rest of the run"
        )


class PhaseHook:
    """Observer of the simulator's per-phase event stream.

    Subclass and override any subset; all default implementations are
    no-ops. ``on_phase`` is the hot callback — it fires three times per
    simulated step — so implementations should do O(1) work and defer
    aggregation to ``on_run_end``.
    """

    #: Set False (class- or instance-level) on hooks that override
    #: ``on_population`` but do not want the simulator to pay the
    #: per-population clock reads (e.g. a ServeHook configured without
    #: population spans).
    wants_population_spans = True

    def on_run_start(self, network, n_steps: int) -> None:
        """Called once before the first step of a ``Simulator.run``."""

    def on_step_start(self, step: int) -> None:
        """Called at the top of every simulated step."""

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        """Called after each phase with its wall time and op count."""

    def on_population(
        self, population: str, step: int, seconds: float, operations: int
    ) -> None:
        """Called per population with its neuron-kernel wall time.

        Only fires while at least one attached hook overrides this
        method (and does not set ``wants_population_spans = False``) —
        the simulator skips the per-population clock reads otherwise.
        """

    def on_run_end(self, result) -> None:
        """Called once with the finished ``SimulationResult``."""


class PhaseTimer(PhaseHook):
    """The built-in hook: accumulates per-phase ``PhaseStats``."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStats] = {
            phase: PhaseStats() for phase in PHASES
        }

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        self.phases[phase].add(seconds, operations)


class PhaseTrace(PhaseHook):
    """Records every phase event — a debugging/profiling aid.

    Stores ``(step, phase, seconds, operations)`` tuples; useful for
    inspecting per-step cost evolution (e.g. warm-up effects) rather
    than run-level aggregates. ``max_events`` bounds the storage as a
    ring buffer keeping the most recent events (default ``None`` keeps
    everything, the historical behaviour); ``dropped_events`` counts
    what the ring evicted.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: "deque[Tuple[int, str, float, int]]" = deque(
            maxlen=max_events
        )
        self.max_events = max_events
        #: Total events observed, including ones the ring evicted.
        self.total_events = 0

    def on_phase(self, phase: str, step: int, seconds: float, operations: int) -> None:
        self.total_events += 1
        self.events.append((step, phase, seconds, operations))

    @property
    def dropped_events(self) -> int:
        """Events evicted by the ring buffer (0 while within capacity)."""
        return self.total_events - len(self.events)

    def steps_recorded(self) -> int:
        """Number of distinct steps that produced at least one event."""
        return len({step for step, *_ in self.events})

    def durations_of(self, phase: str) -> List[float]:
        """Buffered per-event durations (seconds) of one phase."""
        return [
            seconds
            for _, name, seconds, _ in self.events
            if name == phase
        ]
