"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base type. Subclasses
separate configuration mistakes (bad feature combinations, bad
parameters) from runtime failures (simulation errors, numeric
overflow in strict mode).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration is invalid."""


class FeatureConflictError(ConfigurationError):
    """Raised when mutually exclusive biological features are combined.

    Examples: enabling both exponential (EXD) and linear (LID) membrane
    decay, both quadratic (QDI) and exponential (EXI) spike initiation,
    or reversal voltage (REV) together with current-based input (CUB).
    """


class UnknownModelError(ConfigurationError):
    """Raised when a neuron model or workload name is not registered."""


class FixedPointError(ReproError):
    """Base class for fixed-point arithmetic errors."""


class FixedPointFormatError(FixedPointError, ValueError):
    """Raised when a fixed-point format specification is invalid."""


class FixedPointOverflowError(FixedPointError, OverflowError):
    """Raised in strict mode when a value exceeds the representable range.

    The default hardware behaviour is saturation (as in the RTL); the
    strict mode exists so tests can assert that chosen formats never
    saturate on realistic workloads.
    """


class CompilationError(ReproError):
    """Raised when a neuron model cannot be compiled for Flexon."""


class MicrocodeError(ReproError):
    """Raised when a folded-Flexon microprogram is malformed."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. inconsistent sizes)."""


class ReliabilityError(ReproError):
    """Base class for reliability-layer failures (numerics, checkpoints).

    Separating these from :class:`SimulationError` lets degradation
    policies catch *detected faults* (and, say, fall back to the
    verbatim solver path) without accidentally swallowing genuine
    usage errors such as shape mismatches.
    """


class NumericsError(ReliabilityError):
    """Raised when simulation state stops being numerically trustworthy.

    Carries enough structure to act on: which population went bad, at
    which step, which state variable, and the indices of the offending
    neurons. The message stays human-readable so uncaught guard trips
    still explain themselves.
    """

    def __init__(
        self,
        message: str,
        population: str = "",
        step: int = -1,
        variable: str = "",
        indices=(),
    ):
        super().__init__(message)
        self.population = population
        self.step = step
        self.variable = variable
        self.indices = tuple(int(i) for i in indices)


class CheckpointError(ReliabilityError):
    """Raised when a checkpoint cannot be captured, read, or restored.

    Restoring verifies a structural signature (network name, population
    sizes, backend name, dt) so a checkpoint from one simulation cannot
    silently corrupt another. Load failures carry the offending
    ``path`` and a machine-readable ``reason`` (``"not-found"``,
    ``"truncated"``, ``"not-a-pickle"``, ``"corrupt"``,
    ``"wrong-type"``, ``"io-error"``) so callers can distinguish a
    missing file from a torn or poisoned one without parsing prose.
    """

    def __init__(self, message: str, path: str = "", reason: str = ""):
        super().__init__(message)
        self.path = path
        self.reason = reason


class SupervisionError(ReproError):
    """Raised when the supervision layer is misconfigured or a sweep
    cannot be orchestrated (duplicate job names, bad retry policy,
    broken worker protocol). Individual *job* failures are not
    exceptions — they are classified into ``JobReport.failure_kind``
    (``timeout`` / ``crash`` / ``numerics`` / ``oom-like``) so a sweep
    survives them.
    """


class ShardingError(SupervisionError):
    """Raised when a sharded run's coordination protocol breaks.

    Covers wire-protocol violations between the shard coordinator and
    its workers (out-of-order barrier epochs, malformed exchange
    payloads) and determinism violations (a restarted shard re-sending
    a window whose digest differs from the one the surviving shards
    already consumed). Misconfigurations — a bad shard count, an
    unsupported network — raise :class:`ConfigurationError` instead.
    """


class RunInterrupted(ReproError):
    """Raised at a step boundary after SIGINT/SIGTERM requested a stop.

    The graceful-interrupt hook writes a final checkpoint *before*
    raising, captures partial run statistics, and the CLI translates
    the exception into the documented exit code (130 for SIGINT, 143
    for SIGTERM) instead of a raw traceback.
    """

    def __init__(self, message: str, signal_name: str = "", step: int = -1):
        super().__init__(message)
        self.signal_name = signal_name
        self.step = step
