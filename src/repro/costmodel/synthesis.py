"""Composition of inventories into area/power ("synthesis").

The model: area is the sum of unit areas; dynamic power is the sum of
per-op switching energies times clock frequency times an activity
factor (baseline Flexon latches unused paths off, folded Flexon's
shared units switch every cycle); static power is a 45 nm leakage
density times area. SRAM is handled by :mod:`repro.costmodel.sram` and
added at the array level, mirroring how the paper reports Table VI
(neuron logic and SRAM as separate rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.costmodel.netlist import (
    datapath_inventories,
    flexon_inventory,
    folded_inventory,
)
from repro.costmodel.sram import SramConfig, sram_cost
from repro.costmodel.units import (
    FLEXON_ACTIVITY,
    FOLDED_ACTIVITY,
    LEAKAGE_UW_PER_UM2,
    UNIT_AREA_UM2,
    UNIT_ENERGY_PJ,
)
from repro.hardware.array import FLEXON_CLOCK_HZ, FOLDED_CLOCK_HZ
from repro.hardware.datapaths import Inventory


@dataclass(frozen=True)
class DesignCost:
    """Synthesized cost of one logic block."""

    name: str
    area_um2: float
    power_w: float

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6


@dataclass(frozen=True)
class ArrayCost:
    """Table VI row: neuron logic + SRAM of a digital-neuron array."""

    name: str
    n_neurons: int
    neuron_area_mm2: float
    neuron_power_w: float
    sram_area_mm2: float
    sram_power_w: float

    @property
    def total_area_mm2(self) -> float:
        return self.neuron_area_mm2 + self.sram_area_mm2

    @property
    def total_power_w(self) -> float:
        return self.neuron_power_w + self.sram_power_w


def synthesize(
    name: str,
    inventory: Inventory,
    clock_hz: float,
    activity: float = 1.0,
) -> DesignCost:
    """Area/power of an inventory at a clock and activity factor."""
    area = 0.0
    energy_pj_per_cycle = 0.0
    for unit, count in inventory.items():
        area += UNIT_AREA_UM2[unit] * count
        energy_pj_per_cycle += UNIT_ENERGY_PJ[unit] * count
    dynamic_w = energy_pj_per_cycle * 1e-12 * clock_hz * activity
    static_w = area * LEAKAGE_UW_PER_UM2 * 1e-6
    return DesignCost(name=name, area_um2=area, power_w=dynamic_w + static_w)


def synthesize_datapaths(clock_hz: float = FLEXON_CLOCK_HZ) -> Dict[str, DesignCost]:
    """Per-feature data-path costs (Figure 12's left group)."""
    return {
        name: synthesize(name, inventory, clock_hz, activity=1.0)
        for name, inventory in datapath_inventories().items()
    }


def synthesize_flexon_neuron(
    n_synapse_types: int = 2, clock_hz: float = FLEXON_CLOCK_HZ
) -> DesignCost:
    """One baseline Flexon neuron (Figure 12's 'Flexon' bar)."""
    return synthesize(
        "Flexon",
        flexon_inventory(n_synapse_types),
        clock_hz,
        activity=FLEXON_ACTIVITY,
    )


def synthesize_folded_neuron(clock_hz: float = FOLDED_CLOCK_HZ) -> DesignCost:
    """One folded Flexon neuron (Figure 12's 'Folded' bar)."""
    return synthesize(
        "Spatially Folded Flexon",
        folded_inventory(),
        clock_hz,
        activity=FOLDED_ACTIVITY,
    )


#: Per-logical-neuron SRAM footprint: 10 state words of 32 bits (v is
#: truncated to 22, Section IV-B1's saving) and, for the baseline
#: array, 16 constant words read alongside the state each cycle.
_STATE_BITS = 9 * 32 + 22
_CONST_BITS = 16 * 32

#: Default SRAM provisioning of the synthesized arrays. The baseline
#: array time-multiplexes up to 10K logical neurons (the largest
#: Table I workload) keeping per-neuron constants in SRAM for the wide
#: single-cycle read; the folded array holds constants once per
#: physical neuron in register buffers, streams only state, and is
#: provisioned for 20K logical neurons (its 72 physical neurons give it
#: the throughput headroom), split across more banks for bandwidth.
FLEXON_SRAM = SramConfig(
    name="flexon-array-sram",
    capacity_bits=10_000 * (_STATE_BITS + _CONST_BITS),
    banks=12,
    # Each cycle: 12 neurons read state + constants and write state.
    bandwidth_bits_per_second=(
        12 * (2 * _STATE_BITS + _CONST_BITS) * FLEXON_CLOCK_HZ
    ),
)
FOLDED_SRAM = SramConfig(
    name="folded-array-sram",
    capacity_bits=20_000 * _STATE_BITS + 72 * 32 * 32,
    banks=28,
    # 72 pipelines each touch a state word, a constant word, and a
    # microcode word per cycle (reads/writes every microcode cycle).
    bandwidth_bits_per_second=72 * (2 * 32 + 32 + 32) * FOLDED_CLOCK_HZ,
)


def flexon_array_cost(
    n_neurons: int = 12, sram: Optional[SramConfig] = None
) -> ArrayCost:
    """Table VI, first group: the 12-neuron baseline Flexon array."""
    neuron = synthesize_flexon_neuron()
    sram_config = sram if sram is not None else FLEXON_SRAM
    sram_area, sram_power = sram_cost(sram_config)
    return ArrayCost(
        name=f"Flexon ({n_neurons} neurons)",
        n_neurons=n_neurons,
        neuron_area_mm2=neuron.area_mm2 * n_neurons,
        neuron_power_w=neuron.power_w * n_neurons,
        sram_area_mm2=sram_area,
        sram_power_w=sram_power,
    )


def folded_array_cost(
    n_neurons: int = 72, sram: Optional[SramConfig] = None
) -> ArrayCost:
    """Table VI, second group: the 72-neuron folded Flexon array."""
    neuron = synthesize_folded_neuron()
    sram_config = sram if sram is not None else FOLDED_SRAM
    sram_area, sram_power = sram_cost(sram_config)
    return ArrayCost(
        name=f"Spatially Folded Flexon ({n_neurons} neurons)",
        n_neurons=n_neurons,
        neuron_area_mm2=neuron.area_mm2 * n_neurons,
        neuron_power_w=neuron.power_w * n_neurons,
        sram_area_mm2=sram_area,
        sram_power_w=sram_power,
    )
