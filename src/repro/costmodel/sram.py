"""CACTI-style SRAM area/power model (the paper used CACTI 6.5).

At 45 nm an SRAM subsystem costs roughly:

* **area** — an effective area per bit (6T cell plus routing,
  redundancy and array overheads) plus a per-bank periphery overhead
  (decoders, sense amplifiers, IO). High-bandwidth designs split
  capacity across more banks and pay more periphery;
* **dynamic power** — energy per bit transferred times the sustained
  read/write bandwidth;
* **leakage** — proportional to capacity.

The coefficients are calibrated so the Table VI array configurations
(:data:`repro.costmodel.synthesis.FLEXON_SRAM` / ``FOLDED_SRAM``) land
near the paper's 8.07 mm^2 / 0.751 W and 6.324 mm^2 / 1.179 W rows;
tests pin them to bands rather than exact values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

#: Effective area per stored bit [um^2] (0.35 um^2 raw 6T cell at
#: 45 nm, ~2.4x with periphery routing, redundancy and spacing).
AREA_UM2_PER_BIT = 0.85

#: Periphery overhead per bank [um^2].
AREA_UM2_PER_BANK = 52_000.0

#: Dynamic energy per bit read or written [pJ].
ENERGY_PJ_PER_BIT = 0.20

#: Leakage power per bit [uW].
LEAKAGE_UW_PER_BIT = 0.012


@dataclass(frozen=True)
class SramConfig:
    """One SRAM subsystem: capacity, banking, sustained bandwidth."""

    name: str
    capacity_bits: int
    banks: int
    bandwidth_bits_per_second: float

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ConfigurationError("SRAM capacity must be positive")
        if self.banks <= 0:
            raise ConfigurationError("SRAM needs at least one bank")
        if self.bandwidth_bits_per_second < 0:
            raise ConfigurationError("bandwidth must be non-negative")

    @property
    def capacity_mbytes(self) -> float:
        return self.capacity_bits / 8 / 2**20


def sram_cost(config: SramConfig) -> Tuple[float, float]:
    """(area_mm2, power_w) of one SRAM subsystem."""
    area_um2 = (
        config.capacity_bits * AREA_UM2_PER_BIT
        + config.banks * AREA_UM2_PER_BANK
    )
    dynamic_w = ENERGY_PJ_PER_BIT * 1e-12 * config.bandwidth_bits_per_second
    leakage_w = config.capacity_bits * LEAKAGE_UW_PER_BIT * 1e-6
    return area_um2 * 1e-6, dynamic_w + leakage_w
