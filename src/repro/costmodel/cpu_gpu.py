"""Latency and energy models of the baseline general-purpose hosts.

The paper profiles the Table I SNNs on an Intel Xeon E5-2630 v4
(12 cores, 2.2 GHz, NEST / GeNN CPU mode) and an NVIDIA Titan X Pascal
(GeNN). Without that hardware, we model each host as a throughput
abstraction calibrated to published simulator performance:

* **CPU (NEST)** — neuron updates cost ``ops x ns_per_op`` per core;
  the effective per-op cost bakes in NEST's interpretive overheads
  (virtual dispatch, ring-buffer handling), which dominate raw FLOP
  throughput. Work parallelises across the 12 cores with imperfect
  scaling; every phase also pays a per-step software overhead.
* **GPU (GeNN)** — enormous arithmetic throughput but a fixed kernel
  launch/synchronisation overhead per phase per step, which dominates
  for the small-to-mid SNNs of Table I. This is why GPU wins over CPU
  by ~10x on neuron computation, not by its raw FLOP ratio, and why
  Flexon still beats it (Figure 13).

Operation counts come from the reference models
(:meth:`~repro.models.base.NeuronModel.ops_per_update`) and solver
evaluation counts; exponentials are weighted as several simple ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError

#: Cost weight of one exponential relative to a simple arithmetic op.
EXP_OP_WEIGHT = 12.0


@dataclass(frozen=True)
class ProcessorSpec:
    """A general-purpose host as a calibrated throughput model."""

    name: str
    n_cores: int
    clock_hz: float
    #: Effective nanoseconds per arithmetic op on one core, including
    #: framework overheads.
    ns_per_op: float
    #: Parallel efficiency across cores (Amdahl-ish derating).
    parallel_efficiency: float
    #: Fixed software/kernel overhead per phase per time step [s].
    per_phase_overhead_s: float
    #: Nanoseconds per synaptic event (weight fetch + accumulate).
    ns_per_synaptic_event: float
    #: Nanoseconds per stimulus event (RNG + injection).
    ns_per_stimulus_event: float
    #: Board/package power while simulating [W].
    power_w: float

    def effective_cores(self) -> float:
        return max(1.0, self.n_cores * self.parallel_efficiency)


#: Intel Xeon E5-2630 v4 running NEST (PyNN front-end).
CPU_SPEC = ProcessorSpec(
    name="Xeon E5-2630 v4 (NEST)",
    n_cores=12,
    clock_hz=2.2e9,
    ns_per_op=6.0,
    parallel_efficiency=0.75,
    per_phase_overhead_s=4e-6,
    ns_per_synaptic_event=220.0,
    ns_per_stimulus_event=200.0,
    power_w=85.0,
)

#: NVIDIA Titan X (Pascal) running GeNN.
GPU_SPEC = ProcessorSpec(
    name="Titan X Pascal (GeNN)",
    n_cores=3584,
    clock_hz=1.4e9,
    ns_per_op=0.9,
    parallel_efficiency=0.02,  # per-neuron code is divergent/latency-bound
    per_phase_overhead_s=6e-6,
    ns_per_synaptic_event=1.5,
    ns_per_stimulus_event=3.0,
    power_w=250.0,
)


@dataclass(frozen=True)
class PhaseLatency:
    """Modeled per-time-step latency of the three phases [s]."""

    stimulus_s: float
    neuron_s: float
    synapse_s: float

    @property
    def total_s(self) -> float:
        return self.stimulus_s + self.neuron_s + self.synapse_s

    def fractions(self) -> Dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {"stimulus": 0.0, "neuron": 0.0, "synapse": 0.0}
        return {
            "stimulus": self.stimulus_s / total,
            "neuron": self.neuron_s / total,
            "synapse": self.synapse_s / total,
        }


def weighted_ops(ops: Dict[str, int]) -> float:
    """Collapse an op-count dict into equivalent simple ops."""
    simple = ops.get("mul", 0) + ops.get("add", 0) + ops.get("cmp", 0)
    return simple + EXP_OP_WEIGHT * ops.get("exp", 0)


def neuron_phase_latency(
    spec: ProcessorSpec,
    n_neurons: int,
    ops_per_update: Dict[str, int],
    evaluations_per_step: float = 1.0,
) -> float:
    """Modeled neuron-computation latency of one time step [s]."""
    if n_neurons < 0:
        raise ConfigurationError("n_neurons must be non-negative")
    total_ops = n_neurons * weighted_ops(ops_per_update) * evaluations_per_step
    compute = total_ops * spec.ns_per_op * 1e-9 / spec.effective_cores()
    return compute + spec.per_phase_overhead_s


def phase_latencies(
    spec: ProcessorSpec,
    n_neurons: int,
    ops_per_update: Dict[str, int],
    evaluations_per_step: float,
    synaptic_events_per_step: float,
    stimulus_events_per_step: float,
) -> PhaseLatency:
    """Modeled per-step latency of all three phases on one host."""
    cores = spec.effective_cores()
    neuron = neuron_phase_latency(
        spec, n_neurons, ops_per_update, evaluations_per_step
    )
    synapse = (
        synaptic_events_per_step * spec.ns_per_synaptic_event * 1e-9 / cores
        + spec.per_phase_overhead_s
    )
    stimulus = (
        stimulus_events_per_step * spec.ns_per_stimulus_event * 1e-9 / cores
        + spec.per_phase_overhead_s
    )
    return PhaseLatency(
        stimulus_s=stimulus, neuron_s=neuron, synapse_s=synapse
    )
