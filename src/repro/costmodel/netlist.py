"""Unit inventories: what each design instantiates.

The per-feature inventories come straight from the data-path classes
(:mod:`repro.hardware.datapaths`); this module adds the glue that turns
them into complete designs:

* **baseline Flexon** (Figure 10) replicates the conductance and
  reversal paths per synapse type, keeps a single spike-initiation pair
  (QDI + EXI behind a MUX), shares the ADT decay sub-path between SBT
  and RR (Section IV-B2), and adds the adder tree, firing comparator,
  gating latches and MUXes;
* **folded Flexon** (Figure 11) keeps exactly one multiplier, one
  adder and one exponential unit, plus operand MUXes, the tmp/v'
  registers, pipeline latches, and the control decoder.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.datapaths import (
    ALL_DATAPATHS,
    ArPath,
    CobaPath,
    CubExdLidPath,
    ExiPath,
    Inventory,
    QdiPath,
    RevPath,
    SbtPath,
)


def _scale(inventory: Inventory, factor: int) -> Inventory:
    return {unit: count * factor for unit, count in inventory.items()}


def _merge(*inventories: Inventory) -> Inventory:
    total: Inventory = {}
    for inventory in inventories:
        for unit, count in inventory.items():
            total[unit] = total.get(unit, 0) + count
    return total


def datapath_inventories() -> Dict[str, Inventory]:
    """Per-feature data-path inventories (Figure 12's left group).

    Each standalone path also carries one 32-bit input gating latch,
    the power-down mechanism of Figure 10.
    """
    out: Dict[str, Inventory] = {}
    for path in ALL_DATAPATHS:
        inventory = _merge(path.unit_inventory(), {"reg": 1})
        if path is ArPath:
            inventory = _merge(inventory, {"cnt": 1})
        out[path.name] = inventory
    return out


def flexon_inventory(n_synapse_types: int = 2) -> Inventory:
    """The complete baseline Flexon neuron (Figure 10)."""
    per_type = _merge(
        # COBA embeds COBE, so one COBA instance provides both kernels.
        CobaPath.unit_inventory(),
        RevPath.unit_inventory(),
        {"mux": 1, "reg": 1},  # kernel-select MUX + gating latch
    )
    spike_triggered = _merge(
        # SBT embeds the ADT decay sub-path; RR reuses it and adds the
        # r decay plus the two reversal couplings (Section IV-B2).
        SbtPath.unit_inventory(),
        {"mul": 3, "add": 2},  # RR's additions beyond the shared sub-path
        {"mux": 1, "reg": 2},
    )
    spike_initiation = _merge(
        QdiPath.unit_inventory(),
        ExiPath.unit_inventory(),
        {"mux": 1, "reg": 2},  # QDI/EXI select; EXI critical-path latch
    )
    glue = {
        "add": 7,  # adder tree over the per-feature contributions
        "cmp": 1,  # firing comparator
        "mux": 3,  # reset MUX, decay select, accumulation select
        "reg": 6,  # input/output latches
    }
    return _merge(
        CubExdLidPath.unit_inventory(),
        _scale(per_type, n_synapse_types),
        spike_triggered,
        spike_initiation,
        ArPath.unit_inventory(),
        {"cnt": 1},
        glue,
    )


def folded_inventory() -> Inventory:
    """The spatially folded Flexon neuron (Figure 11)."""
    return {
        "mul": 1,
        "add": 2,  # the shared adder + the v' accumulator adder
        "exp": 1,
        "cmp": 2,  # firing comparator + LID leak clamp
        "mux": 7,  # a/b operand selects, state read/write selects
        "reg": 8,  # tmp, v', pipeline latches, operand latches
        "ctrl": 1,  # control-signal decoder / sequencer
        "cnt": 1,
    }
