"""Analytical 45 nm cost models (the synthesis substitute).

The paper's hardware numbers come from Synopsys Design Compiler with a
TSMC 45 nm standard-cell library, plus CACTI 6.5 for SRAM. Offline and
in Python, we substitute calibrated analytical models:

* :mod:`repro.costmodel.units` — per-arithmetic-unit area and switching
  energy at 45 nm, calibrated so the composed designs land on the
  paper's aggregate numbers (Figure 12, Table VI);
* :mod:`repro.costmodel.netlist` — unit inventories for each per-feature
  data path, the full baseline Flexon, and folded Flexon;
* :mod:`repro.costmodel.synthesis` — inventory -> area/power
  composition (the "synthesis" step);
* :mod:`repro.costmodel.sram` — a CACTI-style SRAM area/power model;
* :mod:`repro.costmodel.cpu_gpu` — latency/energy models for the
  baseline Xeon E5-2630 v4 (NEST) and Titan X Pascal (GeNN);
* :mod:`repro.costmodel.energy` — energy-efficiency arithmetic for
  Figure 13b.
"""

from repro.costmodel.units import UNIT_AREA_UM2, UNIT_ENERGY_PJ
from repro.costmodel.netlist import (
    datapath_inventories,
    flexon_inventory,
    folded_inventory,
)
from repro.costmodel.synthesis import (
    DesignCost,
    synthesize,
    synthesize_datapaths,
    synthesize_flexon_neuron,
    synthesize_folded_neuron,
    flexon_array_cost,
    folded_array_cost,
    ArrayCost,
)
from repro.costmodel.sram import SramConfig, sram_cost
from repro.costmodel.cpu_gpu import (
    CPU_SPEC,
    GPU_SPEC,
    PhaseLatency,
    ProcessorSpec,
    phase_latencies,
)
from repro.costmodel.energy import energy_joules, improvement

__all__ = [
    "ArrayCost",
    "CPU_SPEC",
    "DesignCost",
    "GPU_SPEC",
    "PhaseLatency",
    "ProcessorSpec",
    "SramConfig",
    "UNIT_AREA_UM2",
    "UNIT_ENERGY_PJ",
    "datapath_inventories",
    "energy_joules",
    "flexon_array_cost",
    "flexon_inventory",
    "folded_array_cost",
    "folded_inventory",
    "improvement",
    "phase_latencies",
    "sram_cost",
    "synthesize",
    "synthesize_datapaths",
    "synthesize_flexon_neuron",
    "synthesize_folded_neuron",
]
