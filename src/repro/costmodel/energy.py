"""Energy-efficiency arithmetic for Figure 13b.

The paper compares *energy efficiency of neuron simulation*: the
energy each platform spends on the neuron-computation phase of one
time step. Efficiency improvement of platform B over platform A is
``E_A / E_B`` (higher is better for B).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError


def energy_joules(power_w: float, seconds: float) -> float:
    """Energy spent holding ``power_w`` for ``seconds``."""
    if power_w < 0 or seconds < 0:
        raise ConfigurationError("power and time must be non-negative")
    return power_w * seconds


def improvement(baseline: float, contender: float) -> float:
    """How many times smaller ``contender`` is than ``baseline``.

    Used for both latency speedups and energy-efficiency improvements
    (both are "baseline cost / our cost").
    """
    if contender <= 0:
        raise ConfigurationError("contender cost must be positive")
    return baseline / contender


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregate for Figure 13."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
