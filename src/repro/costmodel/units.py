"""Per-unit 45 nm area and energy constants.

These are the "standard cells" of the analytical synthesis model:
area in um^2 and switching energy in pJ per operation for 32-bit
fixed-point units at the paper's clock targets. The absolute values
are in the range published for 45 nm arithmetic (e.g. Horowitz's
energy-per-op surveys: a 32-bit integer multiply is a few pJ, an add a
few tenths of a pJ) and are *calibrated* so that the composed baseline
Flexon and folded Flexon neurons land on the paper's Figure 12 /
Table VI aggregates. Tests pin the calibration: the Flexon:folded area
ratio must stay in the paper's 5-6x band and the absolute neuron areas
within tens of percent of Table VI.

Unit kinds:

``mul``    32-bit fixed-point multiplier
``add``    32-bit adder/subtractor
``exp``    Schraudolph exponential unit (shift/add network + small mul)
``cmp``    32-bit comparator
``mux``    32-bit 2:1 multiplexer
``reg``    32-bit pipeline latch/register
``ctrl``   control/decode logic block (folded Flexon's sequencer)
``cnt``    refractory down-counter (8-bit, saturating)
"""

#: Area per unit instance [um^2].
UNIT_AREA_UM2 = {
    "mul": 4400.0,
    "add": 350.0,
    "exp": 7800.0,
    "cmp": 150.0,
    "mux": 120.0,
    "reg": 230.0,
    "ctrl": 1400.0,
    "cnt": 180.0,
}

#: Switching energy per operation [pJ].
UNIT_ENERGY_PJ = {
    "mul": 3.1,
    "add": 0.30,
    "exp": 2.6,
    "cmp": 0.10,
    "mux": 0.05,
    "reg": 0.15,
    "ctrl": 0.80,
    "cnt": 0.08,
}

#: Static (leakage) power density for 45 nm logic [uW per um^2].
LEAKAGE_UW_PER_UM2 = 0.018

#: Average activity factor of the baseline Flexon's data paths: unused
#: paths are latched off (Figure 10), so only the configured model's
#: units switch each cycle.
FLEXON_ACTIVITY = 0.65

#: The folded design's shared units are busy every cycle.
FOLDED_ACTIVITY = 1.0
