"""The delay-bucketed spike ring: one population's in-flight spikes.

Output spikes propagate "after a certain number of time steps, or
delay, associated to each synapse" (Section II-C). A :class:`DelayRing`
holds one accumulation bucket per future step, indexed by
``(step + delay) % (max_delay + 1)``; enqueueing a spike adds its
synaptic weight into the bucket ``delay`` steps ahead, and each step
the simulator consumes the current bucket as that population's
accumulated ``(n_synapse_types, n)`` input.

Two things distinguish the ring from the legacy ``SpikeQueue`` it
replaces:

* **Integral event accounting.** Alongside the float weight buckets the
  ring keeps a per-bucket *event count* (``int64``), so "how many
  deliveries are in flight" is an exact integer — ``pending_total()``
  — while the accumulated weight is a separate, honestly-float
  ``pending_weight()``. Telemetry publishes both without ever casting
  a count through a float.

* **A min-delay-aware flush window.** Every synapse into this
  population has ``delay >= min_delay``, so once step ``t``'s enqueues
  are done, the buckets for steps ``t .. t + min_delay`` can receive no
  further *synaptic* traffic — a spike generated at step ``t' > t``
  lands at ``t' + delay >= t + 1 + min_delay``. :meth:`flush_window`
  exposes the first ``min_delay`` of those final buckets as one batch;
  that is exactly the unit a sharded cross-worker exchange ships, so
  workers need to synchronise only every ``min_delay`` steps instead of
  every step. (Stimulus injection via :meth:`enqueue_now` targets only
  the current head at its own step, so it never invalidates a window
  taken after the stimulus phase.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class DelayRing:
    """Ring of per-step accumulation buckets for one population."""

    def __init__(
        self,
        n: int,
        n_synapse_types: int,
        max_delay: int,
        min_delay: int = 1,
    ):
        if max_delay < 1:
            raise SimulationError(f"max_delay must be >= 1, got {max_delay}")
        if not 1 <= min_delay <= max_delay:
            raise SimulationError(
                f"min_delay must be in 1..{max_delay}, got {min_delay}"
            )
        self.n = n
        self.n_synapse_types = n_synapse_types
        self.min_delay = min_delay
        self.depth = max_delay + 1
        self._ring = np.zeros(
            (self.depth, n_synapse_types, n), dtype=np.float64
        )
        #: Events accumulated per bucket (delivery multiplicity, exact).
        self._counts = np.zeros(self.depth, dtype=np.int64)
        self._head = 0
        #: Lifetime count of spike deliveries accumulated into the ring
        #: (telemetry; published as ``ring_events_enqueued_total`` and,
        #: under its legacy name, ``spike_queue_enqueued_total``).
        self.enqueued_events = 0

    # -- enqueue -----------------------------------------------------------

    def enqueue(
        self,
        post_idx: np.ndarray,
        weights: np.ndarray,
        delays: np.ndarray,
        syn_type: int,
    ) -> None:
        """Accumulate spike weights arriving ``delays`` steps from now."""
        if post_idx.size == 0:
            return
        if np.any(delays < 1) or np.any(delays >= self.depth):
            raise SimulationError(
                f"delay out of range 1..{self.depth - 1} for this ring"
            )
        slots = (self._head + delays) % self.depth
        np.add.at(self._ring, (slots, syn_type, post_idx), weights)
        np.add.at(self._counts, slots, 1)
        self.enqueued_events += post_idx.size

    def deposit(
        self,
        post_idx: np.ndarray,
        weights: np.ndarray,
        offsets: np.ndarray,
        syn_type: int,
    ) -> None:
        """Accumulate weights at absolute bucket offsets from the head.

        Unlike :meth:`enqueue`, offset 0 (the current bucket) is legal:
        a sharded barrier replays the *previous* window's spikes after
        the fact, so an arrival that would have been enqueued ``w``
        steps ago with delay ``d`` now lands at offset ``d - w >= 0``.
        The accumulation is element-wise ``np.add.at``, exactly as
        :meth:`enqueue` performs it, so a replay that presents arrivals
        in the original enqueue order reproduces bit-identical sums.
        """
        if post_idx.size == 0:
            return
        if np.any(offsets < 0) or np.any(offsets >= self.depth):
            raise SimulationError(
                f"deposit offset out of range 0..{self.depth - 1} "
                "for this ring"
            )
        slots = (self._head + offsets) % self.depth
        np.add.at(self._ring, (slots, syn_type, post_idx), weights)
        np.add.at(self._counts, slots, 1)
        self.enqueued_events += post_idx.size

    def enqueue_now(
        self, post_idx: np.ndarray, weights: np.ndarray, syn_type: int
    ) -> None:
        """Accumulate weights into the bucket popped at the *current* step.

        Used by stimulus generation, which injects into the present
        time step before the neuron-computation phase runs.
        """
        if post_idx.size == 0:
            return
        np.add.at(self._ring, (self._head, syn_type, post_idx), weights)
        self._counts[self._head] += post_idx.size
        self.enqueued_events += post_idx.size

    # -- consume -----------------------------------------------------------

    def current(self) -> np.ndarray:
        """The ``(n_synapse_types, n)`` input accumulated for this step.

        A live (writable) view: fault injectors mutate it in place.
        """
        return self._ring[self._head]

    def current_events(self) -> int:
        """Deliveries accumulated into the current bucket (exact count).

        Zero means the current input is provably all-silent — the
        event-driven runtimes use this to skip scanning the dense
        input array entirely.
        """
        return int(self._counts[self._head])

    def rotate(self) -> None:
        """Clear the consumed bucket and advance to the next step."""
        self._ring[self._head][:] = 0.0
        self._counts[self._head] = 0
        self._head = (self._head + 1) % self.depth

    # -- batched flush (cross-worker exchange seam) ------------------------

    @property
    def flush_horizon(self) -> int:
        """Buckets per flush batch (= ``min_delay``, the sync period)."""
        return self.min_delay

    def flush_window(self, horizon: int = 0) -> np.ndarray:
        """Copy of the next ``horizon`` buckets, in delivery order.

        ``horizon`` defaults to :attr:`flush_horizon`. The returned
        ``(horizon, n_synapse_types, n)`` array equals the sequence of
        :meth:`current` pops over the next ``horizon`` rotations,
        provided no further enqueues land meanwhile — which the
        min-delay contract guarantees for synaptic traffic once the
        current step's enqueues are done.
        """
        horizon = horizon or self.min_delay
        if not 1 <= horizon <= self.depth:
            raise SimulationError(
                f"flush horizon must be in 1..{self.depth}, got {horizon}"
            )
        slots = (self._head + np.arange(horizon)) % self.depth
        return self._ring[slots].copy()

    def flush_events(self, horizon: int = 0) -> np.ndarray:
        """Per-bucket event counts of the flush window (``int64``)."""
        horizon = horizon or self.min_delay
        if not 1 <= horizon <= self.depth:
            raise SimulationError(
                f"flush horizon must be in 1..{self.depth}, got {horizon}"
            )
        slots = (self._head + np.arange(horizon)) % self.depth
        return self._counts[slots].copy()

    # -- accounting --------------------------------------------------------

    def pending_total(self) -> int:
        """Number of enqueued deliveries not yet consumed (exact int)."""
        return int(self._counts.sum())

    def pending_weight(self) -> float:
        """Sum of all queued weight (useful for conservation tests)."""
        return float(self._ring.sum())

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """The full ring contents and head position (checkpointing)."""
        return {
            "ring": self._ring.copy(),
            "counts": self._counts.copy(),
            "head": self._head,
            "min_delay": self.min_delay,
            "enqueued_events": self.enqueued_events,
        }

    def restore(self, snapshot: dict) -> None:
        """Overwrite the ring from a :meth:`snapshot`."""
        ring = np.asarray(snapshot["ring"], dtype=np.float64)
        if ring.shape != self._ring.shape:
            raise SimulationError(
                f"snapshot ring shape {ring.shape} does not match "
                f"{self._ring.shape}"
            )
        head = int(snapshot["head"])
        if not 0 <= head < self.depth:
            raise SimulationError(f"snapshot head {head} out of range")
        counts = np.asarray(
            snapshot.get("counts", np.zeros(self.depth)), dtype=np.int64
        )
        if counts.shape != self._counts.shape:
            raise SimulationError(
                f"snapshot counts shape {counts.shape} does not match "
                f"{self._counts.shape}"
            )
        self._ring[:] = ring
        self._counts[:] = counts
        self._head = head
        self.enqueued_events = int(snapshot.get("enqueued_events", 0))
