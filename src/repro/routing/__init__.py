"""Delay-bucketed spike routing shared by every execution path.

Spike delivery used to live in ``repro.network.spike_queue`` as a
per-population ring owned directly by the simulator. This package
hoists that structure into a routing layer of its own so one delivery
mechanism serves every consumer:

* the three-phase :class:`~repro.network.simulator.Simulator` loop,
* the event-driven hardware runtimes (which bind their population's
  ring to short-circuit idle classification),
* checkpoint capture/restore (the ring snapshot is the unit of
  in-flight-spike state),
* and, next, the sharded cross-worker spike exchange — the
  min-delay-aware :meth:`DelayRing.flush_window` API is sized exactly
  for the "sync every min-delay steps" batching the FPGA and
  lazy-plasticity papers use.

:class:`DelayRing` is the single-population delay-bucketed ring:
per-synapse-type accumulation buckets indexed by
``(step + delay) % (max_delay + 1)``, with integral per-bucket event
counts alongside the accumulated weights. :class:`SpikeRouter` owns
one ring per population, sized from the network's actual incoming
delays, and is the seam the simulator, the checkpoint layer, and the
metrics publisher all talk to.
"""

from repro.routing.ring import DelayRing
from repro.routing.router import SpikeRouter

__all__ = ["DelayRing", "SpikeRouter"]
