"""SpikeRouter: every population's delay ring behind one seam.

The simulator, the checkpoint layer, the fault injectors, and the
telemetry publisher used to each walk their own dict of per-population
spike queues. The router is that dict promoted to a first-class object
with the three operations they all actually need — look up a ring,
advance every ring one step, snapshot/restore the lot — plus the
network-shape analysis that sizes each ring from the delays that can
actually reach it.

Sizing matters twice:

* each ring's **depth** is the largest *incoming* delay of its
  population (not the network-wide maximum), so a population fed only
  by short-delay projections does not carry dead buckets;
* each ring's **min_delay** is the smallest incoming delay — the
  population's flush horizon, i.e. how many consecutive buckets are
  final once a step's enqueues are done. A future sharded exchange
  batches cross-worker spike traffic on exactly this horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import SimulationError
from repro.routing.ring import DelayRing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.network import Network


class SpikeRouter:
    """Owns one :class:`DelayRing` per population."""

    def __init__(self, rings: Dict[str, DelayRing]):
        self._rings = dict(rings)

    @staticmethod
    def delay_bounds(network: "Network") -> Dict[str, tuple]:
        """Per-population ``(min, max)`` incoming synaptic delay bounds.

        Populations with no incoming projection are absent; callers
        default them to ``(1, 1)``. Exposed separately from
        :meth:`from_network` because a shard slicing a population must
        size its partial ring from the *full* network's bounds — the
        subset of projections that happens to land on the slice could
        otherwise disagree with the ring geometry of the whole.
        """
        bounds: Dict[str, tuple] = {}
        for projection in network.projections:
            name = projection.post.name
            lo, hi = bounds.get(name, (None, 1))
            p_lo, p_hi = projection.min_delay, projection.max_delay
            lo = p_lo if lo is None else min(lo, p_lo)
            bounds[name] = (lo, max(hi, p_hi))
        return bounds

    @classmethod
    def from_network(cls, network: "Network") -> "SpikeRouter":
        """Build per-population rings sized from actual incoming delays.

        Populations with no incoming projection still get a minimal
        ring (depth 2, min_delay 1): stimuli inject into the current
        bucket and the neuron phase always consumes one.
        """
        bounds = cls.delay_bounds(network)
        rings = {}
        for name, population in network.populations.items():
            min_delay, max_delay = bounds.get(name, (1, 1))
            rings[name] = DelayRing(
                population.n,
                population.n_synapse_types,
                max_delay,
                min_delay=min_delay,
            )
        return cls(rings)

    # -- lookup ------------------------------------------------------------

    @property
    def rings(self) -> Dict[str, DelayRing]:
        """All rings, keyed by population name."""
        return self._rings

    def ring(self, population: str) -> DelayRing:
        try:
            return self._rings[population]
        except KeyError:
            known = ", ".join(self._rings) or "<none>"
            raise SimulationError(
                f"no ring for population {population!r}; known: {known}"
            ) from None

    # -- stepping ----------------------------------------------------------

    def rotate_all(self) -> None:
        """Advance every ring one step (end of the simulation step)."""
        for ring in self._rings.values():
            ring.rotate()

    # -- accounting --------------------------------------------------------

    def pending_total(self) -> int:
        """In-flight deliveries across all rings (exact int)."""
        return sum(ring.pending_total() for ring in self._rings.values())

    def enqueued_total(self) -> int:
        """Lifetime deliveries accumulated across all rings."""
        return sum(ring.enqueued_events for ring in self._rings.values())

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        return {name: ring.snapshot() for name, ring in self._rings.items()}

    def restore(self, payload: Dict[str, dict]) -> None:
        """Restore every ring, validating shape *here*, by name.

        Mismatches raise with the offending population and field in the
        message instead of surfacing as an anonymous array-shape error
        deep inside :class:`DelayRing`.
        """
        missing = sorted(set(self._rings) - set(payload))
        unexpected = sorted(set(payload) - set(self._rings))
        if missing or unexpected:
            raise SimulationError(
                "router snapshot population mismatch: "
                f"missing={missing or '[]'} unexpected={unexpected or '[]'}"
            )
        for name, ring in self._rings.items():
            self._validate_ring_payload(name, ring, payload[name])
        for name, ring in self._rings.items():
            ring.restore(payload[name])

    @staticmethod
    def _validate_ring_payload(
        name: str, ring: DelayRing, ring_payload: dict
    ) -> None:
        if not isinstance(ring_payload, dict):
            raise SimulationError(
                f"population {name!r}: ring snapshot must be a dict, "
                f"got {type(ring_payload).__name__}"
            )
        for field in ("ring", "head"):
            if field not in ring_payload:
                raise SimulationError(
                    f"population {name!r}: ring snapshot missing "
                    f"field {field!r}"
                )
        shape = tuple(
            int(s) for s in getattr(ring_payload["ring"], "shape", ())
        )
        if len(shape) != 3:
            raise SimulationError(
                f"population {name!r}: ring snapshot must be "
                f"3-dimensional, got shape {shape}"
            )
        depth, n_syn, n = shape
        if depth != ring.depth:
            raise SimulationError(
                f"population {name!r}: ring depth mismatch — snapshot "
                f"has {depth} buckets, this router expects {ring.depth}"
            )
        if n_syn != ring.n_synapse_types:
            raise SimulationError(
                f"population {name!r}: synapse-type mismatch — snapshot "
                f"has {n_syn}, this router expects {ring.n_synapse_types}"
            )
        if n != ring.n:
            raise SimulationError(
                f"population {name!r}: size mismatch — snapshot holds "
                f"{n} neurons, this router expects {ring.n}"
            )
        head = int(ring_payload["head"])
        if not 0 <= head < ring.depth:
            raise SimulationError(
                f"population {name!r}: snapshot head {head} out of "
                f"range 0..{ring.depth - 1}"
            )

    # -- telemetry ---------------------------------------------------------

    def publish_metrics(self, metrics) -> None:
        """Publish per-ring routing counters (collect-time only)."""
        for name, ring in self._rings.items():
            labels = {"population": name}
            metrics.counter(
                "ring_events_enqueued_total",
                "Spike deliveries accumulated into the delay ring.",
                labels,
            ).set_total(ring.enqueued_events)
            metrics.gauge(
                "ring_pending_events",
                "In-flight deliveries awaiting their arrival step.",
                labels,
            ).set(ring.pending_total())
            metrics.gauge(
                "ring_flush_horizon_steps",
                "Min-delay flush horizon (cross-worker batch size).",
                labels,
            ).set(ring.flush_horizon)
