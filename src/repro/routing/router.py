"""SpikeRouter: every population's delay ring behind one seam.

The simulator, the checkpoint layer, the fault injectors, and the
telemetry publisher used to each walk their own dict of per-population
spike queues. The router is that dict promoted to a first-class object
with the three operations they all actually need — look up a ring,
advance every ring one step, snapshot/restore the lot — plus the
network-shape analysis that sizes each ring from the delays that can
actually reach it.

Sizing matters twice:

* each ring's **depth** is the largest *incoming* delay of its
  population (not the network-wide maximum), so a population fed only
  by short-delay projections does not carry dead buckets;
* each ring's **min_delay** is the smallest incoming delay — the
  population's flush horizon, i.e. how many consecutive buckets are
  final once a step's enqueues are done. A future sharded exchange
  batches cross-worker spike traffic on exactly this horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import SimulationError
from repro.routing.ring import DelayRing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.network import Network


class SpikeRouter:
    """Owns one :class:`DelayRing` per population."""

    def __init__(self, rings: Dict[str, DelayRing]):
        self._rings = dict(rings)

    @classmethod
    def from_network(cls, network: "Network") -> "SpikeRouter":
        """Build per-population rings sized from actual incoming delays.

        Populations with no incoming projection still get a minimal
        ring (depth 2, min_delay 1): stimuli inject into the current
        bucket and the neuron phase always consumes one.
        """
        bounds: Dict[str, tuple] = {}
        for projection in network.projections:
            name = projection.post.name
            lo, hi = bounds.get(name, (None, 1))
            p_lo, p_hi = projection.min_delay, projection.max_delay
            lo = p_lo if lo is None else min(lo, p_lo)
            bounds[name] = (lo, max(hi, p_hi))
        rings = {}
        for name, population in network.populations.items():
            min_delay, max_delay = bounds.get(name, (1, 1))
            rings[name] = DelayRing(
                population.n,
                population.n_synapse_types,
                max_delay,
                min_delay=min_delay,
            )
        return cls(rings)

    # -- lookup ------------------------------------------------------------

    @property
    def rings(self) -> Dict[str, DelayRing]:
        """All rings, keyed by population name."""
        return self._rings

    def ring(self, population: str) -> DelayRing:
        try:
            return self._rings[population]
        except KeyError:
            known = ", ".join(self._rings) or "<none>"
            raise SimulationError(
                f"no ring for population {population!r}; known: {known}"
            ) from None

    # -- stepping ----------------------------------------------------------

    def rotate_all(self) -> None:
        """Advance every ring one step (end of the simulation step)."""
        for ring in self._rings.values():
            ring.rotate()

    # -- accounting --------------------------------------------------------

    def pending_total(self) -> int:
        """In-flight deliveries across all rings (exact int)."""
        return sum(ring.pending_total() for ring in self._rings.values())

    def enqueued_total(self) -> int:
        """Lifetime deliveries accumulated across all rings."""
        return sum(ring.enqueued_events for ring in self._rings.values())

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        return {name: ring.snapshot() for name, ring in self._rings.items()}

    def restore(self, payload: Dict[str, dict]) -> None:
        if set(payload) != set(self._rings):
            raise SimulationError(
                "snapshot populations do not match this router's"
            )
        for name, ring_payload in payload.items():
            self._rings[name].restore(ring_payload)

    # -- telemetry ---------------------------------------------------------

    def publish_metrics(self, metrics) -> None:
        """Publish per-ring routing counters (collect-time only)."""
        for name, ring in self._rings.items():
            labels = {"population": name}
            metrics.counter(
                "ring_events_enqueued_total",
                "Spike deliveries accumulated into the delay ring.",
                labels,
            ).set_total(ring.enqueued_events)
            metrics.gauge(
                "ring_pending_events",
                "In-flight deliveries awaiting their arrival step.",
                labels,
            ).set(ring.pending_total())
            metrics.gauge(
                "ring_flush_horizon_steps",
                "Min-delay flush horizon (cross-worker batch size).",
                labels,
            ).set(ring.flush_horizon)
