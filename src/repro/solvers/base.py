"""Solver interface.

A solver advances one population's state by one simulation time step,
given the accumulated synaptic input for that step, and reports which
neurons fired. It also tracks how many derivative evaluations it has
performed — the CPU/GPU cost models charge neuron computation by
evaluation count, which is how Euler-vs-RKF45 shows up in Figure 3.

Solvers run inside the engine layer's
:class:`~repro.engine.runtime.SolverRuntime`: one solver instance per
population, driving dict-of-arrays state. Euler-integrated feature
models usually bypass the solver entirely via a compiled
:class:`~repro.engine.plan.StepPlan` (bit-identical, faster); RKF45
and models with private step semantics always take this path, keeping
the adaptive smooth/jump split intact.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.models.base import NeuronModel, State


class Solver(abc.ABC):
    """Advances neuron dynamics one simulation time step at a time."""

    #: Canonical name as spelled in Table I ("Euler" / "RKF45").
    name: str = "abstract"

    def __init__(self) -> None:
        #: Total derivative (or step-function) evaluations performed.
        self.evaluations = 0
        #: Total advance() calls performed.
        self.advances = 0

    @abc.abstractmethod
    def advance(
        self,
        model: NeuronModel,
        state: State,
        inputs: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        """Advance ``state`` by ``dt`` in place; return the fired mask."""

    def evaluations_per_step(self) -> float:
        """Average evaluations charged per advance() call so far."""
        if self.advances == 0:
            return 1.0
        return self.evaluations / self.advances

    def reset_counters(self) -> None:
        """Zero the counters (e.g. between profiling runs)."""
        self.evaluations = 0
        self.advances = 0
