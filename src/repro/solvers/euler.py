"""Forward Euler solver.

One evaluation per step, using the model's paper-exact discrete update
(:meth:`~repro.models.base.NeuronModel.step`). This is the integration
scheme the Flexon hardware implements, so reference simulations run
with Euler are the ground truth for the Section VI-A spike-equivalence
validation.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import NeuronModel, State
from repro.solvers.base import Solver


class EulerSolver(Solver):
    """Single-evaluation forward Euler integration."""

    name = "Euler"

    def advance(
        self,
        model: NeuronModel,
        state: State,
        inputs: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        self.evaluations += 1
        self.advances += 1
        return model.step(state, inputs, dt)
