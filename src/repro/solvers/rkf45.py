"""Runge-Kutta-Fehlberg 4(5) adaptive solver.

Implements the embedded RKF45 pair (Fehlberg 1969, the paper's
reference [37]) with standard step-size control. Within each simulation
time step the smooth dynamics are integrated adaptively; input-spike
jumps and fire/reset events are applied at step boundaries, mirroring
how NEST treats spiking discontinuities with adaptive solvers.

The per-advance derivative-evaluation count (6 per attempted substep,
more when steps are rejected) feeds the CPU/GPU cost models: it is the
mechanism by which RKF45 workloads show larger neuron-computation
shares in Figure 3.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.models.base import NeuronModel, State
from repro.solvers.base import Solver

# Fehlberg's classic coefficients.
_A = (
    (),
    (1.0 / 4.0,),
    (3.0 / 32.0, 9.0 / 32.0),
    (1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0),
    (439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0),
    (-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0),
)
#: 5th-order weights (the propagated solution).
_B5 = (16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0)
#: 4th-order weights (for the error estimate).
_B4 = (25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0)

_SAFETY = 0.9
_MIN_SCALE = 0.2
_MAX_SCALE = 5.0


def rkf45_integrate(
    f: Callable[[float, np.ndarray], np.ndarray],
    y0: np.ndarray,
    t0: float,
    t1: float,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    h0: float = 0.0,
    max_steps: int = 10_000,
) -> Tuple[np.ndarray, int]:
    """Integrate ``dy/dt = f(t, y)`` from ``t0`` to ``t1`` adaptively.

    Returns ``(y(t1), n_evaluations)``. Raises
    :class:`~repro.errors.SimulationError` if the controller cannot
    reach ``t1`` within ``max_steps`` attempted substeps.
    """
    t = float(t0)
    y = np.array(y0, dtype=np.float64, copy=True)
    span = float(t1) - t
    if span <= 0.0:
        return y, 0
    h = h0 if h0 > 0.0 else span
    evaluations = 0
    for _ in range(max_steps):
        if t >= t1:
            return y, evaluations
        h = min(h, t1 - t)
        k = [f(t, y)]
        for stage in range(1, 6):
            y_stage = y.copy()
            for j, a in enumerate(_A[stage]):
                y_stage += (h * a) * k[j]
            k.append(f(t + h * sum(_A[stage]), y_stage))
        evaluations += 6
        y5 = y.copy()
        y4 = y.copy()
        for weight5, weight4, ki in zip(_B5, _B4, k):
            if weight5:
                y5 += (h * weight5) * ki
            if weight4:
                y4 += (h * weight4) * ki
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        error = float(np.max(np.abs(y5 - y4) / scale)) if y.size else 0.0
        if error <= 1.0:
            t += h
            y = y5
            grow = _SAFETY * (error ** -0.2) if error > 0.0 else _MAX_SCALE
            h *= min(_MAX_SCALE, max(_MIN_SCALE, grow))
        else:
            h *= max(_MIN_SCALE, _SAFETY * (error ** -0.2))
    raise SimulationError(
        f"RKF45 failed to reach t={t1} within {max_steps} substeps"
    )


class RKF45Solver(Solver):
    """Adaptive RKF45 integration of a model's smooth dynamics.

    Per simulation step: apply input jumps, integrate the continuous
    part over ``dt`` adaptively, then run the fire/reset phase.
    """

    name = "RKF45"

    def __init__(self, rtol: float = 1e-5, atol: float = 1e-8):
        super().__init__()
        self.rtol = rtol
        self.atol = atol

    def advance(
        self,
        model: NeuronModel,
        state: State,
        inputs: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        model.apply_input_jumps(state, inputs)
        names = list(state)
        y0 = np.stack([state[name] for name in names])

        def rhs(_t: float, y: np.ndarray) -> np.ndarray:
            snapshot: State = {
                name: y[i] for i, name in enumerate(names)
            }
            deriv = model.derivatives(snapshot)
            return np.stack(
                [deriv.get(name, np.zeros_like(y[i])) for i, name in enumerate(names)]
            )

        y1, evaluations = rkf45_integrate(
            rhs, y0, 0.0, dt, rtol=self.rtol, atol=self.atol, h0=dt
        )
        self.evaluations += evaluations
        self.advances += 1
        for i, name in enumerate(names):
            state[name][:] = y1[i]
        return model.fire_and_reset(state, dt)

    def evaluations_per_step(self) -> float:
        if self.advances == 0:
            return 6.0  # one accepted substep minimum
        return self.evaluations / self.advances
