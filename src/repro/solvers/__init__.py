"""ODE solvers used by the reference SNN simulator.

Table I workloads integrate their neuron dynamics with either the
forward Euler method (cheap; the method the hardware discretisation
mirrors) or the adaptive Runge-Kutta-Fehlberg 4(5) method (RKF45;
expensive, high accuracy). The choice matters for the Figure 3 latency
breakdown — RKF45 multiplies the neuron-computation cost by its stage
evaluations — so both are implemented here.
"""

from repro.solvers.base import Solver
from repro.solvers.euler import EulerSolver
from repro.solvers.rkf45 import RKF45Solver, rkf45_integrate

__all__ = ["EulerSolver", "RKF45Solver", "Solver", "rkf45_integrate"]


def create_solver(name: str) -> Solver:
    """Instantiate a solver by its Table I name ('Euler' or 'RKF45')."""
    lowered = name.lower()
    if lowered == "euler":
        return EulerSolver()
    if lowered == "rkf45":
        return RKF45Solver()
    raise ValueError(f"unknown solver {name!r}; use 'Euler' or 'RKF45'")
