"""The supervised worker: one simulation job in one spawned process.

:func:`worker_entry` is the ``multiprocessing`` target. It is
spawn-safe by construction: the process receives nothing but a pipe
connection; the first message on the pipe is the serialized
:class:`~repro.supervision.job.JobSpec` plus attempt context, and every
result travels back over the same pipe:

``("started", {...})``
    Sent once the simulator is built, with ``resumed_from_step`` > 0
    when a previous attempt's checkpoint was restored.
``("heartbeat", {"step": ..., "phase": ..., "rss_bytes": ...,
"cpu_seconds": ...})``
    The progress signal the supervisor's watchdog feeds on. Emitted
    from the per-phase event stream, throttled by wall clock so the
    hot loop pays one ``monotonic()`` read per phase. Each heartbeat
    carries a fresh :mod:`repro.health.resources` sample, so the
    supervisor exposes per-job RSS/CPU gauges without a second wire
    protocol (older supervisors ignore the extra keys).
``("done", {...})``
    Final spike digest, counts, run statistics, and the measured
    per-unit activity profile.
``("log", {...})``
    One structured ``repro-log/1`` record (see
    :mod:`repro.observability.log`), stamped with the sweep's
    ``run_id`` plus the job/attempt context — the supervisor merges
    these into the one ordered stream ``SweepReport.log_records``
    exposes, so worker logs survive the worker.
``("failed", {"kind": ..., "error": ..., "step": ..., "traceback":
..., "flight": {...}})``
    A structured failure the worker caught itself: ``numerics`` from
    the :class:`~repro.reliability.guard.NumericsGuard`, ``oom-like``
    from ``MemoryError``, ``crash`` for anything else — with the full
    traceback text and the flight-recorder dump riding along. Failures
    the worker *cannot* report (SIGKILL, a hard hang) are classified by
    the supervisor from the process exit code and heartbeat record; for
    those, the flight recorder's atomically-synced *sidecar file* and
    the captured stdout/stderr file are the post-mortem trail — the
    worker redirects its file descriptors at entry (``capture_path``),
    so even a traceback printed by the interpreter while dying before
    the first pipe message is preserved.

Checkpointing uses the reliability layer verbatim: a
:class:`~repro.reliability.checkpoint.CheckpointHook` writes the job's
checkpoint file every N steps (atomically), and a retried attempt
restores it so a kill costs only the interval since the last snapshot —
the resumed spike train is bit-identical to an uninterrupted run
(pinned by the chaos tests via :func:`~repro.supervision.job.spike_digest`).

The ``chaos_*`` fields of the spec make the worker sabotage itself at a
chosen step (SIGKILL, stall, raise, or NaN-poison its own state via the
reliability layer's :class:`~repro.reliability.faults.FaultInjector`) —
the supervised analogue of fault injection, used by the chaos tests and
the CI kill/resume smoke.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import Dict, Optional

from repro.supervision.job import JobSpec, spike_digest

#: Seconds between heartbeats (wall clock, not steps: a slow step still
#: heartbeats every phase, a fast run does not flood the pipe).
HEARTBEAT_INTERVAL = 0.1


def _build_backend(spec: JobSpec, solver_name: str):
    """The backend a job runs on (mirrors the ``repro run`` mapping)."""
    if spec.backend == "reference":
        from repro.network.backends import ReferenceBackend

        return ReferenceBackend(solver_name)
    if spec.backend == "solver":
        from repro.network.backends import ReferenceBackend

        return ReferenceBackend(solver_name, use_engine=False)
    if spec.backend == "flexon":
        from repro.hardware.backend import FlexonBackend

        return FlexonBackend(spec.dt)
    from repro.hardware.backend import FoldedFlexonBackend

    return FoldedFlexonBackend(spec.dt)


def _build_simulator(spec: JobSpec):
    """Network + backend + simulator for one job (deterministic).

    Seeding follows the repo convention (``repro run``, the profile
    harness): the network builds with ``spec.seed``, the simulator's
    stimulus RNG with ``spec.seed + 1`` — so a supervised job, a
    resumed job, and a plain in-process run all produce bit-identical
    spikes.
    """
    from repro.network.simulator import Simulator
    from repro.workloads import build_workload, get_spec

    workload_spec = get_spec(spec.workload)
    solver_name = spec.solver or workload_spec.solver
    network = build_workload(spec.workload, scale=spec.scale, seed=spec.seed)
    backend = _build_backend(spec, solver_name)
    simulator = Simulator(network, backend, dt=spec.dt, seed=spec.seed + 1)
    return simulator, network


def _profile_payload(spec: JobSpec, network, result, steps_run: int) -> dict:
    """Per-unit activity rates (the ``WorkloadProfile`` fields).

    Event rates are measured over the steps this attempt actually
    executed (``steps_run``); the firing rate uses the full spike train
    (which on a resumed run includes the checkpointed prefix) over the
    job's full duration.
    """
    duration = spec.steps * spec.dt
    n = network.n_neurons
    synapses = max(1, network.n_synapses)
    steps_run = max(1, steps_run)
    evaluations = result.evaluations_per_step
    mean_evals = (
        sum(evaluations.values()) / len(evaluations) if evaluations else 1.0
    )
    model = next(iter(network.populations.values())).model
    return {
        "name": spec.workload,
        "scale": spec.scale,
        "n_neurons": n,
        "n_synapses": network.n_synapses,
        "firing_rate_hz": result.total_spikes() / max(1, n) / duration,
        "synaptic_event_rate": result.synaptic_events / steps_run / synapses,
        "stimulus_event_rate": result.stimulus_events / steps_run / max(1, n),
        "evaluations_per_step": mean_evals,
        "ops_per_update": dict(model.ops_per_update()),
    }


class _HeartbeatHook:
    """Sends throttled progress heartbeats over the pipe.

    Implemented against the :class:`~repro.engine.hooks.PhaseHook`
    protocol (duck-typed; it subclasses the real base at import time in
    :func:`_make_hooks` to keep this module import-light for spawn).

    Each sent heartbeat is also recorded into the flight recorder and
    the recorder's sidecar is synced (throttled by its own interval) —
    the heartbeat cadence is what keeps the crash trail fresh.
    """

    def __init__(self, conn, interval: float = HEARTBEAT_INTERVAL,
                 flight=None, spans=None) -> None:
        from repro.health.resources import ResourceSampler

        self.conn = conn
        self.interval = interval
        self.flight = flight
        self.spans = spans
        self._resources = ResourceSampler()
        self._last = time.monotonic()
        self._broken = False

    def beat(self, step: int, phase: str) -> None:
        now = time.monotonic()
        if now - self._last < self.interval:
            return
        self._last = now
        if self.flight is not None:
            self.flight.record("heartbeat", step=step, phase=phase)
            self.flight.sync()
        if self.spans is not None:
            # The heartbeat cadence keeps the span sidecar fresh too —
            # the SIGKILL exit path for this process's trace ring.
            self.spans.sync()
        if self._broken:
            return
        sample = self._resources.sample()
        try:
            self.conn.send(
                ("heartbeat",
                 {"step": step, "phase": phase, "ts": time.time(),
                  "rss_bytes": sample["rss_bytes"],
                  "cpu_seconds": sample["cpu_seconds"]})
            )
        except (BrokenPipeError, OSError):
            # The supervisor went away; keep simulating — the final
            # "done" send will fail loudly if the pipe is truly dead.
            self._broken = True


class _ChaosHook:
    """Self-sabotage at a chosen step (chaos tests / CI smoke)."""

    def __init__(self, spec: JobSpec, simulator, attempt: int,
                 degraded: bool, flight=None, spans=None) -> None:
        self.spec = spec
        self.simulator = simulator
        self.flight = flight
        self.spans = spans
        #: Kill/stall/crash chaos applies on one attempt only.
        self.armed = attempt == spec.chaos_attempt
        #: NaN chaos applies while the job still runs its original
        #: backend — the degraded solver path is the "safe" target.
        self.nan_armed = spec.chaos_nan_at_step is not None and not degraded

    def trigger(self, step: int) -> None:
        spec = self.spec
        if self.armed and step == spec.chaos_kill_at_step:
            if self.flight is not None:
                # The kill is instant; force the sidecar out first so
                # the post-mortem sees the trigger itself.
                self.flight.record("chaos", action="kill", step=step)
                self.flight.sync(force=True)
            if self.spans is not None:
                self.spans.sync(force=True)
            os.kill(os.getpid(), signal.SIGKILL)
        if self.armed and step == spec.chaos_stall_at_step:
            if self.spans is not None:
                self.spans.sync(force=True)
            while True:  # pragma: no cover - killed by the watchdog
                time.sleep(3600)
        if self.armed and step == spec.chaos_crash_at_step:
            # A ReproError propagates out of the hook dispatch (plain
            # exceptions would merely detach the hook), so the worker's
            # top-level handler reports it as a structured crash.
            from repro.errors import SupervisionError

            raise SupervisionError(f"chaos crash injected at step {step}")
        if self.nan_armed and step == spec.chaos_nan_at_step:
            from repro.reliability.faults import FaultInjector

            population = next(iter(self.simulator.network.populations))
            FaultInjector(self.simulator, seed=spec.seed).inject_nan(
                population
            )


def _make_hooks(spec: JobSpec, simulator, conn, attempt: int,
                degraded: bool, checkpoint_path: Optional[str],
                checkpoint_every: int, heartbeat_interval: float,
                flight=None, spans=None):
    """Assemble the worker's hook stack (imports deferred for spawn)."""
    from repro.engine.hooks import PhaseHook
    from repro.reliability.checkpoint import CheckpointHook
    from repro.reliability.guard import NumericsGuard

    heartbeat = _HeartbeatHook(
        conn, heartbeat_interval, flight=flight, spans=spans
    )
    chaos = _ChaosHook(
        spec, simulator, attempt, degraded, flight=flight, spans=spans
    )

    class WorkerHook(PhaseHook):
        """Heartbeats + chaos + spans, fused into one hook dispatch."""

        def on_step_start(self, step: int) -> None:
            chaos.trigger(step)

        def on_phase(self, phase: str, step: int, seconds: float,
                     operations: int) -> None:
            heartbeat.beat(step, phase)
            if spans is not None:
                spans.record(
                    phase, "phase", time.time() - seconds, seconds,
                    args={"step": step},
                )

    hooks = [WorkerHook(), NumericsGuard(simulator.backend)]
    if checkpoint_path and checkpoint_every > 0:
        hooks.append(
            CheckpointHook(simulator, checkpoint_every, checkpoint_path)
        )
    return hooks


def _run_sharded_inline(spec: JobSpec, heartbeat=None) -> Dict[str, object]:
    """Run a sharded job with every shard in this process.

    Supervised workers are daemonic and may not spawn grandchildren, so
    a sweep job with ``spec.shards >= 2`` runs the windowed barrier
    protocol in-process via :func:`repro.sharding.runner.
    simulate_sharded` — same numerics as the process-backed coordinator,
    bit-identical digest. Checkpoint resume is not supported on this
    path (a retried attempt restarts from step 0). ``heartbeat``, when
    given, is beaten once per barrier epoch so the watchdog sees
    progress.
    """
    from repro.sharding.runner import simulate_sharded
    from repro.workloads import build_workload, get_spec

    workload_spec = get_spec(spec.workload)
    solver_name = spec.solver or workload_spec.solver
    network = build_workload(spec.workload, scale=spec.scale, seed=spec.seed)

    def on_epoch(epoch: int, n_epochs: int, step: int) -> None:
        if heartbeat is not None:
            heartbeat.beat(step, "barrier")

    result = simulate_sharded(
        network,
        spec.shards,
        spec.steps,
        backend_factory=lambda: _build_backend(spec, solver_name),
        dt=spec.dt,
        seed=spec.seed + 1,
        on_epoch=on_epoch,
    )
    return {
        "steps": spec.steps,
        "resumed_from_step": 0,
        "total_spikes": result.total_spikes(),
        "spike_digest": result.digest(),
        "stats": {
            "schema": "repro-shard-run/1",
            "n_steps": spec.steps,
            "dt": spec.dt,
            "n_shards": spec.shards,
            "window": result.window,
            "epochs": result.epochs,
            "degraded": False,
            "total_spikes": result.total_spikes(),
            "spike_digest": result.digest(),
        },
        "profile": None,
    }


def run_job_inline(spec: JobSpec) -> Dict[str, object]:
    """Run a job to completion in-process, unsupervised.

    The uninterrupted baseline the chaos tests compare digests
    against — same build path, same seeding, no subprocess.
    """
    if spec.shards > 1:
        return _run_sharded_inline(spec)
    simulator, network = _build_simulator(spec)
    result = simulator.run(spec.steps)
    return {
        "steps": simulator.current_step,
        "total_spikes": result.total_spikes(),
        "spike_digest": spike_digest(result.spikes),
        "stats": result.to_stats_dict(),
        "profile": _profile_payload(spec, network, result, spec.steps),
    }


def _redirect_output(capture_path: str) -> None:
    """Point this process's stdout/stderr file descriptors at a file.

    Done with ``dup2`` on fds 1 and 2 (not by rebinding ``sys.stdout``)
    so *everything* lands in the capture file: Python tracebacks the
    ``multiprocessing`` bootstrap prints for failures that escape
    :func:`worker_entry`, warnings, and even C-level output. This is
    what leaves a trail for a worker that dies before its first pipe
    message.
    """
    fd = os.open(
        capture_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
    )
    try:
        sys.stdout.flush()
        sys.stderr.flush()
        os.dup2(fd, 1)
        os.dup2(fd, 2)
    finally:
        os.close(fd)
    # Rebind the high-level streams onto the redirected descriptors
    # with line buffering, so print() output is visible promptly.
    sys.stdout = os.fdopen(1, "w", buffering=1, closefd=False)
    sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)


def worker_entry(conn, capture_path: Optional[str] = None) -> None:
    """Process target: receive a job over ``conn``, run it, report back.

    ``capture_path`` (passed as a process argument, not over the pipe,
    so it is active before the first ``recv``) redirects the worker's
    stdout/stderr into a file the supervisor reads back on failure.
    """
    # The supervisor owns this process's lifecycle (it SIGKILLs on
    # deadline/stall); a terminal Ctrl-C must interrupt the supervisor,
    # not race it by killing workers directly.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    if capture_path:
        _redirect_output(capture_path)
    payload = conn.recv()
    spec = JobSpec.from_payload(payload["spec"])
    attempt = int(payload.get("attempt", 0))
    degraded = bool(payload.get("degraded", False))
    checkpoint_path = payload.get("checkpoint_path")
    checkpoint_every = int(payload.get("checkpoint_every", 0))
    heartbeat_interval = float(
        payload.get("heartbeat_interval", HEARTBEAT_INTERVAL)
    )
    run_id = str(payload.get("run_id", ""))
    flight_path = payload.get("flight_path")

    from repro.errors import CheckpointError, NumericsError
    from repro.observability.log import StructuredLogger
    from repro.observability.recorder import FlightRecorder
    from repro.provenance import SpanRecorder, TraceContext
    from repro.reliability.checkpoint import Checkpoint

    context = {"run_id": run_id, "job": spec.name, "attempt": attempt}
    flight = FlightRecorder(
        capacity=int(payload.get("flight_capacity", 256)),
        context=context,
        sidecar_path=flight_path,
        sync_interval=float(payload.get("flight_sync_interval", 1.0)),
    )
    trace_context = TraceContext.from_payload(
        payload.get("trace")
        or {"run_id": run_id, "job_id": spec.name, "attempt": attempt}
    )
    spans = SpanRecorder(
        trace_context, sidecar_path=payload.get("spans_path")
    )

    def pipe_sink(record: dict) -> None:
        try:
            conn.send(("log", record))
        except (BrokenPipeError, OSError):
            raise RuntimeError("pipe gone")  # logger drops this sink

    log = StructuredLogger(
        dict(context, component="worker"),
        sinks=[flight.observe_log, pipe_sink],
    )

    step = -1
    try:
        if spec.shards > 1:
            # Daemonic worker: run the barrier protocol in-process.
            conn.send(
                ("started", {
                    "pid": os.getpid(),
                    "attempt": attempt,
                    "resumed_from_step": 0,
                    "ts": time.time(),
                })
            )
            log.info(
                "worker-started",
                f"attempt {attempt} of {spec.name!r} sharded x"
                f"{spec.shards} on {spec.backend!r}",
                workload=spec.workload,
                backend=spec.backend,
                shards=spec.shards,
            )
            flight.sync(force=True)
            heartbeat = _HeartbeatHook(
                conn, heartbeat_interval, flight=flight, spans=spans
            )
            inline_start = time.time()
            done = _run_sharded_inline(spec, heartbeat=heartbeat)
            spans.record(
                f"sharded x{spec.shards}", "window", inline_start,
                time.time() - inline_start,
                args={"steps": int(done["steps"])},
            )
            step = int(done["steps"])
            log.info(
                "worker-done",
                f"{spec.name!r} completed at step {step} "
                f"({spec.shards} shards)",
                steps=step,
                total_spikes=done["total_spikes"],
            )
            done["spans"] = spans.dump()
            conn.send(("done", done))
            return
        simulator, network = _build_simulator(spec)
        spikes = None
        resumed_from = 0
        if checkpoint_path and os.path.exists(checkpoint_path):
            try:
                checkpoint = Checkpoint.load(checkpoint_path)
                checkpoint.restore(simulator)
                spikes = checkpoint.seed_recorder()
                resumed_from = simulator.current_step
            except CheckpointError as error:
                # A stale or torn-signature checkpoint must not wedge
                # the job forever: start fresh instead.
                log.warning(
                    "checkpoint-rejected",
                    f"checkpoint {checkpoint_path!r} rejected; starting "
                    f"fresh",
                    error=repr(error),
                )
                simulator, network = _build_simulator(spec)
        conn.send(
            ("started", {
                "pid": os.getpid(),
                "attempt": attempt,
                "resumed_from_step": resumed_from,
                "ts": time.time(),
            })
        )
        log.info(
            "worker-started",
            f"attempt {attempt} of {spec.name!r} on {spec.backend!r}",
            workload=spec.workload,
            backend=spec.backend,
            degraded=degraded,
            resumed_from_step=resumed_from,
        )
        # One guaranteed sidecar write before the run: even a worker
        # killed on its very first step leaves a non-empty trail.
        flight.sync(force=True)
        hooks = _make_hooks(
            spec, simulator, conn, attempt, degraded,
            checkpoint_path, checkpoint_every, heartbeat_interval,
            flight=flight, spans=spans,
        )
        remaining = spec.steps - resumed_from
        if remaining < 0:
            raise CheckpointError(
                f"checkpoint at step {resumed_from} is past the job's "
                f"{spec.steps} steps"
            )
        result = simulator.run(remaining, hooks=hooks, spikes=spikes)
        step = simulator.current_step
        log.info(
            "worker-done",
            f"{spec.name!r} completed at step {step}",
            steps=step,
            total_spikes=result.total_spikes(),
        )
        conn.send(
            ("done", {
                "steps": step,
                "resumed_from_step": resumed_from,
                "total_spikes": result.total_spikes(),
                "spike_digest": spike_digest(result.spikes),
                "stats": result.to_stats_dict(),
                "profile": _profile_payload(
                    spec, network, result, max(1, remaining)
                ),
                "spans": spans.dump(),
            })
        )
    except NumericsError as error:
        _send_failure(
            conn, "numerics", error, getattr(error, "step", step), flight,
            log, spans,
        )
        sys.exit(1)
    except MemoryError as error:
        _send_failure(conn, "oom-like", error, step, flight, log, spans)
        sys.exit(1)
    except BaseException as error:  # noqa: BLE001 - classified, reported
        _send_failure(conn, "crash", error, step, flight, log, spans)
        sys.exit(1)
    finally:
        conn.close()


def _send_failure(
    conn, kind: str, error: BaseException, step: int, flight=None, log=None,
    spans=None,
) -> None:
    """Report a caught failure: traceback to stderr (the capture file),
    a log record, a forced flight-recorder sync, and the structured
    ``failed`` message carrying the flight dump."""
    import traceback

    traceback.print_exc(file=sys.stderr)
    sys.stderr.flush()
    trace_text = traceback.format_exc()
    if log is not None:
        log.error(
            "worker-failed",
            f"{kind} failure at step {step}: {error!r}",
            kind=kind,
            step=step,
            error=repr(error),
        )
    flight_dump = None
    if flight is not None:
        flight.record(
            "failure", failure_kind=kind, step=step, error=repr(error)
        )
        try:
            flight.sync(force=True)
        except OSError:  # pragma: no cover - sidecar dir gone
            pass
        flight_dump = flight.dump()
    try:
        conn.send(
            ("failed", {
                "kind": kind,
                "error": repr(error),
                "step": step,
                "traceback": trace_text,
                "flight": flight_dump,
                "spans": spans.dump() if spans is not None else None,
            })
        )
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass
