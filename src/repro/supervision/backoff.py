"""Retry policy: exponential backoff with deterministic jitter.

A failed job is retried up to a budget; between attempts the supervisor
sleeps ``base_delay * factor ** attempt`` seconds, capped at
``max_delay`` and stretched by up to ``jitter`` fractional noise so a
fleet of jobs that failed together does not retry in lockstep (the
classic thundering-herd mitigation).

The jitter draws from a caller-supplied RNG, so tests can pin the exact
delay sequence: ``RetryPolicy.delays(seed)`` is a pure function of the
policy and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import SupervisionError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed job, and how long to wait."""

    #: Retries after the first attempt (0 = never retry).
    max_retries: int = 2
    base_delay: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    #: Maximum fractional stretch applied to each delay (0 disables).
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SupervisionError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise SupervisionError("delays must be non-negative")
        if self.factor < 1.0:
            raise SupervisionError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SupervisionError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a job may consume (first try + retries)."""
        return self.max_retries + 1

    def delay(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Seconds to wait after failed attempt index ``attempt``.

        ``attempt`` is 0-based (the delay *after* the first attempt is
        ``delay(0)``). With no RNG the undithered base delay is
        returned; with one, the delay is stretched by a uniform factor
        in ``[1, 1 + jitter]``.
        """
        if attempt < 0:
            raise SupervisionError(f"attempt must be >= 0, got {attempt}")
        base = min(self.max_delay, self.base_delay * self.factor**attempt)
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * float(rng.random()))

    def delays(self, seed: int = 0) -> Iterator[float]:
        """The full deterministic delay sequence for one job.

        Yields ``max_retries`` delays drawn from an RNG seeded with
        ``seed`` — the supervisor derives the seed from the job name so
        two jobs never share a jitter stream, and a re-run of the same
        sweep backs off identically.
        """
        rng = np.random.default_rng(seed)
        for attempt in range(self.max_retries):
            yield self.delay(attempt, rng)
