"""Graceful SIGINT/SIGTERM handling for foreground runs.

Ctrl-C on a long ``repro run`` used to cost the whole run and print a
raw traceback. The pieces here turn an interrupt into a *clean stop at
the next step boundary*:

* :func:`graceful_signals` installs SIGINT/SIGTERM handlers that only
  set a flag (a second signal of the same kind force-exits the
  old-fashioned way, so a wedged run can still be killed);
* :class:`InterruptHook` checks the flag at every ``on_step_start`` —
  the one point where queues, runtimes, and RNG state are mutually
  consistent — writes a final :class:`~repro.reliability.checkpoint.
  Checkpoint` (atomically), captures partial run statistics, and
  raises :class:`~repro.errors.RunInterrupted`;
* the CLI catches :class:`RunInterrupted`, writes the partial
  ``--stats-json`` document (``"partial": true``), and exits with the
  documented code: **130** for SIGINT, **143** for SIGTERM
  (the conventional ``128 + signum``).

The hook subclasses :class:`~repro.engine.hooks.PhaseTimer` so the
partial statistics carry real per-phase wall-clock/op totals up to the
interrupted step, not just a step count.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Dict, Iterator, Optional

from repro.engine.hooks import PhaseTimer
from repro.errors import RunInterrupted

__all__ = ["EXIT_CODES", "InterruptHook", "graceful_signals"]

#: Documented process exit codes for a gracefully interrupted run.
EXIT_CODES: Dict[str, int] = {"SIGINT": 130, "SIGTERM": 143}


class InterruptHook(PhaseTimer):
    """Stops a run cleanly once a signal handler calls :meth:`request`.

    ``checkpoint_path`` is where the final checkpoint lands (``None``
    skips it); ``include_spikes`` carries the recorded spike train into
    the checkpoint so a later ``--resume-from`` reports the full run.
    """

    def __init__(
        self,
        simulator,
        checkpoint_path: Optional[str] = None,
        include_spikes: bool = True,
    ) -> None:
        super().__init__()
        self.simulator = simulator
        self.checkpoint_path = checkpoint_path
        self.include_spikes = include_spikes
        #: Signal name once an interrupt was requested (handler-set).
        self.requested: Optional[str] = None
        #: Partial-run statistics captured at the stop point.
        self.partial_stats: Optional[dict] = None
        #: Where the final checkpoint was written (None = not written).
        self.checkpoint_written: Optional[str] = None

    def request(self, signal_name: str) -> None:
        """Ask the run to stop at the next step boundary (async-safe)."""
        self.requested = signal_name

    def on_step_start(self, step: int) -> None:
        if self.requested is None:
            return
        signal_name = self.requested
        if self.checkpoint_path is not None:
            from repro.reliability.checkpoint import Checkpoint

            spikes = (
                self.simulator.live_spikes if self.include_spikes else None
            )
            Checkpoint.capture(self.simulator, spikes=spikes).save(
                self.checkpoint_path
            )
            self.checkpoint_written = self.checkpoint_path
        self.partial_stats = self._partial_stats(signal_name, step)
        raise RunInterrupted(
            f"run interrupted by {signal_name} at step {step} "
            f"(checkpoint: {self.checkpoint_written or 'not written'})",
            signal_name=signal_name,
            step=step,
        )

    def _partial_stats(self, signal_name: str, step: int) -> dict:
        """A ``repro-run-stats/2``-shaped document for the partial run."""
        simulator = self.simulator
        recorder = simulator.live_spikes
        total = sum(stats.seconds for stats in self.phases.values())
        return {
            "schema": "repro-run-stats/2",
            "partial": True,
            "network": simulator.network.name,
            "backend": simulator.backend.name,
            "n_steps": step,
            "dt": simulator.dt,
            "total_seconds": total,
            "phases": {
                name: {
                    "seconds": stats.seconds,
                    "operations": stats.operations,
                }
                for name, stats in self.phases.items()
            },
            "counters": {
                "total_spikes": (
                    recorder.total_spikes() if recorder is not None else 0
                ),
            },
            "interrupted": {
                "signal": signal_name,
                "step": step,
                "exit_code": EXIT_CODES.get(signal_name, 130),
                "checkpoint": self.checkpoint_written,
            },
        }


@contextlib.contextmanager
def graceful_signals(hook: InterruptHook) -> Iterator[InterruptHook]:
    """Route SIGINT/SIGTERM into ``hook.request`` for the body's duration.

    The first signal requests a graceful stop; a second signal of
    either kind restores default behaviour and re-raises it, so an
    unresponsive run still dies. Previous handlers are restored on
    exit.
    """
    seen = {"count": 0}

    def handler(signum, frame):
        name = signal.Signals(signum).name
        seen["count"] += 1
        if seen["count"] > 1:
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            raise KeyboardInterrupt(f"forced exit on repeated {name}")
        hook.request(name)

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, handler),
        signal.SIGTERM: signal.signal(signal.SIGTERM, handler),
    }
    try:
        yield hook
    finally:
        for signum, prior in previous.items():
            signal.signal(signum, prior)
