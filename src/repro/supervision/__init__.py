"""Supervision layer: process-isolated workers that survive anything.

The reliability layer (checkpoints, numeric guards, fallback runtimes)
keeps a *healthy process* honest; this package keeps the *sweep* honest
when the process itself dies. A :class:`Supervisor` runs simulation
jobs (:class:`JobSpec`) in spawned worker subprocesses, enforcing
wall-clock deadlines and progress heartbeats with a watchdog, retrying
failures with exponential backoff + jitter (:class:`RetryPolicy`),
resuming killed jobs from their latest checkpoint bit-identically, and
classifying every failure (``timeout`` / ``crash`` / ``numerics`` /
``oom-like``) into structured :class:`JobReport` records. Repeated
numerics failures trip a per-backend circuit breaker that degrades jobs
to the verbatim solver backend — :class:`~repro.reliability.fallback.
FallbackRuntime` semantics lifted to the job level.

Entry points:

* ``python -m repro sweep`` — run a registry of workloads under
  supervision from the command line;
* :func:`repro.experiments.common.supervised_profiles` — the opt-in
  supervised path for figure sweeps;
* :mod:`repro.supervision.interrupt` — graceful SIGINT/SIGTERM for
  foreground ``repro run`` (final checkpoint + partial stats + a
  documented exit code instead of a traceback).

Exports resolve lazily (PEP 562, like :mod:`repro.reliability`): the
worker and supervisor import the simulator stack, and eager imports
here would slow ``import repro`` and risk cycles.
"""

import importlib

_EXPORTS = {
    "AttemptReport": "repro.supervision.job",
    "EXIT_CODES": "repro.supervision.interrupt",
    "FAILURE_KINDS": "repro.supervision.job",
    "InterruptHook": "repro.supervision.interrupt",
    "JobReport": "repro.supervision.job",
    "JobSpec": "repro.supervision.job",
    "RetryPolicy": "repro.supervision.backoff",
    "Supervisor": "repro.supervision.supervisor",
    "SupervisorConfig": "repro.supervision.config",
    "SweepReport": "repro.supervision.job",
    "graceful_signals": "repro.supervision.interrupt",
    "run_job_inline": "repro.supervision.worker",
    "spike_digest": "repro.supervision.job",
    "worker_entry": "repro.supervision.worker",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
