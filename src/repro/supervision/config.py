"""SupervisorConfig: the watchdog's timing knobs as one value object.

The supervisor's poll cadence (how often the watchdog checks the
worker pipe), the workers' heartbeat emission interval, the stall
timeout, and the default per-job deadline used to be scattered across
hard-coded constants and individual keyword arguments. Barrier-heavy
sharded runs want them tuned together — a tight barrier wants a tight
poll; a huge shard wants a generous heartbeat timeout — so they now
travel as one frozen, validated config shared by :class:`Supervisor`
and :class:`~repro.sharding.coordinator.ShardCoordinator`, settable
from the CLI via ``repro sweep --poll-interval/--heartbeat-interval/
--heartbeat-timeout/--deadline``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SupervisionError
from repro.supervision.worker import HEARTBEAT_INTERVAL

__all__ = ["SupervisorConfig"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Watchdog timings for supervised workers and shard barriers."""

    #: How long the watchdog blocks on the worker pipe per check
    #: (previously hard-coded to 50 ms).
    poll_interval: float = 0.05
    #: Wall-clock seconds between worker progress heartbeats.
    heartbeat_interval: float = HEARTBEAT_INTERVAL
    #: Kill a worker whose progress signals stall this long.
    heartbeat_timeout: float = 15.0
    #: Default per-job wall-clock deadline (a spec may override).
    deadline_seconds: float = 120.0

    def __post_init__(self) -> None:
        for name in (
            "poll_interval",
            "heartbeat_interval",
            "heartbeat_timeout",
            "deadline_seconds",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise SupervisionError(
                    f"{name} must be positive, got {value}"
                )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise SupervisionError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}) or every "
                "worker would be killed between beats"
            )
