"""The Supervisor: process-isolated job execution with a watchdog.

A long figure sweep must survive everything a single process cannot:
a hung solver, an OOM-killed worker, a stray SIGKILL. The supervisor
gets that robustness the same way the FPGA frameworks get fault
isolation from hardware partitioning — by putting every job in its own
failure domain:

* **Isolation** — each attempt runs :func:`~repro.supervision.worker.
  worker_entry` in a freshly *spawned* process (no forked state, no
  shared numpy buffers); the :class:`~repro.supervision.job.JobSpec`
  travels over a pipe.
* **Deadlines & heartbeats** — the watchdog loop polls the worker's
  pipe; if the per-job wall-clock deadline expires or progress
  heartbeats stall past ``heartbeat_timeout``, the worker is SIGKILLed
  and the attempt is classified ``timeout``.
* **Retry with backoff** — failed attempts retry up to the
  :class:`~repro.supervision.backoff.RetryPolicy` budget, sleeping
  exponentially with per-job deterministic jitter between attempts.
* **Checkpoint recovery** — workers checkpoint every N steps through
  the reliability layer; a retried attempt resumes from the latest
  snapshot, so a kill costs only the interval since it. Final spikes
  are bit-identical to an uninterrupted run (chaos-test pinned).
* **Circuit breaker** — repeated ``numerics`` failures on one backend
  trip a per-backend breaker; further attempts for that backend run
  degraded on the ``solver`` backend (the job-level analogue of
  :class:`~repro.reliability.fallback.FallbackRuntime`) instead of
  retrying a poisoned fast path forever.

Observability rides on the telemetry layer: the supervisor publishes
``supervisor_retries_total``, ``supervisor_jobs_completed`` /
``supervisor_jobs_failed``, watchdog kills, breaker trips, and a
heartbeat-lag histogram into its :class:`~repro.telemetry.registry.
MetricsRegistry`, and records one Trace Event span per worker lifetime
(Perfetto-loadable via ``repro sweep --trace``).

The live observability plane threads through here too. Every sweep
carries a ``run_id`` correlation ID into each worker; workers send
structured ``repro-log/1`` records back over the pipe (merged into
``SweepReport.log_records``) and keep a crash flight recorder whose
dump reaches the :class:`~repro.supervision.job.AttemptReport` either
in the ``failed`` pipe message or — for SIGKILL/hard-hang deaths — via
an atomically-synced sidecar file the supervisor reads back. Worker
stdout/stderr is redirected into a capture file whose tail (the
traceback, for crashes) lands in ``AttemptReport.output_tail``. When a
:class:`~repro.observability.server.StatusBoard` / ``EventBus`` are
attached (``repro sweep --serve``), per-job rows and attempt events
stream out live.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import tempfile
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SupervisionError
from repro.observability.log import StructuredLogger, merge_records, new_run_id
from repro.observability.recorder import FlightRecorder
from repro.provenance import (
    ProcessRing,
    SpanRecorder,
    TraceContext,
    estimate_offset,
)
from repro.supervision.backoff import RetryPolicy
from repro.supervision.config import SupervisorConfig
from repro.supervision.job import (
    AttemptReport,
    JobReport,
    JobSpec,
    SweepReport,
)
from repro.supervision.worker import worker_entry

__all__ = ["Supervisor"]

#: Lag histogram buckets: 10 ms .. 30 s, tuned around heartbeat cadence.
_LAG_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)

#: Bytes of captured worker stdout/stderr kept in ``output_tail``.
_OUTPUT_TAIL_BYTES = 4096


def _checkpoint_filename(job_name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", job_name) + ".ckpt"


class Supervisor:
    """Runs :class:`JobSpec` batches in supervised worker processes.

    Parameters
    ----------
    workers:
        Concurrent jobs (each job still runs its attempts serially).
    retry:
        The :class:`RetryPolicy`; defaults to 2 retries, 0.5 s base.
    config:
        A :class:`SupervisorConfig` bundling the watchdog timings
        (poll/heartbeat intervals, heartbeat timeout, default
        deadline). Individual keyword arguments below override the
        bundled values; both default to :class:`SupervisorConfig`'s
        defaults, so existing call sites are unchanged.
    deadline_seconds:
        Default per-job wall-clock deadline (a spec may override).
    heartbeat_timeout:
        Kill a worker whose progress heartbeats stall this long.
    checkpoint_every:
        Default checkpoint interval in steps (a spec may override;
        0 disables checkpointing and with it crash *recovery* — retries
        then restart from step 0).
    checkpoint_dir:
        Where job checkpoints live. ``None`` uses a temporary directory
        scoped to one :meth:`run` call; naming a directory lets a sweep
        resume across supervisor restarts.
    breaker_threshold:
        Numerics failures on one backend before its circuit breaker
        trips.
    metrics:
        A :class:`~repro.telemetry.registry.MetricsRegistry` to publish
        into (one is created when omitted).
    run_id:
        The sweep's correlation ID, stamped on every log and flight
        record (a fresh one is minted when omitted).
    status_board / event_bus:
        Optional :class:`~repro.observability.server.StatusBoard` and
        :class:`~repro.observability.server.EventBus` to publish live
        per-job state and attempt events into (``--serve``).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        config: Optional[SupervisorConfig] = None,
        deadline_seconds: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        checkpoint_every: int = 50,
        checkpoint_dir: Optional[str] = None,
        breaker_threshold: int = 2,
        metrics=None,
        seed: int = 0,
        poll_interval: Optional[float] = None,
        run_id: Optional[str] = None,
        status_board=None,
        event_bus=None,
    ) -> None:
        config = config if config is not None else SupervisorConfig()
        if deadline_seconds is None:
            deadline_seconds = config.deadline_seconds
        if heartbeat_timeout is None:
            heartbeat_timeout = config.heartbeat_timeout
        if heartbeat_interval is None:
            heartbeat_interval = config.heartbeat_interval
        if poll_interval is None:
            poll_interval = config.poll_interval
        if workers < 1:
            raise SupervisionError(f"workers must be >= 1, got {workers}")
        if deadline_seconds <= 0:
            raise SupervisionError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        if heartbeat_timeout <= 0:
            raise SupervisionError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if checkpoint_every < 0:
            raise SupervisionError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if breaker_threshold < 1:
            raise SupervisionError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if metrics is None:
            from repro.telemetry import MetricsRegistry

            metrics = MetricsRegistry()
        if poll_interval <= 0:
            raise SupervisionError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.config = config
        self.deadline_seconds = deadline_seconds
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.breaker_threshold = breaker_threshold
        self.metrics = metrics
        self.seed = seed
        self.poll_interval = poll_interval
        self.run_id = run_id if run_id else new_run_id()
        self.status_board = status_board
        self.event_bus = event_bus
        self._sleep = time.sleep
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._numerics_failures: Dict[str, int] = {}
        self._spans: List[dict] = []
        self._worker_rings: List[ProcessRing] = []
        self._sweep_start = 0.0
        self._sweep_start_wall = 0.0
        self._log_records: List[dict] = []
        self._totals: Dict[str, int] = {}
        self._logger = StructuredLogger(
            {"run_id": self.run_id, "component": "supervisor"},
            sinks=[self._sink_record],
        )

    # -- observability plumbing --------------------------------------------

    def _sink_record(self, record: dict) -> None:
        with self._lock:
            self._log_records.append(record)

    def _publish_event(self, event_type: str, payload: dict) -> None:
        if self.event_bus is not None:
            self.event_bus.publish(
                event_type, dict(payload, run_id=self.run_id)
            )

    def _job_row(self, job: str, **fields) -> None:
        """Replace one job's row on the status board (``/status`` jobs)."""
        if self.status_board is not None:
            self.status_board.merge("jobs", **{job: fields})

    def _bump_totals(self, **deltas) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._totals[key] = self._totals.get(key, 0) + delta
            totals = dict(self._totals)
            totals["breaker_trips"] = sum(
                1 for count in self._numerics_failures.values()
                if count >= self.breaker_threshold
            )
        if self.status_board is not None:
            self.status_board.update(sweep_totals=totals)

    # -- circuit breaker ---------------------------------------------------

    def breaker_tripped(self, backend: str) -> bool:
        """Whether the per-backend numerics circuit breaker is open."""
        with self._lock:
            count = self._numerics_failures.get(backend, 0)
        return count >= self.breaker_threshold

    def _record_numerics_failure(self, backend: str) -> None:
        with self._lock:
            count = self._numerics_failures.get(backend, 0) + 1
            self._numerics_failures[backend] = count
            if count == self.breaker_threshold:
                self.metrics.counter(
                    "supervisor_breaker_trips_total",
                    "Per-backend numerics circuit breakers tripped.",
                    {"backend": backend},
                ).inc()

    # -- metrics helpers (registry is not thread-safe) ---------------------

    def _inc(self, name: str, help_text: str, labels=None,
             amount: float = 1.0) -> None:
        with self._lock:
            self.metrics.counter(name, help_text, labels).inc(amount)

    def _observe_lag(self, seconds: float) -> None:
        with self._lock:
            self.metrics.histogram(
                "supervisor_heartbeat_lag_seconds",
                "Gaps between successive worker progress signals.",
                buckets=_LAG_BUCKETS,
            ).observe(seconds)

    def _set_lag_gauge(self, job: str, seconds: float) -> None:
        with self._lock:
            self.metrics.gauge(
                "supervisor_heartbeat_lag_max_seconds",
                "Largest heartbeat gap observed per job.",
                {"job": job},
            ).set(seconds)

    def _worker_resources(self, job: str, data: dict) -> dict:
        """Resource fields riding a heartbeat → gauges + status row.

        Gauges (not counters) because each attempt's CPU clock starts
        at zero — a retried worker's sample would make a counter go
        backwards. Heartbeats from workers without the fields (or
        platforms without a source) contribute nothing.
        """
        out = {}
        rss = data.get("rss_bytes")
        cpu = data.get("cpu_seconds")
        if rss is not None:
            out["rss_bytes"] = float(rss)
        if cpu is not None:
            out["cpu_seconds"] = float(cpu)
        if out:
            with self._lock:
                if rss is not None:
                    self.metrics.gauge(
                        "worker_resident_memory_bytes",
                        "Resident set size reported by the worker's "
                        "latest heartbeat.",
                        {"job": job},
                    ).set(float(rss))
                if cpu is not None:
                    self.metrics.gauge(
                        "worker_cpu_seconds",
                        "CPU time consumed by the worker's current "
                        "attempt.",
                        {"job": job},
                    ).set(float(cpu))
        return out

    # -- sweep entry point -------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> SweepReport:
        """Run every job under supervision; never raises for job failures."""
        jobs = list(jobs)
        if not jobs:
            raise SupervisionError("no jobs to supervise")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SupervisionError(f"duplicate job names: {duplicates}")
        self._spans = []
        self._worker_rings = []
        with self._lock:
            self._log_records = []
            self._totals = {
                "total": len(jobs), "completed": 0, "failed": 0, "retries": 0,
            }
        self._sweep_start = time.monotonic()
        self._sweep_start_wall = time.time()
        if self.status_board is not None:
            self.status_board.update(
                state="running",
                sweep=f"{len(jobs)} job(s)",
                run_id=self.run_id,
                jobs={},
            )
        self._bump_totals()
        self._publish_event("sweep-start", {"n_jobs": len(jobs)})
        self._logger.info(
            "sweep-start",
            f"supervising {len(jobs)} job(s) with {self.workers} worker(s)",
            n_jobs=len(jobs),
            workers=self.workers,
        )
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            reports = self._run_all(jobs, self.checkpoint_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
                reports = self._run_all(jobs, tmp)
        wall = time.monotonic() - self._sweep_start
        n_failed = sum(1 for report in reports if not report.completed)
        self._logger.info(
            "sweep-end",
            f"{len(reports) - n_failed}/{len(reports)} job(s) completed "
            f"in {wall:.1f}s",
            completed=len(reports) - n_failed,
            failed=n_failed,
            wall_seconds=wall,
        )
        self._publish_event(
            "sweep-end",
            {"completed": len(reports) - n_failed, "failed": n_failed},
        )
        if self.status_board is not None:
            self.status_board.update(state="finished")
        with self._lock:
            snapshot = self.metrics.snapshot()
            records = merge_records(self._log_records)
        return SweepReport(
            jobs=reports,
            wall_seconds=wall,
            metrics=snapshot,
            trace_events=self._trace_events(jobs),
            run_id=self.run_id,
            log_records=records,
        )

    def _run_all(self, jobs: List[JobSpec], ckpt_dir: str) -> List[JobReport]:
        if self.workers == 1 or len(jobs) == 1:
            return [self._run_job(job, ckpt_dir) for job in jobs]
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(jobs)),
            thread_name_prefix="supervise",
        ) as pool:
            return list(
                pool.map(lambda job: self._run_job(job, ckpt_dir), jobs)
            )

    # -- one job: attempts, backoff, breaker -------------------------------

    def _run_job(self, spec: JobSpec, ckpt_dir: str) -> JobReport:
        checkpoint_every = (
            spec.checkpoint_every
            if spec.checkpoint_every is not None
            else self.checkpoint_every
        )
        checkpoint_path = os.path.join(
            ckpt_dir, _checkpoint_filename(spec.name)
        )
        jitter_rng = np.random.default_rng(
            (self.seed + zlib.crc32(spec.name.encode("utf-8"))) & 0xFFFFFFFF
        )
        job_start = time.monotonic()
        report = JobReport(
            name=spec.name,
            workload=spec.workload,
            backend=spec.backend,
            outcome="failed",
        )
        was_degraded = False
        for attempt in range(self.retry.max_attempts):
            degraded = (
                spec.backend != "solver"
                and self.breaker_tripped(spec.backend)
            )
            if degraded and not was_degraded:
                # Checkpoints from the faulty fast path must not leak
                # into the solver path: their runtime payloads differ.
                was_degraded = True
                try:
                    os.unlink(checkpoint_path)
                except OSError:
                    pass
            backend = "solver" if degraded else spec.backend
            self._job_row(
                spec.name, state="running", backend=backend,
                attempt=attempt, step=0, retries=attempt,
            )
            attempt_report, done = self._run_attempt(
                spec, backend, attempt, degraded,
                checkpoint_path, checkpoint_every,
            )
            report.attempts.append(attempt_report)
            self._set_lag_gauge(spec.name, attempt_report.max_heartbeat_lag)
            if attempt_report.outcome == "completed":
                report.outcome = "completed"
                report.failure_kind = None
                report.degraded = degraded
                report.steps = done["steps"]
                report.total_spikes = done["total_spikes"]
                report.spike_digest = done["spike_digest"]
                report.stats = done["stats"]
                report.profile = done["profile"]
                break
            report.failure_kind = attempt_report.outcome
            self._logger.warning(
                "attempt-failed",
                f"{spec.name!r} attempt {attempt} failed "
                f"({attempt_report.outcome}): {attempt_report.error}",
                job=spec.name,
                attempt=attempt,
                kind=attempt_report.outcome,
            )
            if attempt_report.outcome == "numerics":
                self._record_numerics_failure(backend)
            if attempt < self.retry.max_retries:
                self._inc(
                    "supervisor_retries_total",
                    "Supervised job attempts retried after a failure.",
                    {"job": spec.name},
                )
                self._bump_totals(retries=1)
                self._sleep(self.retry.delay(attempt, jitter_rng))
        report.wall_seconds = time.monotonic() - job_start
        if report.completed:
            self._inc(
                "supervisor_jobs_completed",
                "Supervised jobs that finished successfully.",
            )
            self._bump_totals(completed=1)
        else:
            self._inc(
                "supervisor_jobs_failed",
                "Supervised jobs that exhausted their retry budget.",
            )
            self._bump_totals(failed=1)
        self._job_row(
            spec.name,
            state=report.outcome,
            backend=report.attempts[-1].backend if report.attempts else "?",
            attempt=len(report.attempts) - 1,
            step=report.steps,
            retries=report.retries,
        )
        self._publish_event(
            "job-end",
            {
                "job": spec.name,
                "outcome": report.outcome,
                "failure_kind": report.failure_kind,
                "retries": report.retries,
            },
        )
        return report

    # -- one attempt: spawn, watch, classify -------------------------------

    def _run_attempt(
        self,
        spec: JobSpec,
        backend: str,
        attempt: int,
        degraded: bool,
        checkpoint_path: str,
        checkpoint_every: int,
    ) -> Tuple[AttemptReport, Optional[dict]]:
        spec_payload = spec.to_payload()
        spec_payload["backend"] = backend
        # Post-mortem sidecars, next to the job's checkpoint: the worker
        # fd-redirects stdout/stderr into the capture file and syncs its
        # flight recorder into the flight file, so even a SIGKILLed
        # worker leaves a trail the supervisor can read back.
        attempt_base = f"{checkpoint_path}.a{attempt}"
        capture_path = attempt_base + ".out"
        flight_path = attempt_base + ".flight.json"
        spans_path = attempt_base + ".spans.json"
        payload = {
            "spec": spec_payload,
            "attempt": attempt,
            "degraded": degraded,
            "checkpoint_path": checkpoint_path,
            "checkpoint_every": checkpoint_every,
            "heartbeat_interval": self.heartbeat_interval,
            "run_id": self.run_id,
            "flight_path": flight_path,
            "trace": TraceContext(
                run_id=self.run_id, job_id=spec.name, attempt=attempt,
                parent_span=f"{spec.name} #{attempt}",
            ).to_payload(),
            "spans_path": spans_path,
        }
        self._publish_event(
            "attempt-start",
            {"job": spec.name, "attempt": attempt, "backend": backend},
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_entry, args=(child_conn, capture_path), daemon=True
        )
        start = time.monotonic()
        process.start()
        child_conn.close()
        deadline = start + (
            spec.deadline_seconds
            if spec.deadline_seconds is not None
            else self.deadline_seconds
        )
        terminal: Optional[Tuple[str, dict]] = None
        kill_reason: Optional[str] = None
        last_beat = time.monotonic()
        max_lag = 0.0
        steps_completed = 0
        resumed_from = 0
        offset_samples: List[Tuple[float, float]] = []
        try:
            parent_conn.send(payload)
            while True:
                try:
                    ready = parent_conn.poll(self.poll_interval)
                except (EOFError, OSError):
                    break
                if ready:
                    try:
                        kind, data = parent_conn.recv()
                    except (EOFError, OSError):
                        break
                    now = time.monotonic()
                    lag = now - last_beat
                    max_lag = max(max_lag, lag)
                    last_beat = now
                    if isinstance(data, dict) and data.get("ts") is not None:
                        # Handshake timestamps feed the per-process
                        # clock-offset estimate the trace merge uses.
                        offset_samples.append(
                            (float(data["ts"]), time.time())
                        )
                    if kind == "started":
                        resumed_from = int(data["resumed_from_step"])
                        steps_completed = resumed_from
                    elif kind == "heartbeat":
                        steps_completed = int(data["step"])
                        self._observe_lag(lag)
                        resources = self._worker_resources(spec.name, data)
                        self._job_row(
                            spec.name, state="running", backend=backend,
                            attempt=attempt, step=steps_completed,
                            retries=attempt, **resources,
                        )
                    elif kind == "log":
                        # A worker's structured log record riding the
                        # wire protocol; merged into the sweep stream.
                        if isinstance(data, dict):
                            self._sink_record(data)
                    elif kind in ("done", "failed"):
                        terminal = (kind, data)
                        break
                    continue
                now = time.monotonic()
                if now >= deadline:
                    kill_reason = "deadline"
                    max_lag = max(max_lag, now - last_beat)
                    break
                if now - last_beat > self.heartbeat_timeout:
                    kill_reason = "heartbeat"
                    max_lag = max(max_lag, now - last_beat)
                    break
                if not process.is_alive():
                    # Died without a terminal message; drain any final
                    # bytes that raced the exit, then classify below.
                    while parent_conn.poll(0):
                        try:
                            kind, data = parent_conn.recv()
                        except (EOFError, OSError):
                            break
                        if kind in ("done", "failed"):
                            terminal = (kind, data)
                    break
        finally:
            if kill_reason is not None:
                process.kill()
                self._inc(
                    "supervisor_worker_kills_total",
                    "Workers SIGKILLed by the watchdog.",
                    {"reason": kill_reason},
                )
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=10.0)
            parent_conn.close()
        wall = time.monotonic() - start

        outcome, error = self._classify(
            terminal, kill_reason, process.exitcode, wall
        )
        done_payload = None
        if terminal is not None and terminal[0] == "done":
            done_payload = terminal[1]
            steps_completed = int(done_payload["steps"])
        attempt_report = AttemptReport(
            attempt=attempt,
            outcome=outcome,
            backend=backend,
            error=error,
            resumed_from_step=resumed_from,
            steps_completed=steps_completed,
            wall_seconds=wall,
            max_heartbeat_lag=max_lag,
            run_id=self.run_id,
        )
        if outcome != "completed":
            attempt_report.flight_recorder = self._recover_flight(
                terminal, flight_path
            )
            attempt_report.output_tail = self._read_output_tail(
                terminal, capture_path
            )
        self._recover_spans(
            terminal, spans_path, spec, attempt, offset_samples,
            process.pid,
        )
        for leftover in (capture_path, flight_path, spans_path):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        self._publish_event(
            "attempt-end",
            {
                "job": spec.name,
                "attempt": attempt,
                "backend": backend,
                "outcome": outcome,
                "steps_completed": steps_completed,
            },
        )
        self._record_span(spec, attempt_report, start)
        return attempt_report, done_payload

    @staticmethod
    def _recover_flight(
        terminal: Optional[Tuple[str, dict]], flight_path: str
    ) -> Optional[dict]:
        """The attempt's flight-recorder dump, wherever it survived.

        A worker that could still speak ships the dump in its ``failed``
        pipe message; one that was SIGKILLed or hung left only the
        sidecar file its heartbeats synced.
        """
        if terminal is not None and terminal[0] == "failed":
            dump = terminal[1].get("flight")
            if isinstance(dump, dict):
                return dump
        return FlightRecorder.load_dump(flight_path)

    def _recover_spans(
        self,
        terminal: Optional[Tuple[str, dict]],
        spans_path: str,
        spec: JobSpec,
        attempt: int,
        offset_samples: List[Tuple[float, float]],
        pid: Optional[int],
    ) -> None:
        """Adopt the attempt's span ring over its dual exit paths.

        ``done``/``failed`` pipe messages carry the ring inline; a
        SIGKILLed or hung worker left only the sidecar its heartbeats
        synced. Either way the ring becomes one process track in the
        sweep's merged trace, tagged with the clock offset estimated
        from this attempt's handshake timestamps.
        """
        dump = None
        if terminal is not None and isinstance(terminal[1], dict):
            dump = terminal[1].get("spans")
        if not isinstance(dump, dict):
            dump = SpanRecorder.load_dump(spans_path)
        if not dump:
            return
        ring = ProcessRing.from_dump(
            dump,
            label=f"worker:{spec.name}#a{attempt}",
            offset=estimate_offset(offset_samples),
        )
        if not ring.pid and pid:
            ring.pid = pid
        with self._lock:
            self._worker_rings.append(ring)

    @staticmethod
    def _read_output_tail(
        terminal: Optional[Tuple[str, dict]], capture_path: str
    ) -> str:
        """Tail of the worker's captured stdout/stderr (the traceback)."""
        try:
            with open(capture_path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - _OUTPUT_TAIL_BYTES))
                tail = handle.read().decode("utf-8", errors="replace")
        except OSError:
            tail = ""
        if not tail.strip() and terminal is not None:
            # Capture disabled or empty: fall back to the traceback the
            # worker shipped in its failed message.
            tail = str(terminal[1].get("traceback") or "")
        return tail

    def _classify(
        self,
        terminal: Optional[Tuple[str, dict]],
        kill_reason: Optional[str],
        exitcode: Optional[int],
        wall: float,
    ) -> Tuple[str, str]:
        """Map what the watchdog saw onto the failure taxonomy."""
        if terminal is not None:
            kind, data = terminal
            if kind == "done":
                return "completed", ""
            reported = data.get("kind", "crash")
            return reported, str(data.get("error", ""))
        if kill_reason == "deadline":
            return "timeout", f"deadline exceeded after {wall:.1f}s"
        if kill_reason == "heartbeat":
            return (
                "timeout",
                f"heartbeats stalled for > {self.heartbeat_timeout:.1f}s",
            )
        import signal as _signal

        if exitcode is not None and exitcode == -int(_signal.SIGKILL):
            # SIGKILL we did not send: the kernel OOM killer's signature.
            return "oom-like", "worker SIGKILLed (exit code -9)"
        return "crash", f"worker exited with code {exitcode} silently"

    # -- worker-lifetime trace spans ---------------------------------------

    def _record_span(
        self, spec: JobSpec, attempt: AttemptReport, start: float
    ) -> None:
        with self._lock:
            self._spans.append(
                {
                    "name": f"{spec.name} #{attempt.attempt}",
                    "cat": "worker",
                    "ph": "X",
                    "pid": 1,
                    "tid": 0,  # re-assigned per job at export time
                    "ts": round((start - self._sweep_start) * 1e6, 3),
                    "dur": round(attempt.wall_seconds * 1e6, 3),
                    "args": {
                        "job": spec.name,
                        "attempt": attempt.attempt,
                        "backend": attempt.backend,
                        "outcome": attempt.outcome,
                        "steps_completed": attempt.steps_completed,
                        "resumed_from_step": attempt.resumed_from_step,
                    },
                }
            )

    def _trace_events(self, jobs: Sequence[JobSpec]) -> List[dict]:
        """The sweep's distributed trace: lifetime + worker tracks.

        One track per job holds the supervisor-side worker-lifetime
        spans (as before); behind those, one track per worker
        *incarnation* holds the phase-span ring that process shipped
        back, with its wall-clock timestamps offset-corrected onto the
        supervisor clock and rebased to the sweep start — so a resumed
        attempt's track visibly starts where the killed one stopped.
        """
        tids = {job.name: index + 1 for index, job in enumerate(jobs)}
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro:sweep"},
            }
        ]
        for name, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"job:{name}"},
                }
            )
        with self._lock:
            for span in self._spans:
                span = dict(span)
                span["tid"] = tids.get(span["args"]["job"], 0)
                events.append(span)
            rings = list(self._worker_rings)
        next_tid = len(jobs) + 1
        for ring in rings:
            tid = next_tid
            next_tid += 1
            label = ring.label + (f" (pid {ring.pid})" if ring.pid else "")
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
            for span in sorted(
                ring.spans, key=lambda s: float(s.get("ts", 0.0))
            ):
                start = (
                    float(span.get("ts", 0.0))
                    - ring.offset
                    - self._sweep_start_wall
                )
                event = {
                    "name": span.get("name", "span"),
                    "cat": span.get("cat", "phase"),
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": round(start * 1e6, 3),
                    "dur": round(float(span.get("dur", 0.0)) * 1e6, 3),
                }
                if span.get("args"):
                    event["args"] = span["args"]
                events.append(event)
        return events
