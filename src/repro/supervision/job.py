"""Job descriptions, failure taxonomy, and structured reports.

A :class:`JobSpec` is the unit of supervised work: one workload on one
backend for a fixed number of steps with a fixed seed. It is a plain,
picklable value object — the supervisor serializes it over a pipe to a
spawned worker process, so it must never carry live simulator state.

Failures are classified into four kinds (:data:`FAILURE_KINDS`):

``timeout``
    The watchdog killed the worker — either the per-job wall-clock
    deadline expired or progress heartbeats stalled for longer than
    the heartbeat timeout.
``crash``
    The worker raised an unexpected exception, or the process exited
    abnormally (non-zero exit, unexpected signal, broken pipe).
``numerics``
    The worker's :class:`~repro.reliability.guard.NumericsGuard`
    raised a structured :class:`~repro.errors.NumericsError` —
    simulation state went NaN/Inf or diverged. Repeated numerics
    failures trip the supervisor's per-backend circuit breaker.
``oom-like``
    The process died from SIGKILL without the supervisor sending it
    (the kernel OOM killer's signature) or raised ``MemoryError``.

Every attempt produces an :class:`AttemptReport`; the attempts of one
job roll up into a :class:`JobReport`; the jobs of one sweep roll up
into a :class:`SweepReport` whose ``to_dict`` is what ``repro sweep
--stats-json`` writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import SupervisionError

__all__ = [
    "FAILURE_KINDS",
    "AttemptReport",
    "JobReport",
    "JobSpec",
    "SweepReport",
    "spike_digest",
]

#: The closed failure taxonomy (see module docstring).
FAILURE_KINDS = ("timeout", "crash", "numerics", "oom-like")

#: Worker backends a job may name. ``solver`` is the dict-state
#: reference solver path (``ReferenceBackend(use_engine=False)``) — the
#: degradation target of the circuit breaker, mirroring
#: ``FallbackRuntime`` semantics at the job level.
JOB_BACKENDS = ("reference", "solver", "flexon", "folded")


@dataclass(frozen=True)
class JobSpec:
    """One supervised simulation job (picklable, spawn-safe).

    The ``chaos_*`` fields exist for the chaos tests and the CI
    kill/resume smoke: they make the *worker itself* misbehave at a
    chosen step (SIGKILL itself, stall silently, poison its state with
    NaN, or raise). Kill/stall/crash chaos applies only on attempt
    ``chaos_attempt`` so the retry can succeed; NaN chaos applies on
    every attempt that still runs on the job's original backend, so the
    circuit breaker has something to trip on.
    """

    name: str
    workload: str
    backend: str = "reference"
    steps: int = 400
    scale: float = 0.05
    seed: int = 1
    dt: float = 1e-4
    solver: Optional[str] = None
    #: Partition the job's network across this many in-process shards
    #: (0/1 = normal single-simulator execution). Supervised workers
    #: are daemonic and cannot spawn grandchildren, so a sharded sweep
    #: job runs the windowed barrier protocol *inside* the worker via
    #: :func:`repro.sharding.runner.simulate_sharded` — same numerics,
    #: same digest, no extra processes.
    shards: int = 0
    #: Per-job wall-clock deadline; ``None`` uses the supervisor default.
    deadline_seconds: Optional[float] = None
    #: Checkpoint interval in steps; ``None`` uses the supervisor
    #: default, ``0`` disables checkpointing for this job.
    checkpoint_every: Optional[int] = None
    # -- chaos (tests / CI smoke only) ----------------------------------
    chaos_kill_at_step: Optional[int] = None
    chaos_stall_at_step: Optional[int] = None
    chaos_crash_at_step: Optional[int] = None
    chaos_nan_at_step: Optional[int] = None
    chaos_attempt: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SupervisionError(f"job name must be a non-empty string, got {self.name!r}")
        if self.backend not in JOB_BACKENDS:
            raise SupervisionError(
                f"job {self.name!r}: unknown backend {self.backend!r} "
                f"(choose from {', '.join(JOB_BACKENDS)})"
            )
        if self.steps < 1:
            raise SupervisionError(
                f"job {self.name!r}: steps must be >= 1, got {self.steps}"
            )
        if self.scale <= 0:
            raise SupervisionError(
                f"job {self.name!r}: scale must be positive, got {self.scale}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise SupervisionError(
                f"job {self.name!r}: deadline must be positive, "
                f"got {self.deadline_seconds}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 0:
            raise SupervisionError(
                f"job {self.name!r}: checkpoint_every must be >= 0, "
                f"got {self.checkpoint_every}"
            )
        if self.shards < 0:
            raise SupervisionError(
                f"job {self.name!r}: shards must be >= 0, got {self.shards}"
            )

    def to_payload(self) -> Dict[str, object]:
        """The spec as a plain dict (the pipe wire format)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        """Rebuild a spec the supervisor sent over the pipe."""
        try:
            return cls(**payload)
        except TypeError as error:
            raise SupervisionError(
                f"malformed job payload: {error}"
            ) from error


@dataclass
class AttemptReport:
    """What one worker process did with one job attempt."""

    attempt: int
    #: ``"completed"`` or one of :data:`FAILURE_KINDS`.
    outcome: str
    #: Backend this attempt actually ran on (may be the circuit
    #: breaker's degradation target rather than the spec's backend).
    backend: str = ""
    error: str = ""
    #: Step the attempt resumed from (0 = fresh start).
    resumed_from_step: int = 0
    #: Last step the supervisor saw progress for (heartbeat or done).
    steps_completed: int = 0
    wall_seconds: float = 0.0
    #: Largest gap observed between progress signals.
    max_heartbeat_lag: float = 0.0
    #: The sweep's correlation ID (shared by every log/flight event).
    run_id: str = ""
    #: The worker's ``repro-flight/1`` crash flight-recorder dump —
    #: shipped in the ``failed`` pipe message when the worker could
    #: still speak, recovered from its sidecar file when it could not
    #: (SIGKILL, hard hang). ``None`` on success.
    flight_recorder: Optional[dict] = None
    #: Tail of the worker's captured stdout/stderr — the post-mortem
    #: trail (e.g. the traceback) of a worker that died before sending
    #: a ``failed`` message. Empty on success.
    output_tail: str = ""


@dataclass
class JobReport:
    """The supervised outcome of one job across all its attempts."""

    name: str
    workload: str
    backend: str
    outcome: str  #: ``"completed"`` or ``"failed"``
    failure_kind: Optional[str] = None
    attempts: List[AttemptReport] = field(default_factory=list)
    #: True when the circuit breaker re-routed this job onto the
    #: solver backend (job-level ``FallbackRuntime`` semantics).
    degraded: bool = False
    steps: int = 0
    total_spikes: int = 0
    #: SHA-256 over the final spike trains (bit-identity pinning).
    spike_digest: Optional[str] = None
    #: The worker's ``SimulationResult.to_stats_dict()`` payload.
    stats: Optional[dict] = None
    #: Per-unit activity (``WorkloadProfile`` fields) measured by the
    #: worker — feeds the supervised figure-sweep path.
    profile: Optional[dict] = None
    wall_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"

    @property
    def retries(self) -> int:
        """Attempts beyond the first."""
        return max(0, len(self.attempts) - 1)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["retries"] = self.retries
        return payload


@dataclass
class SweepReport:
    """Everything one supervised sweep produced."""

    jobs: List[JobReport]
    wall_seconds: float = 0.0
    #: JSON snapshot of the supervisor's metrics registry.
    metrics: Optional[dict] = None
    #: Worker-lifetime spans in Trace Event JSON (Perfetto-loadable).
    trace_events: List[dict] = field(default_factory=list)
    #: The sweep's correlation ID (every log/flight record carries it).
    run_id: str = ""
    #: One ordered stream (``repro-log/1`` records) merging the
    #: supervisor's and every worker's structured logs — worker records
    #: travel over the pipe wire protocol instead of vanishing into
    #: subprocess stderr.
    log_records: List[dict] = field(default_factory=list)

    @property
    def completed(self) -> List[JobReport]:
        return [job for job in self.jobs if job.completed]

    @property
    def failed(self) -> List[JobReport]:
        return [job for job in self.jobs if not job.completed]

    def all_completed(self) -> bool:
        return not self.failed

    def job(self, name: str) -> JobReport:
        for report in self.jobs:
            if report.name == name:
                return report
        raise SupervisionError(f"no job named {name!r} in this sweep")

    def to_dict(self) -> dict:
        return {
            "schema": "repro-sweep/1",
            "run_id": self.run_id,
            "jobs": [job.to_dict() for job in self.jobs],
            "completed": len(self.completed),
            "failed": len(self.failed),
            "wall_seconds": self.wall_seconds,
            "metrics": self.metrics,
            "n_log_records": len(self.log_records),
        }

    def log_stream(self) -> dict:
        """The merged log stream as a ``repro-log/1`` document
        (what ``repro sweep --log-json`` writes via ``repro.io``)."""
        from repro.observability.log import log_stream_document

        return log_stream_document(self.log_records, run_id=self.run_id)

    def trace_json(self) -> dict:
        """The sweep's merged trace as a Trace Event JSON document."""
        return {
            "traceEvents": list(self.trace_events),
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": "repro-sweep-trace/1",
                "run_id": self.run_id,
            },
        }


def spike_digest(recorder) -> str:
    """SHA-256 over a recorder's full spike trains.

    Two runs whose digests match produced bit-identical spikes — the
    cheap cross-process stand-in for comparing the full trains, used to
    pin that a killed-and-resumed job equals an uninterrupted one, and
    that a sharded run equals the single-process path. The hashing
    itself lives on :meth:`SpikeRecorder.digest`; anything exposing the
    same ``populations()`` / ``result()`` surface hashes identically.
    """
    digest_method = getattr(recorder, "digest", None)
    if digest_method is not None:
        return digest_method()
    digest = hashlib.sha256()
    for population in recorder.populations():
        record = recorder.result(population)
        digest.update(population.encode("utf-8"))
        digest.update(record.steps.tobytes())
        digest.update(record.neurons.tobytes())
    return digest.hexdigest()
