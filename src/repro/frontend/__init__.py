"""Declarative SNN front-end (Section VII-B).

"SNN front-ends such as PyNN play an important role as they provide
API functions, oblivious to the underlying hardware, for describing an
SNN ... the digital neurons ... should be seamlessly integrated to the
front-ends." This package is that integration surface: networks are
described declaratively (a dict, or JSON on disk), and the builder
materialises a :class:`~repro.network.network.Network` plus the chosen
backend — the Flexon compiler then translates each population's model
to control signals behind the scenes, exactly the code-generator role
Section VII-B sketches.
"""

from repro.frontend.spec import (
    build_backend,
    build_network,
    build_simulation,
    example_spec,
    load_spec,
)

__all__ = [
    "build_backend",
    "build_network",
    "build_simulation",
    "example_spec",
    "load_spec",
]
