"""Network-description schema and builders.

A specification is a plain dict (JSON-compatible)::

    {
      "name": "my-net",
      "dt": 1e-4,
      "seed": 0,
      "backend": "folded",            # reference|flexon|folded|hybrid
      "solver": "Euler",              # reference/hybrid backends only
      "populations": [
        {"name": "exc", "n": 100, "model": "DLIF",
         "parameters": {"tau": 0.02}}          # optional overrides
      ],
      "projections": [
        {"pre": "exc", "post": "exc", "probability": 0.1,
         "weight": 0.05, "syn_type": 0, "delay_steps": 1,
         "delay_jitter": 0,
         "plasticity": {"rule": "pair_stdp", "a_plus": 0.01}}  # optional
      ],
      "stimuli": [
        {"kind": "poisson", "target": "exc", "rate_hz": 400,
         "weight": 0.05, "n_sources": 10, "syn_type": 0},
        {"kind": "pattern", "target": "exc", "weight": 1.0,
         "events": {"0": [0, 1]}, "period": 100}
      ]
    }

Unknown keys are rejected (typos should fail loudly), and every error
names the offending entry.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Tuple, Union

from repro.errors import ConfigurationError
from repro.models.base import ModelParameters
from repro.models.registry import create_model
from repro.network.backends import Backend, ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PatternStimulus, PoissonStimulus

_POPULATION_KEYS = {"name", "n", "model", "parameters"}
_PROJECTION_KEYS = {
    "pre", "post", "probability", "weight", "weight_std", "syn_type",
    "delay_steps", "delay_jitter", "allow_self", "plasticity",
}
_POISSON_KEYS = {"kind", "target", "rate_hz", "weight", "n_sources", "syn_type"}
_PATTERN_KEYS = {"kind", "target", "weight", "events", "period", "syn_type"}
_TOP_KEYS = {
    "name", "dt", "seed", "backend", "solver",
    "populations", "projections", "stimuli",
}
_BACKENDS = ("reference", "flexon", "folded", "hybrid")


def _check_keys(entry: Dict, allowed: set, where: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {sorted(unknown)} in {where}; "
            f"allowed: {sorted(allowed)}"
        )


def _as_int(value, where: str) -> int:
    """``value`` as an int, or a field-level :class:`ConfigurationError`."""
    if isinstance(value, bool):
        raise ConfigurationError(f"{where} must be an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{where} must be an integer, got {value!r}"
        ) from None


def _as_float(value, where: str) -> float:
    """``value`` as a float, or a field-level :class:`ConfigurationError`."""
    if isinstance(value, bool):
        raise ConfigurationError(f"{where} must be a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{where} must be a number, got {value!r}"
        ) from None


def _require(entry: Dict, keys, where: str) -> None:
    for key in keys:
        if key not in entry:
            raise ConfigurationError(f"{where} missing required key {key!r}")


def _spec_list(spec: Dict, key: str) -> list:
    """A top-level section as a list of dict entries, validated."""
    value = spec.get(key)
    if value is None:
        return []
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(
            f"top-level {key!r} must be a list of objects, "
            f"got {type(value).__name__}"
        )
    for index, entry in enumerate(value):
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"{key}[{index}] must be an object, "
                f"got {type(entry).__name__}"
            )
    return list(value)


def load_spec(path: Union[str, pathlib.Path]) -> Dict:
    """Load a JSON specification from disk."""
    try:
        text = pathlib.Path(path).read_text()
    except OSError as error:
        raise ConfigurationError(
            f"cannot read spec {path}: {error}"
        ) from None
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(spec, dict):
        raise ConfigurationError(f"{path} must contain a JSON object")
    return spec


def build_network(spec: Dict) -> Network:
    """Materialise the network described by ``spec``."""
    import numpy as np

    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"a spec must be an object, got {type(spec).__name__}"
        )
    _check_keys(spec, _TOP_KEYS, "the top-level spec")
    populations = _spec_list(spec, "populations")
    if not populations:
        raise ConfigurationError("spec needs at least one population")
    network = Network(spec.get("name", "network"))
    rng = np.random.default_rng(_as_int(spec.get("seed", 0), "top-level 'seed'"))
    dt = _as_float(spec.get("dt", 1e-4), "top-level 'dt'")
    if dt <= 0:
        raise ConfigurationError(f"top-level 'dt' must be positive, got {dt}")

    for entry in populations:
        where = f"population {entry.get('name')!r}"
        _check_keys(entry, _POPULATION_KEYS, where)
        _require(entry, ("name", "n", "model"), where)
        n = _as_int(entry["n"], f"{where}: 'n'")
        if n < 1:
            raise ConfigurationError(f"{where}: 'n' must be >= 1, got {n}")
        parameters = None
        if entry.get("parameters"):
            if not isinstance(entry["parameters"], dict):
                raise ConfigurationError(
                    f"{where}: 'parameters' must be an object of "
                    f"model-parameter overrides"
                )
            overrides = dict(entry["parameters"])
            for tuple_key in ("tau_g", "v_g"):
                if tuple_key in overrides:
                    try:
                        overrides[tuple_key] = tuple(overrides[tuple_key])
                    except TypeError:
                        raise ConfigurationError(
                            f"{where}: {tuple_key!r} must be a list of "
                            f"numbers, got {overrides[tuple_key]!r}"
                        ) from None
            try:
                parameters = ModelParameters(**overrides)
            except TypeError as error:
                raise ConfigurationError(
                    f"{where}: invalid model parameters: {error}"
                ) from None
        network.add_population(
            entry["name"],
            n,
            create_model(entry["model"], parameters=parameters),
        )

    for entry in _spec_list(spec, "projections"):
        where = f"projection {entry.get('pre')}->{entry.get('post')}"
        _check_keys(entry, _PROJECTION_KEYS, where)
        _require(entry, ("pre", "post"), where)
        plasticity = entry.get("plasticity")
        kwargs = {}
        for key in ("probability", "weight", "weight_std"):
            if key in entry:
                kwargs[key] = _as_float(entry[key], f"{where}: {key!r}")
        for key in ("syn_type", "delay_steps", "delay_jitter"):
            if key in entry:
                kwargs[key] = _as_int(entry[key], f"{where}: {key!r}")
        if "allow_self" in entry:
            kwargs["allow_self"] = bool(entry["allow_self"])
        projection = network.connect(
            entry["pre"], entry["post"], rng=rng, **kwargs
        )
        if plasticity is not None:
            network.add_plasticity(
                projection, _build_plasticity(plasticity, where)
            )

    for entry in _spec_list(spec, "stimuli"):
        kind = entry.get("kind")
        target_name = entry.get("target")
        where = f"stimulus ({kind}) on {target_name!r}"
        _require(entry, ("kind", "target"), where)
        if target_name not in network.populations:
            raise ConfigurationError(f"{where}: unknown target population")
        target = network.populations[target_name]
        if kind == "poisson":
            _check_keys(entry, _POISSON_KEYS, where)
            _require(entry, ("rate_hz", "weight"), where)
            network.add_stimulus(
                PoissonStimulus(
                    target,
                    rate_hz=_as_float(entry["rate_hz"], f"{where}: 'rate_hz'"),
                    weight=_as_float(entry["weight"], f"{where}: 'weight'"),
                    dt=dt,
                    syn_type=_as_int(
                        entry.get("syn_type", 0), f"{where}: 'syn_type'"
                    ),
                    n_sources=_as_int(
                        entry.get("n_sources", 1), f"{where}: 'n_sources'"
                    ),
                )
            )
        elif kind == "pattern":
            _check_keys(entry, _PATTERN_KEYS, where)
            _require(entry, ("events", "weight"), where)
            if not isinstance(entry["events"], dict):
                raise ConfigurationError(
                    f"{where}: 'events' must map step -> neuron indices, "
                    f"got {type(entry['events']).__name__}"
                )
            events = {}
            for step, indices in entry["events"].items():
                step_index = _as_int(step, f"{where}: event step {step!r}")
                if isinstance(indices, (str, bytes)) or not isinstance(
                    indices, (list, tuple)
                ):
                    raise ConfigurationError(
                        f"{where}: event step {step}: neuron indices "
                        f"must be a list, got {indices!r}"
                    )
                events[step_index] = [
                    _as_int(index, f"{where}: event step {step} index")
                    for index in indices
                ]
            period = entry.get("period")
            if period is not None:
                period = _as_int(period, f"{where}: 'period'")
            network.add_stimulus(
                PatternStimulus(
                    target,
                    events,
                    weight=_as_float(entry["weight"], f"{where}: 'weight'"),
                    syn_type=_as_int(
                        entry.get("syn_type", 0), f"{where}: 'syn_type'"
                    ),
                    period=period,
                )
            )
        else:
            raise ConfigurationError(
                f"unknown stimulus kind {kind!r}; use 'poisson' or 'pattern'"
            )
    return network


def _build_plasticity(entry: Dict, where: str):
    from repro.plasticity import PairSTDP

    if not isinstance(entry, dict):
        raise ConfigurationError(
            f"{where}: 'plasticity' must be an object, "
            f"got {type(entry).__name__}"
        )
    entry = dict(entry)
    rule_name = entry.pop("rule", None)
    if rule_name != "pair_stdp":
        raise ConfigurationError(
            f"{where}: unknown plasticity rule {rule_name!r} "
            "(supported: 'pair_stdp')"
        )
    try:
        return PairSTDP(**entry)
    except TypeError as error:
        raise ConfigurationError(
            f"{where}: invalid plasticity parameters: {error}"
        ) from None


def build_backend(spec: Dict) -> Backend:
    """Instantiate the backend named by ``spec``."""
    from repro.hardware.backend import (
        FlexonBackend,
        FoldedFlexonBackend,
        HybridBackend,
    )

    name = spec.get("backend", "reference")
    dt = _as_float(spec.get("dt", 1e-4), "top-level 'dt'")
    solver = spec.get("solver", "Euler")
    if name == "reference":
        return ReferenceBackend(solver)
    if name == "flexon":
        return FlexonBackend(dt)
    if name == "folded":
        return FoldedFlexonBackend(dt)
    if name == "hybrid":
        return HybridBackend(dt, solver=solver)
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {_BACKENDS}"
    )


def build_simulation(spec: Dict) -> Tuple[Simulator, Network]:
    """Network + backend + simulator, ready to ``run(n_steps)``."""
    network = build_network(spec)
    backend = build_backend(spec)
    simulator = Simulator(
        network,
        backend,
        dt=_as_float(spec.get("dt", 1e-4), "top-level 'dt'"),
        seed=_as_int(spec.get("seed", 0), "top-level 'seed'"),
    )
    return simulator, network


def example_spec() -> Dict:
    """A ready-to-run specification (used by docs, tests, and the CLI)."""
    return {
        "name": "frontend-demo",
        "dt": 1e-4,
        "seed": 7,
        "backend": "folded",
        "populations": [
            {"name": "exc", "n": 80, "model": "DLIF"},
            {"name": "inh", "n": 20, "model": "DLIF"},
        ],
        "projections": [
            {"pre": "exc", "post": "exc", "probability": 0.1,
             "weight": 0.05, "syn_type": 0},
            {"pre": "exc", "post": "inh", "probability": 0.1,
             "weight": 0.05, "syn_type": 0},
            {"pre": "inh", "post": "exc", "probability": 0.1,
             "weight": 0.3, "syn_type": 1},
        ],
        "stimuli": [
            {"kind": "poisson", "target": "exc", "rate_hz": 500,
             "weight": 0.08, "n_sources": 10},
        ],
    }
