"""Network-description schema and builders.

A specification is a plain dict (JSON-compatible)::

    {
      "name": "my-net",
      "dt": 1e-4,
      "seed": 0,
      "backend": "folded",            # reference|flexon|folded|hybrid
      "solver": "Euler",              # reference/hybrid backends only
      "populations": [
        {"name": "exc", "n": 100, "model": "DLIF",
         "parameters": {"tau": 0.02}}          # optional overrides
      ],
      "projections": [
        {"pre": "exc", "post": "exc", "probability": 0.1,
         "weight": 0.05, "syn_type": 0, "delay_steps": 1,
         "delay_jitter": 0,
         "plasticity": {"rule": "pair_stdp", "a_plus": 0.01}}  # optional
      ],
      "stimuli": [
        {"kind": "poisson", "target": "exc", "rate_hz": 400,
         "weight": 0.05, "n_sources": 10, "syn_type": 0},
        {"kind": "pattern", "target": "exc", "weight": 1.0,
         "events": {"0": [0, 1]}, "period": 100}
      ]
    }

Unknown keys are rejected (typos should fail loudly), and every error
names the offending entry.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Tuple, Union

from repro.errors import ConfigurationError
from repro.models.base import ModelParameters
from repro.models.registry import create_model
from repro.network.backends import Backend, ReferenceBackend
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stimulus import PatternStimulus, PoissonStimulus

_POPULATION_KEYS = {"name", "n", "model", "parameters"}
_PROJECTION_KEYS = {
    "pre", "post", "probability", "weight", "weight_std", "syn_type",
    "delay_steps", "delay_jitter", "allow_self", "plasticity",
}
_POISSON_KEYS = {"kind", "target", "rate_hz", "weight", "n_sources", "syn_type"}
_PATTERN_KEYS = {"kind", "target", "weight", "events", "period", "syn_type"}
_TOP_KEYS = {
    "name", "dt", "seed", "backend", "solver",
    "populations", "projections", "stimuli",
}
_BACKENDS = ("reference", "flexon", "folded", "hybrid")


def _check_keys(entry: Dict, allowed: set, where: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {sorted(unknown)} in {where}; "
            f"allowed: {sorted(allowed)}"
        )


def load_spec(path: Union[str, pathlib.Path]) -> Dict:
    """Load a JSON specification from disk."""
    text = pathlib.Path(path).read_text()
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(spec, dict):
        raise ConfigurationError(f"{path} must contain a JSON object")
    return spec


def build_network(spec: Dict) -> Network:
    """Materialise the network described by ``spec``."""
    import numpy as np

    _check_keys(spec, _TOP_KEYS, "the top-level spec")
    if not spec.get("populations"):
        raise ConfigurationError("spec needs at least one population")
    network = Network(spec.get("name", "network"))
    rng = np.random.default_rng(int(spec.get("seed", 0)))
    dt = float(spec.get("dt", 1e-4))

    for entry in spec["populations"]:
        _check_keys(entry, _POPULATION_KEYS, f"population {entry.get('name')!r}")
        for key in ("name", "n", "model"):
            if key not in entry:
                raise ConfigurationError(
                    f"population entry missing {key!r}: {entry}"
                )
        parameters = None
        if entry.get("parameters"):
            overrides = dict(entry["parameters"])
            for tuple_key in ("tau_g", "v_g"):
                if tuple_key in overrides:
                    overrides[tuple_key] = tuple(overrides[tuple_key])
            parameters = ModelParameters(**overrides)
        network.add_population(
            entry["name"],
            int(entry["n"]),
            create_model(entry["model"], parameters=parameters),
        )

    for entry in spec.get("projections", []):
        where = f"projection {entry.get('pre')}->{entry.get('post')}"
        _check_keys(entry, _PROJECTION_KEYS, where)
        for key in ("pre", "post"):
            if key not in entry:
                raise ConfigurationError(f"{where} missing {key!r}")
        plasticity = entry.get("plasticity")
        kwargs = {
            key: entry[key]
            for key in (
                "probability", "weight", "weight_std", "syn_type",
                "delay_steps", "delay_jitter", "allow_self",
            )
            if key in entry
        }
        projection = network.connect(
            entry["pre"], entry["post"], rng=rng, **kwargs
        )
        if plasticity is not None:
            network.add_plasticity(
                projection, _build_plasticity(plasticity, where)
            )

    for entry in spec.get("stimuli", []):
        kind = entry.get("kind")
        target_name = entry.get("target")
        where = f"stimulus ({kind}) on {target_name!r}"
        if target_name not in network.populations:
            raise ConfigurationError(f"{where}: unknown target population")
        target = network.populations[target_name]
        if kind == "poisson":
            _check_keys(entry, _POISSON_KEYS, where)
            network.add_stimulus(
                PoissonStimulus(
                    target,
                    rate_hz=float(entry["rate_hz"]),
                    weight=float(entry["weight"]),
                    dt=dt,
                    syn_type=int(entry.get("syn_type", 0)),
                    n_sources=int(entry.get("n_sources", 1)),
                )
            )
        elif kind == "pattern":
            _check_keys(entry, _PATTERN_KEYS, where)
            events = {
                int(step): list(indices)
                for step, indices in entry["events"].items()
            }
            network.add_stimulus(
                PatternStimulus(
                    target,
                    events,
                    weight=float(entry["weight"]),
                    syn_type=int(entry.get("syn_type", 0)),
                    period=entry.get("period"),
                )
            )
        else:
            raise ConfigurationError(
                f"unknown stimulus kind {kind!r}; use 'poisson' or 'pattern'"
            )
    return network


def _build_plasticity(entry: Dict, where: str):
    from repro.plasticity import PairSTDP

    entry = dict(entry)
    rule_name = entry.pop("rule", None)
    if rule_name != "pair_stdp":
        raise ConfigurationError(
            f"{where}: unknown plasticity rule {rule_name!r} "
            "(supported: 'pair_stdp')"
        )
    return PairSTDP(**entry)


def build_backend(spec: Dict) -> Backend:
    """Instantiate the backend named by ``spec``."""
    from repro.hardware.backend import (
        FlexonBackend,
        FoldedFlexonBackend,
        HybridBackend,
    )

    name = spec.get("backend", "reference")
    dt = float(spec.get("dt", 1e-4))
    solver = spec.get("solver", "Euler")
    if name == "reference":
        return ReferenceBackend(solver)
    if name == "flexon":
        return FlexonBackend(dt)
    if name == "folded":
        return FoldedFlexonBackend(dt)
    if name == "hybrid":
        return HybridBackend(dt, solver=solver)
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {_BACKENDS}"
    )


def build_simulation(spec: Dict) -> Tuple[Simulator, Network]:
    """Network + backend + simulator, ready to ``run(n_steps)``."""
    network = build_network(spec)
    backend = build_backend(spec)
    simulator = Simulator(
        network,
        backend,
        dt=float(spec.get("dt", 1e-4)),
        seed=int(spec.get("seed", 0)),
    )
    return simulator, network


def example_spec() -> Dict:
    """A ready-to-run specification (used by docs, tests, and the CLI)."""
    return {
        "name": "frontend-demo",
        "dt": 1e-4,
        "seed": 7,
        "backend": "folded",
        "populations": [
            {"name": "exc", "n": 80, "model": "DLIF"},
            {"name": "inh", "n": 20, "model": "DLIF"},
        ],
        "projections": [
            {"pre": "exc", "post": "exc", "probability": 0.1,
             "weight": 0.05, "syn_type": 0},
            {"pre": "exc", "post": "inh", "probability": 0.1,
             "weight": 0.05, "syn_type": 0},
            {"pre": "inh", "post": "exc", "probability": 0.1,
             "weight": 0.3, "syn_type": 1},
        ],
        "stimuli": [
            {"kind": "poisson", "target": "exc", "rate_hz": 500,
             "weight": 0.08, "n_sources": 10},
        ],
    }
