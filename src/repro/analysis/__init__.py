"""Spike-train analysis utilities.

The neuroscience SNNs of Table I are characterised by their dynamical
state — Brunel's asynchronous-irregular regime, Vogels-Abbott's
self-sustained irregular activity, Destexhe's Up/Down alternation.
This package provides the standard statistics used to make such
statements quantitative: firing rates, inter-spike-interval (ISI)
statistics including the coefficient of variation, population synchrony,
and binned activity traces. The workload tests use them to verify the
reproduced networks are in the intended regimes, not merely spiking.
"""

from repro.analysis.statistics import (
    activity_trace,
    cv_isi,
    fano_factor,
    firing_rates,
    isi_distribution,
    population_rate_hz,
    synchrony_index,
)

__all__ = [
    "activity_trace",
    "cv_isi",
    "fano_factor",
    "firing_rates",
    "isi_distribution",
    "population_rate_hz",
    "synchrony_index",
]
