"""Spike-train statistics.

All functions take a :class:`~repro.network.recorder.SpikeRecord` (or
plain step/neuron arrays) plus the run geometry, and return plain
floats/arrays. Conventions:

* rates are in Hz of biological time (``steps x dt``);
* the ISI coefficient of variation (CV) is the standard
  irregularity measure — ~0 for clockwork firing, ~1 for Poisson-like
  irregular firing;
* the synchrony index is the variance-based population measure of
  Golomb (2007): the variance of the population-averaged activity
  normalised by the mean single-neuron variance; ~0 for asynchronous
  states, ~1 for fully synchronised ones.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.recorder import SpikeRecord


def _check_geometry(n_neurons: int, n_steps: int, dt: float) -> None:
    if n_neurons <= 0:
        raise ConfigurationError("n_neurons must be positive")
    if n_steps <= 0:
        raise ConfigurationError("n_steps must be positive")
    if dt <= 0:
        raise ConfigurationError("dt must be positive")


def firing_rates(
    record: SpikeRecord, n_neurons: int, n_steps: int, dt: float
) -> np.ndarray:
    """Per-neuron firing rate [Hz], length ``n_neurons``."""
    _check_geometry(n_neurons, n_steps, dt)
    counts = np.bincount(record.neurons, minlength=n_neurons)
    return counts / (n_steps * dt)


def population_rate_hz(
    record: SpikeRecord, n_neurons: int, n_steps: int, dt: float
) -> float:
    """Mean firing rate across the population [Hz]."""
    return float(firing_rates(record, n_neurons, n_steps, dt).mean())


def isi_distribution(record: SpikeRecord, neuron: Optional[int] = None) -> np.ndarray:
    """Inter-spike intervals in steps, pooled or for one neuron."""
    if neuron is not None:
        steps = np.sort(record.spikes_of(neuron))
        return np.diff(steps)
    intervals = []
    for unit in np.unique(record.neurons):
        steps = np.sort(record.spikes_of(int(unit)))
        if steps.size >= 2:
            intervals.append(np.diff(steps))
    if not intervals:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(intervals)


def cv_isi(record: SpikeRecord, neuron: Optional[int] = None) -> float:
    """Coefficient of variation of the inter-spike intervals.

    Returns ``nan`` when fewer than two intervals exist (the statistic
    is undefined, and pretending otherwise hides silent neurons).
    """
    intervals = isi_distribution(record, neuron)
    if intervals.size < 2:
        return float("nan")
    mean = intervals.mean()
    if mean == 0:
        return float("nan")
    return float(intervals.std() / mean)


def activity_trace(
    record: SpikeRecord, n_steps: int, bin_steps: int = 10
) -> np.ndarray:
    """Population spike counts per time bin (length ceil(n/bin))."""
    if bin_steps <= 0:
        raise ConfigurationError("bin_steps must be positive")
    n_bins = -(-n_steps // bin_steps)
    bins = record.steps // bin_steps
    return np.bincount(bins, minlength=n_bins).astype(np.float64)


def fano_factor(
    record: SpikeRecord, n_steps: int, bin_steps: int = 100
) -> float:
    """Variance/mean of binned population counts (1 for Poisson)."""
    trace = activity_trace(record, n_steps, bin_steps)
    mean = trace.mean()
    if mean == 0:
        return float("nan")
    return float(trace.var() / mean)


def synchrony_index(
    record: SpikeRecord,
    n_neurons: int,
    n_steps: int,
    bin_steps: int = 20,
    max_neurons: int = 200,
) -> float:
    """Golomb's variance-based population synchrony measure.

    chi^2 = Var(mean-field activity) / mean(Var(single activities)),
    computed on binned spike counts; subsampled to ``max_neurons`` for
    tractability on large populations. 0 = asynchronous, 1 = lockstep.
    """
    _check_geometry(n_neurons, n_steps, 1.0)
    n_bins = -(-n_steps // bin_steps)
    units = np.unique(record.neurons)
    if units.size == 0:
        return float("nan")
    if units.size > max_neurons:
        units = units[:: units.size // max_neurons][:max_neurons]
    traces = np.zeros((units.size, n_bins))
    for row, unit in enumerate(units):
        steps = record.spikes_of(int(unit))
        np.add.at(traces[row], steps // bin_steps, 1.0)
    single_variances = traces.var(axis=1)
    mean_single = single_variances.mean()
    if mean_single == 0:
        return float("nan")
    population = traces.mean(axis=0)
    return float(population.var() / mean_single)
