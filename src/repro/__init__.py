"""Flexon: a flexible digital neuron for efficient SNN simulations.

A complete Python reproduction of Lee et al., ISCA 2018. The package
splits into:

* :mod:`repro.features` — the 12 biologically common features and the
  Table III model catalog (the paper's core observation);
* :mod:`repro.models` — float reference implementations of every
  neuron model (the Brian/NEST substitute);
* :mod:`repro.solvers` — forward Euler and adaptive RKF45;
* :mod:`repro.network` — populations, projections, stimuli, and the
  three-phase time-step simulator;
* :mod:`repro.fixedpoint` — the 32-bit fixed-point substrate and the
  Schraudolph fast exponential;
* :mod:`repro.hardware` — bit-accurate functional models of baseline
  Flexon (Figure 10) and spatially folded Flexon (Figure 11, microcoded
  per Tables IV/V), the compiler, and array timing models;
* :mod:`repro.costmodel` — calibrated 45 nm synthesis, SRAM, CPU and
  GPU cost models;
* :mod:`repro.workloads` — the ten Table I SNNs, scalable;
* :mod:`repro.experiments` — harnesses regenerating every evaluation
  table and figure.

Quickstart::

    from repro import Network, PoissonStimulus, Simulator
    from repro.hardware import FoldedFlexonBackend

    net = Network("demo")
    pop = net.add_population("exc", 100, "LIF")
    net.connect("exc", "exc", probability=0.1, weight=20.0)
    net.add_stimulus(
        PoissonStimulus(pop, 400.0, 40.0, dt=1e-4, n_sources=2)
    )
    result = Simulator(net, FoldedFlexonBackend(1e-4), dt=1e-4).run(1000)
    print(result.total_spikes())
"""

from repro.errors import (
    CompilationError,
    ConfigurationError,
    FeatureConflictError,
    FixedPointError,
    MicrocodeError,
    ReproError,
    SimulationError,
    UnknownModelError,
)
from repro.features import Feature, FeatureSet, features_for_model
from repro.models import ModelParameters, NeuronModel, create_model
from repro.network import (
    Network,
    PatternStimulus,
    PoissonStimulus,
    Population,
    Projection,
    ReferenceBackend,
    SimulationResult,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "CompilationError",
    "ConfigurationError",
    "Feature",
    "FeatureConflictError",
    "FeatureSet",
    "FixedPointError",
    "MicrocodeError",
    "ModelParameters",
    "Network",
    "NeuronModel",
    "PatternStimulus",
    "PoissonStimulus",
    "Population",
    "Projection",
    "ReferenceBackend",
    "ReproError",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "UnknownModelError",
    "create_model",
    "features_for_model",
    "__version__",
]
