"""Schraudolph's fast exponential approximation.

The Flexon exponential unit (used by the EXI spike-initiation and the
conductance datapaths) is implemented in the paper with "a fast
approximation algorithm [46]" — Schraudolph, *A Fast, Compact
Approximation of the Exponential Function*, Neural Computation 1999.

The trick writes ``a * y + b`` into the exponent/high-mantissa field of
an IEEE-754 double; choosing ``a = 2**20 / ln 2`` makes the hardware
exponent field compute ``2**(y / ln 2) = e**y`` up to the piecewise-
linear mantissa interpolation, and ``b`` centres the approximation
error. Worst-case relative error is about 4% — well inside the
fixed-point quantisation budget of the 22-bit fraction used by Flexon.

Both a float version (:func:`fast_exp`) and a fixed-point wrapper
(:func:`fx_exp`) are provided; the hardware models call the latter.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fixedpoint.fixed import FixedFormat, fx_from_float, fx_to_float

#: Multiplier mapping y to the IEEE-754 double exponent field (bits 52+),
#: expressed for the high 32-bit word: 2**20 / ln(2).
_EXP_A = float(1 << 20) / np.log(2.0)

#: Offset: bias * 2**20 minus Schraudolph's error-centring constant C.
_EXP_C = 1023.0 * (1 << 20) - 60801.0

#: Input magnitude beyond which the biased exponent under/overflows.
_Y_MAX = 700.0


def fast_exp(y: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Approximate ``exp(y)`` with Schraudolph's bit-manipulation trick.

    Accepts a scalar or a numpy array; inputs are clipped to +/-700 so
    the biased exponent cannot wrap (the hardware unit saturates the
    same way).
    """
    scalar = np.isscalar(y)
    arr = np.clip(np.asarray(y, dtype=np.float64), -_Y_MAX, _Y_MAX)
    high = np.int64(_EXP_A * arr + _EXP_C)
    bits = high.astype(np.int64) << 32
    out = bits.view(np.float64)
    if scalar:
        return float(out)
    return out


def fx_exp(raw, fmt: FixedFormat, strict: bool = False):
    """Exponential of a raw fixed-point value, returned in the same format.

    Models the Flexon exp unit: the operand is interpreted in ``fmt``,
    passed through the Schraudolph approximation, and the result is
    re-quantised (with saturation) into ``fmt``. Large positive inputs
    therefore saturate at ``fmt.max_value``, exactly as a fixed-point
    output register would.
    """
    y = fx_to_float(raw, fmt)
    return fx_from_float(fast_exp(y), fmt, strict=strict)


def max_relative_error(lo: float = -1.0, hi: float = 1.0, samples: int = 10001) -> float:
    """Worst observed relative error of :func:`fast_exp` on ``[lo, hi]``.

    Used by tests and the exp-unit ablation bench to document the
    approximation quality on the range neuron simulations exercise.
    """
    ys = np.linspace(lo, hi, samples)
    exact = np.exp(ys)
    approx = fast_exp(ys)
    return float(np.max(np.abs(approx - exact) / exact))
