"""Fixed-point arithmetic substrate used by the Flexon hardware models.

The paper's digital neurons use a 32-bit fixed-point representation with
10 integer bits (Section IV-B1). Two value-compaction mechanisms are
modeled here:

* **shift & scale** — constants are normalised so that the resting
  voltage is 0 and the threshold voltage is 1.0 (handled by
  :mod:`repro.hardware.constants`);
* **truncate** — once the threshold is 1.0, membrane potentials live in
  ``[0, 1)`` so their integer portion can be truncated, shrinking
  per-neuron state from 32 to 22 bits.

This package provides :class:`~repro.fixedpoint.fixed.FixedFormat`
(a Q-format descriptor), :class:`~repro.fixedpoint.fixed.Fixed`
(a scalar fixed-point value), vectorised raw-integer helpers used by the
array-level hardware models, and the Schraudolph fast exponential
(:mod:`repro.fixedpoint.fastexp`) the paper uses for its exp unit.
"""

from repro.fixedpoint.fixed import (
    FLEXON_FORMAT,
    MEMBRANE_FORMAT,
    Fixed,
    FixedFormat,
    SaturationStats,
    fx_add,
    fx_from_float,
    fx_mul,
    fx_neg,
    fx_saturate,
    fx_sub,
    fx_to_float,
    observe_saturation,
)
from repro.fixedpoint.fastexp import fast_exp, fx_exp

__all__ = [
    "FLEXON_FORMAT",
    "MEMBRANE_FORMAT",
    "Fixed",
    "FixedFormat",
    "SaturationStats",
    "fast_exp",
    "fx_add",
    "fx_exp",
    "fx_from_float",
    "fx_mul",
    "fx_neg",
    "fx_saturate",
    "fx_sub",
    "fx_to_float",
    "observe_saturation",
]
