"""Q-format fixed-point numbers, scalar and vectorised.

A :class:`FixedFormat` describes a two's-complement Q-format:
``total_bits`` bits in all, of which ``frac_bits`` are fractional.
Raw values are plain Python ints (scalar path) or ``numpy.int64``
arrays (vector path); the format object interprets them.

The hardware models default to *saturating* arithmetic, which is what
the RTL implements. A ``strict=True`` flag on the helpers raises
:class:`~repro.errors.FixedPointOverflowError` instead, which the test
suite uses to prove the paper's chosen formats never saturate on the
evaluated workloads.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Union

import numpy as np

from repro.errors import FixedPointFormatError, FixedPointOverflowError

#: Scalar or numpy array of raw fixed-point integers.
RawLike = Union[int, np.ndarray]


@dataclass(frozen=True)
class FixedFormat:
    """A two's-complement Q-format descriptor.

    Parameters
    ----------
    total_bits:
        Total width in bits, including the sign bit when ``signed``.
    frac_bits:
        Number of fractional bits. ``total_bits - frac_bits`` is the
        integer portion (including sign for signed formats).
    signed:
        Whether the format is two's-complement signed.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits <= 0 or self.total_bits > 63:
            raise FixedPointFormatError(
                f"total_bits must be in 1..63, got {self.total_bits}"
            )
        if self.frac_bits < 0 or self.frac_bits > self.total_bits:
            raise FixedPointFormatError(
                f"frac_bits must be in 0..total_bits, got {self.frac_bits}"
            )
        if self.signed and self.total_bits < 2:
            raise FixedPointFormatError("signed formats need at least 2 bits")

    @property
    def int_bits(self) -> int:
        """Bits in the integer portion (includes the sign bit if signed)."""
        return self.total_bits - self.frac_bits

    @property
    def scale(self) -> int:
        """The scaling factor ``2 ** frac_bits``."""
        return 1 << self.frac_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit."""
        return 1.0 / self.scale

    def describe(self) -> str:
        """Human-readable Q-format name, e.g. ``Q9.22`` for signed 32-bit."""
        prefix = "Q" if self.signed else "UQ"
        int_part = self.int_bits - (1 if self.signed else 0)
        return f"{prefix}{int_part}.{self.frac_bits}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


#: The paper's 32-bit format with 10 integer bits (sign + 9) and 22
#: fractional bits, used for constants and general datapath values.
FLEXON_FORMAT = FixedFormat(total_bits=32, frac_bits=22, signed=True)

#: Truncated membrane-potential storage: theta == 1.0 keeps v in [0, 1),
#: so only 22 bits of fraction (plus sign to allow transient negatives
#: during inhibition) need to persist per neuron. This reproduces the
#: 32 -> 22 bits/neuron saving reported in Section IV-B1.
MEMBRANE_FORMAT = FixedFormat(total_bits=24, frac_bits=22, signed=True)


@dataclass
class SaturationStats:
    """Per-format accounting of non-strict saturation events.

    The RTL saturates silently; the paper's correctness argument rests
    on the chosen formats *never* saturating on the evaluated workloads
    (Section VI-A). These counters make that claim observable at run
    time instead of only assertable in strict mode: each time a
    non-strict saturate actually clips, the clipped element count is
    recorded against the format that clipped it.
    """

    #: Elements clipped, keyed by the format that clipped them.
    clipped: Dict[FixedFormat, int] = field(default_factory=dict)
    #: Total elements examined while accounting was active.
    checked: int = 0

    def record(self, fmt: FixedFormat, checked: int, clipped: int) -> None:
        self.checked += checked
        if clipped:
            self.clipped[fmt] = self.clipped.get(fmt, 0) + clipped

    @property
    def total_clipped(self) -> int:
        """Elements clipped across every format."""
        return sum(self.clipped.values())

    def merge(self, other: "SaturationStats") -> None:
        """Fold another stats object into this one."""
        self.checked += other.checked
        for fmt, count in other.clipped.items():
            self.clipped[fmt] = self.clipped.get(fmt, 0) + count

    def describe(self) -> str:
        """One-line summary, e.g. ``Q9.22: 3 clips / 1200 checked``."""
        if not self.clipped:
            return f"no saturation ({self.checked} values checked)"
        parts = ", ".join(
            f"{fmt.describe()}: {count}"
            for fmt, count in sorted(
                self.clipped.items(), key=lambda item: -item[1]
            )
        )
        return f"{parts} clips / {self.checked} checked"


#: The process-wide stats sink; ``None`` keeps the hot path untouched.
_ACTIVE_SINK: Optional[SaturationStats] = None


@contextmanager
def observe_saturation(stats: SaturationStats) -> Iterator[SaturationStats]:
    """Route all non-strict saturation accounting into ``stats``.

    Hardware runtimes wrap each step in this context so a whole run's
    clip counts accumulate in one :class:`SaturationStats`; helpers may
    also be given an explicit ``stats=`` sink, which takes precedence.
    """
    global _ACTIVE_SINK
    previous = _ACTIVE_SINK
    _ACTIVE_SINK = stats
    try:
        yield stats
    finally:
        _ACTIVE_SINK = previous


def _saturate_scalar(
    raw: int,
    fmt: FixedFormat,
    strict: bool,
    stats: Optional[SaturationStats] = None,
) -> int:
    sink = stats if stats is not None else _ACTIVE_SINK
    if raw > fmt.raw_max:
        if strict:
            raise FixedPointOverflowError(
                f"raw value {raw} exceeds max {fmt.raw_max} of {fmt}"
            )
        if sink is not None:
            sink.record(fmt, 1, 1)
        return fmt.raw_max
    if raw < fmt.raw_min:
        if strict:
            raise FixedPointOverflowError(
                f"raw value {raw} below min {fmt.raw_min} of {fmt}"
            )
        if sink is not None:
            sink.record(fmt, 1, 1)
        return fmt.raw_min
    if sink is not None:
        sink.record(fmt, 1, 0)
    return raw


def _saturate_array(
    raw: np.ndarray,
    fmt: FixedFormat,
    strict: bool,
    stats: Optional[SaturationStats] = None,
) -> np.ndarray:
    if strict:
        if np.any(raw > fmt.raw_max) or np.any(raw < fmt.raw_min):
            raise FixedPointOverflowError(f"array value saturates format {fmt}")
        return raw
    sink = stats if stats is not None else _ACTIVE_SINK
    if sink is not None:
        over = int(np.count_nonzero(raw > fmt.raw_max))
        under = int(np.count_nonzero(raw < fmt.raw_min))
        sink.record(fmt, raw.size, over + under)
    return np.clip(raw, fmt.raw_min, fmt.raw_max)


def _saturate(
    raw: RawLike,
    fmt: FixedFormat,
    strict: bool,
    stats: Optional[SaturationStats] = None,
) -> RawLike:
    if isinstance(raw, np.ndarray):
        return _saturate_array(raw, fmt, strict, stats)
    return _saturate_scalar(int(raw), fmt, strict, stats)


def fx_saturate(
    raw: RawLike,
    fmt: FixedFormat,
    strict: bool = False,
    stats: Optional[SaturationStats] = None,
) -> RawLike:
    """Saturate raw values to a format's range, with accounting.

    The public face of the internal saturation helpers: the membrane
    truncation write-back (Section IV-B1) uses this so clamps against
    the narrow 24-bit store are counted like every other saturation.
    """
    return _saturate(raw, fmt, strict, stats)


def fx_from_float(value, fmt: FixedFormat, strict: bool = False) -> RawLike:
    """Quantise a float (or float array) to raw fixed-point integers.

    Rounds to nearest (ties away from zero, matching hardware rounders)
    and saturates to the format range unless ``strict``.
    """
    # Pre-clamp to twice the representable range so the float->int cast
    # cannot overflow int64 for huge inputs (e.g. a saturating exp);
    # the clamped value still trips strict-mode overflow detection.
    lo, hi = 2.0 * fmt.min_value - 1.0, 2.0 * fmt.max_value + 1.0
    if isinstance(value, np.ndarray):
        arr = np.nan_to_num(
            np.asarray(value, dtype=np.float64), nan=0.0, posinf=hi, neginf=lo
        )
        raw = np.floor(np.clip(arr, lo, hi) * fmt.scale + 0.5)
        raw = raw.astype(np.int64)
        return _saturate_array(raw, fmt, strict)
    clamped = min(max(float(value), lo), hi)
    if clamped != clamped:  # NaN
        clamped = 0.0
    scaled = clamped * fmt.scale
    raw = int(np.floor(scaled + 0.5)) if scaled >= 0 else -int(np.floor(-scaled + 0.5))
    return _saturate_scalar(raw, fmt, strict)


def fx_to_float(raw: RawLike, fmt: FixedFormat):
    """Convert raw fixed-point integers back to floats."""
    if isinstance(raw, np.ndarray):
        return raw.astype(np.float64) / fmt.scale
    return float(raw) / fmt.scale


def fx_add(a: RawLike, b: RawLike, fmt: FixedFormat, strict: bool = False) -> RawLike:
    """Saturating fixed-point addition of two raw values."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        raw = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return _saturate_array(raw, fmt, strict)
    return _saturate_scalar(int(a) + int(b), fmt, strict)


def fx_sub(a: RawLike, b: RawLike, fmt: FixedFormat, strict: bool = False) -> RawLike:
    """Saturating fixed-point subtraction ``a - b``."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        raw = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
        return _saturate_array(raw, fmt, strict)
    return _saturate_scalar(int(a) - int(b), fmt, strict)


def fx_neg(a: RawLike, fmt: FixedFormat, strict: bool = False) -> RawLike:
    """Saturating fixed-point negation."""
    if isinstance(a, np.ndarray):
        return _saturate_array(-np.asarray(a, dtype=np.int64), fmt, strict)
    return _saturate_scalar(-int(a), fmt, strict)


def fx_mul(a: RawLike, b: RawLike, fmt: FixedFormat, strict: bool = False) -> RawLike:
    """Saturating fixed-point multiply with truncation toward -inf.

    The full-precision product has ``2 * frac_bits`` fractional bits;
    the hardware truncates back to ``frac_bits`` by an arithmetic right
    shift, which this helper reproduces exactly.

    The vector path goes through Python-object arithmetic only when the
    operands risk overflowing int64 (never the case for the 32-bit
    formats used here, whose products fit in 63 bits).
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        raw = prod >> fmt.frac_bits
        return _saturate_array(raw, fmt, strict)
    raw = (int(a) * int(b)) >> fmt.frac_bits
    return _saturate_scalar(raw, fmt, strict)


class Fixed:
    """A scalar fixed-point value: a raw integer plus its format.

    ``Fixed`` supports ``+``, ``-``, ``*`` and comparisons against other
    ``Fixed`` values of the *same* format; mixing formats is an error so
    that datapath models cannot silently mix precisions. Use
    :meth:`Fixed.from_float` / :attr:`Fixed.value` at the boundaries.
    """

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: int, fmt: FixedFormat):
        self.raw = int(raw)
        self.fmt = fmt

    @classmethod
    def from_float(cls, value: float, fmt: FixedFormat = FLEXON_FORMAT) -> "Fixed":
        """Quantise ``value`` into the given format."""
        return cls(fx_from_float(value, fmt), fmt)

    @classmethod
    def zero(cls, fmt: FixedFormat = FLEXON_FORMAT) -> "Fixed":
        """The zero value in the given format."""
        return cls(0, fmt)

    @classmethod
    def one(cls, fmt: FixedFormat = FLEXON_FORMAT) -> "Fixed":
        """The value 1.0 in the given format (saturated if out of range)."""
        return cls(fx_from_float(1.0, fmt), fmt)

    @property
    def value(self) -> float:
        """The real value this fixed-point number represents."""
        return fx_to_float(self.raw, self.fmt)

    def _check_fmt(self, other: "Fixed") -> None:
        if self.fmt != other.fmt:
            raise FixedPointFormatError(
                f"format mismatch: {self.fmt} vs {other.fmt}"
            )

    def __add__(self, other: "Fixed") -> "Fixed":
        self._check_fmt(other)
        return Fixed(fx_add(self.raw, other.raw, self.fmt), self.fmt)

    def __sub__(self, other: "Fixed") -> "Fixed":
        self._check_fmt(other)
        return Fixed(fx_sub(self.raw, other.raw, self.fmt), self.fmt)

    def __mul__(self, other: "Fixed") -> "Fixed":
        self._check_fmt(other)
        return Fixed(fx_mul(self.raw, other.raw, self.fmt), self.fmt)

    def __neg__(self) -> "Fixed":
        return Fixed(fx_neg(self.raw, self.fmt), self.fmt)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Fixed):
            return NotImplemented
        return self.fmt == other.fmt and self.raw == other.raw

    def __lt__(self, other: "Fixed") -> bool:
        self._check_fmt(other)
        return self.raw < other.raw

    def __le__(self, other: "Fixed") -> bool:
        self._check_fmt(other)
        return self.raw <= other.raw

    def __gt__(self, other: "Fixed") -> bool:
        self._check_fmt(other)
        return self.raw > other.raw

    def __ge__(self, other: "Fixed") -> bool:
        self._check_fmt(other)
        return self.raw >= other.raw

    def __hash__(self) -> int:
        return hash((self.raw, self.fmt))

    def __repr__(self) -> str:
        return f"Fixed({self.value:.9g}, {self.fmt.describe()})"
