"""External stimulus generators (the stimulus-generation phase).

"This stage generates the spikes forged by a pattern or a random number
generator, and injects them to the network to mimic external stimulus"
(Section II-C). Two generators are provided, matching the paper's two
configurations: :class:`PoissonStimulus` (random) and
:class:`PatternStimulus` (pre-defined pattern).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.population import Population


class Stimulus(abc.ABC):
    """A source of externally forged spikes targeting one population."""

    def __init__(self, target: Population, syn_type: int = 0):
        if not 0 <= syn_type < target.n_synapse_types:
            raise ConfigurationError(
                f"synapse type {syn_type} out of range for {target.name!r}"
            )
        self.target = target
        self.syn_type = syn_type

    @abc.abstractmethod
    def generate(
        self, step: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Spikes for this step: (target indices, weights)."""


class PoissonStimulus(Stimulus):
    """Independent Poisson spike trains driving a population.

    Each target neuron receives an external Poisson train of the given
    rate; each generated spike deposits ``weight`` into the neuron's
    accumulated input for the current step. ``n_sources`` independent
    trains per neuron model a population of virtual input fibres.
    """

    def __init__(
        self,
        target: Population,
        rate_hz: float,
        weight: float,
        dt: float,
        syn_type: int = 0,
        n_sources: int = 1,
        neuron_slice: Optional[slice] = None,
    ):
        super().__init__(target, syn_type)
        if rate_hz < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_hz}")
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.rate_hz = rate_hz
        self.weight = weight
        self.dt = dt
        self.n_sources = n_sources
        indices = np.arange(target.n)
        if neuron_slice is not None:
            indices = indices[neuron_slice]
        self._indices = indices

    @property
    def p_spike(self) -> float:
        """Per-source spike probability in one time step."""
        return min(1.0, self.rate_hz * self.dt)

    def generate(self, step: int, rng: np.random.Generator):
        counts = rng.binomial(
            self.n_sources, self.p_spike, size=self._indices.size
        )
        hit = counts > 0
        return self._indices[hit], self.weight * counts[hit].astype(np.float64)


class PatternStimulus(Stimulus):
    """A pre-defined spike pattern: explicit (step, neuron) events.

    ``events`` maps a time step to a sequence of target neuron indices
    that receive one input spike of ``weight`` at that step. The
    pattern repeats with ``period`` when given.
    """

    def __init__(
        self,
        target: Population,
        events: Dict[int, Sequence[int]],
        weight: float,
        syn_type: int = 0,
        period: Optional[int] = None,
    ):
        super().__init__(target, syn_type)
        if period is not None and period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.weight = weight
        self.period = period
        self._events = {
            int(step): np.asarray(idx, dtype=np.int64)
            for step, idx in events.items()
        }
        for step, idx in self._events.items():
            if idx.size and (idx.min() < 0 or idx.max() >= target.n):
                raise ConfigurationError(
                    f"pattern index out of range at step {step}"
                )

    def generate(self, step: int, rng: np.random.Generator):
        key = step % self.period if self.period is not None else step
        idx = self._events.get(key)
        if idx is None or idx.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        return idx, np.full(idx.size, self.weight, dtype=np.float64)
