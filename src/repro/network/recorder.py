"""Spike and state recording.

:class:`SpikeRecorder` collects (step, neuron) pairs per population —
the output format the Section VI-A validation compares between the
reference simulator and the hardware backends. :class:`StateRecorder`
samples selected state variables over time for plots and tests of
single-neuron behaviours (e.g. the membrane-decay shapes of Figure 4).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class SpikeRecord:
    """All spikes of one population as parallel step/neuron arrays."""

    steps: np.ndarray
    neurons: np.ndarray

    @property
    def n_spikes(self) -> int:
        return int(self.steps.size)

    def spike_pairs(self) -> set:
        """The spikes as a set of (step, neuron) tuples."""
        return set(zip(self.steps.tolist(), self.neurons.tolist()))

    def rate_hz(self, n_neurons: int, n_steps: int, dt: float) -> float:
        """Mean firing rate across the population."""
        duration = n_steps * dt
        if duration <= 0 or n_neurons <= 0:
            return 0.0
        return self.n_spikes / (n_neurons * duration)

    def spikes_of(self, neuron: int) -> np.ndarray:
        """Steps at which the given neuron fired."""
        return self.steps[self.neurons == neuron]


class SpikeRecorder:
    """Accumulates fired masks into per-population spike records."""

    def __init__(self) -> None:
        self._steps: Dict[str, List[np.ndarray]] = {}
        self._neurons: Dict[str, List[np.ndarray]] = {}
        self._counts: Dict[str, int] = {}

    def record(self, population: str, step: int, fired: np.ndarray) -> None:
        """Record the fired mask of one population at one step."""
        self.record_indices(population, step, np.nonzero(fired)[0])

    def record_indices(
        self, population: str, step: int, idx: np.ndarray
    ) -> None:
        """Record already-extracted fired indices (no mask scan)."""
        if idx.size == 0:
            return
        self._steps.setdefault(population, []).append(
            np.full(idx.size, step, dtype=np.int64)
        )
        self._neurons.setdefault(population, []).append(idx.astype(np.int64))
        self._counts[population] = self._counts.get(population, 0) + int(
            idx.size
        )

    def result(self, population: str) -> SpikeRecord:
        """The accumulated spikes of one population."""
        steps = self._steps.get(population, [])
        neurons = self._neurons.get(population, [])
        if not steps:
            empty = np.empty(0, dtype=np.int64)
            return SpikeRecord(empty, empty.copy())
        return SpikeRecord(np.concatenate(steps), np.concatenate(neurons))

    def populations(self) -> List[str]:
        """Names of populations that produced at least one spike."""
        return sorted(self._steps)

    def counts(self) -> Dict[str, int]:
        """Cumulative spike count per population (O(populations) reads).

        Maintained incrementally so mid-run consumers — the health
        layer's spike-rate detector polls this every evaluation — never
        touch the chunk lists the hot loop is appending to.
        """
        return dict(self._counts)

    def total_spikes(self) -> int:
        """Total spikes across all populations."""
        return sum(self._counts.values())

    def digest(self) -> str:
        """SHA-256 over the full spike trains (bit-identity pinning).

        Two recorders whose digests match hold bit-identical spikes —
        the cheap cross-process stand-in for comparing the full trains.
        ``repro.supervision.job.spike_digest`` delegates here.
        """
        digest = hashlib.sha256()
        for population in self.populations():
            record = self.result(population)
            digest.update(population.encode("utf-8"))
            digest.update(record.steps.tobytes())
            digest.update(record.neurons.tobytes())
        return digest.hexdigest()

    def snapshot(self) -> Dict[str, tuple]:
        """Everything recorded so far as ``{population: (steps, neurons)}``."""
        out = {}
        for population in self._steps:
            record = self.result(population)
            out[population] = (record.steps, record.neurons)
        return out

    def load(self, snapshot: Dict[str, tuple]) -> None:
        """Replace the contents from a :meth:`snapshot` (resume support).

        Subsequent :meth:`record_indices` calls append after the loaded
        spikes, so a resumed run's recorder carries the full train.
        """
        self._steps = {}
        self._neurons = {}
        self._counts = {}
        for population, (steps, neurons) in snapshot.items():
            loaded = np.asarray(steps, dtype=np.int64).copy()
            self._steps[population] = [loaded]
            self._neurons[population] = [
                np.asarray(neurons, dtype=np.int64).copy()
            ]
            self._counts[population] = int(loaded.size)


@dataclass
class StateRecorder:
    """Samples chosen state variables of chosen neurons over time.

    ``every`` sets the sampling interval in simulator steps: 1 (the
    default) samples every step, N keeps the first of every N offered
    samples — long runs can record coarse traces without paying full
    per-step sampling cost or memory.
    """

    population: str
    variables: Sequence[str]
    neurons: Sequence[int] = field(default_factory=lambda: [0])
    every: int = 1
    traces: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    #: Samples offered by the simulator so far (including skipped ones).
    samples_offered: int = 0

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")

    def sample(self, state: Dict[str, np.ndarray]) -> None:
        """Append the tracked variables (honouring the interval)."""
        offered = self.samples_offered
        self.samples_offered = offered + 1
        if offered % self.every:
            return
        idx = np.asarray(self.neurons, dtype=np.int64)
        for var in self.variables:
            self.traces.setdefault(var, []).append(state[var][idx].copy())

    def samples_kept(self) -> int:
        """Number of samples actually recorded so far."""
        if not self.traces:
            return 0
        return max(len(chunks) for chunks in self.traces.values())

    def trace(self, variable: str) -> np.ndarray:
        """A (steps, len(neurons)) array for one variable."""
        chunks = self.traces.get(variable, [])
        if not chunks:
            return np.empty((0, len(self.neurons)))
        return np.stack(chunks)
