"""Projections: synapse groups between populations.

A projection stores its synapses in a CSR-like layout sorted by
presynaptic neuron: ``pre_ptr[i] .. pre_ptr[i+1]`` indexes the synapses
leaving pre-neuron ``i``, with parallel arrays for the target index,
weight, delay (in time steps) and synapse type. This makes the synapse
calculation phase — classify generated spikes by target and accumulate
weights (Section II-C) — a vectorised gather/scatter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.population import Population


class Projection:
    """A set of synapses from ``pre`` to ``post``."""

    def __init__(
        self,
        pre: Population,
        post: Population,
        pre_idx: np.ndarray,
        post_idx: np.ndarray,
        weights: np.ndarray,
        delays: np.ndarray,
        syn_type: int,
        name: Optional[str] = None,
    ):
        pre_idx = np.asarray(pre_idx, dtype=np.int64)
        post_idx = np.asarray(post_idx, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        delays = np.asarray(delays, dtype=np.int64)
        sizes = {pre_idx.size, post_idx.size, weights.size, delays.size}
        if len(sizes) != 1:
            raise ConfigurationError("synapse arrays must have equal length")
        if pre_idx.size and (pre_idx.min() < 0 or pre_idx.max() >= pre.n):
            raise ConfigurationError("pre index out of range")
        if post_idx.size and (post_idx.min() < 0 or post_idx.max() >= post.n):
            raise ConfigurationError("post index out of range")
        if delays.size and delays.min() < 1:
            raise ConfigurationError("delays must be at least one time step")
        if not 0 <= syn_type < post.n_synapse_types:
            raise ConfigurationError(
                f"synapse type {syn_type} out of range for {post.name!r}"
            )
        self.pre = pre
        self.post = post
        self.syn_type = syn_type
        self.name = name or f"{pre.name}->{post.name}"
        # Sort by presynaptic neuron and build the CSR row pointer.
        order = np.argsort(pre_idx, kind="stable")
        self.post_idx = post_idx[order]
        self.weights = weights[order]
        self.delays = delays[order]
        counts = np.bincount(pre_idx, minlength=pre.n)
        self.pre_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        # Post-sorted (CSC-like) view, built lazily: plasticity rules
        # need "all synapses into neuron j" for potentiation.
        self._post_order: Optional[np.ndarray] = None
        self._post_ptr: Optional[np.ndarray] = None
        self._pre_of_synapse: Optional[np.ndarray] = None

    @property
    def n_synapses(self) -> int:
        """Number of synapses in this projection."""
        return int(self.post_idx.size)

    @property
    def max_delay(self) -> int:
        """Largest delay in time steps (1 when the projection is empty)."""
        return int(self.delays.max()) if self.delays.size else 1

    @property
    def min_delay(self) -> int:
        """Smallest delay in time steps (1 when the projection is empty).

        The routing layer's flush horizon: no spike through this
        projection can arrive sooner than ``min_delay`` steps after it
        was generated.
        """
        return int(self.delays.min()) if self.delays.size else 1

    def synapses_of(self, fired_pre: np.ndarray):
        """Gather the synapses of the given fired presynaptic neurons.

        ``fired_pre`` is an array of presynaptic indices. Returns
        ``(post_idx, weights, delays)`` for every outgoing synapse of
        every fired neuron.
        """
        if fired_pre.size == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, np.empty(0, dtype=np.float64), empty_i
        starts = self.pre_ptr[fired_pre]
        ends = self.pre_ptr[fired_pre + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, np.empty(0, dtype=np.float64), empty_i
        # Build a flat index covering [starts[k], ends[k]) for each k.
        offsets = np.repeat(ends - np.cumsum(lengths), lengths)
        flat = offsets + np.arange(total)
        return self.post_idx[flat], self.weights[flat], self.delays[flat]

    @staticmethod
    def _flat_range_gather(ptr, order, targets):
        """Flat indices covering ptr-delimited groups of ``targets``."""
        if targets.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = ptr[targets]
        lengths = ptr[targets + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.repeat(starts - (np.cumsum(lengths) - lengths), lengths)
        flat = offsets + np.arange(total)
        return order[flat] if order is not None else flat

    def pre_of_synapses(self) -> np.ndarray:
        """Presynaptic neuron of every synapse (CSR row expansion)."""
        if self._pre_of_synapse is None:
            counts = np.diff(self.pre_ptr)
            self._pre_of_synapse = np.repeat(
                np.arange(self.pre.n, dtype=np.int64), counts
            )
        return self._pre_of_synapse

    def synapse_indices_of(self, fired_pre: np.ndarray) -> np.ndarray:
        """Flat synapse indices leaving the given presynaptic neurons."""
        return self._flat_range_gather(self.pre_ptr, None, fired_pre)

    def _ensure_post_index(self) -> None:
        if self._post_ptr is not None:
            return
        order = np.argsort(self.post_idx, kind="stable")
        counts = np.bincount(self.post_idx, minlength=self.post.n)
        self._post_order = order.astype(np.int64)
        self._post_ptr = np.concatenate(([0], np.cumsum(counts))).astype(
            np.int64
        )

    def synapse_indices_into(self, fired_post: np.ndarray) -> np.ndarray:
        """Flat synapse indices arriving at the given post neurons."""
        self._ensure_post_index()
        return self._flat_range_gather(
            self._post_ptr, self._post_order, fired_post
        )

    def __repr__(self) -> str:
        return (
            f"Projection({self.name!r}, synapses={self.n_synapses}, "
            f"type={self.syn_type})"
        )


def connect(
    pre: Population,
    post: Population,
    probability: float = 1.0,
    weight: float = 0.1,
    weight_std: float = 0.0,
    delay_steps: int = 1,
    delay_jitter: int = 0,
    syn_type: int = 0,
    allow_self: bool = False,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> Projection:
    """Random fixed-probability connectivity (the PyNN workhorse).

    Each (pre, post) pair is connected independently with the given
    probability; weights are drawn from a normal distribution around
    ``weight`` (clipped to keep the sign) and delays uniformly from
    ``delay_steps .. delay_steps + delay_jitter``.
    """
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
    for field, value in (("delay_steps", delay_steps), ("delay_jitter", delay_jitter)):
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ConfigurationError(
                f"connect({pre.name!r} -> {post.name!r}): {field} must be "
                f"an integer, got {value!r}"
            )
    if delay_steps < 1:
        raise ConfigurationError(
            f"connect({pre.name!r} -> {post.name!r}): delay_steps must be "
            f">= 1, got {delay_steps}"
        )
    if delay_jitter < 0:
        raise ConfigurationError(
            f"connect({pre.name!r} -> {post.name!r}): delay_jitter must be "
            f">= 0, got {delay_jitter}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    if probability >= 1.0:
        pre_idx, post_idx = np.meshgrid(
            np.arange(pre.n), np.arange(post.n), indexing="ij"
        )
        pre_idx = pre_idx.ravel()
        post_idx = post_idx.ravel()
    elif pre.n * post.n <= 4_000_000:
        mask = rng.random((pre.n, post.n)) < probability
        pre_idx, post_idx = np.nonzero(mask)
    else:
        # Large pair counts: draw each pre-neuron's out-degree
        # binomially and sample targets with replacement. Statistically
        # this allows the occasional duplicate synapse (two synapses
        # between the same pair), which biological networks also have;
        # memory stays proportional to the synapse count instead of
        # the pair count.
        counts = rng.binomial(post.n, probability, size=pre.n)
        pre_idx = np.repeat(np.arange(pre.n), counts)
        post_idx = rng.integers(0, post.n, size=int(counts.sum()))
    if pre is post and not allow_self:
        keep = pre_idx != post_idx
        pre_idx, post_idx = pre_idx[keep], post_idx[keep]
    n_syn = pre_idx.size
    if weight_std > 0.0:
        weights = rng.normal(weight, weight_std, size=n_syn)
        if weight >= 0:
            np.clip(weights, 0.0, None, out=weights)
        else:
            np.clip(weights, None, 0.0, out=weights)
    else:
        weights = np.full(n_syn, weight, dtype=np.float64)
    if delay_jitter > 0:
        delays = rng.integers(
            delay_steps, delay_steps + delay_jitter + 1, size=n_syn
        )
    else:
        delays = np.full(n_syn, delay_steps, dtype=np.int64)
    return Projection(
        pre, post, pre_idx, post_idx, weights, delays, syn_type, name=name
    )
