"""Populations: homogeneous groups of neurons sharing one model.

Mirrors PyNN's ``sim.Population()`` (Section VII-B): a population has a
name, a size, and a neuron model instance whose parameters apply to all
members. Backends own the actual state arrays; the population is the
description.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.base import NeuronModel


class Population:
    """A named group of ``n`` neurons simulated with one model."""

    def __init__(self, name: str, n: int, model: NeuronModel):
        if n <= 0:
            raise ConfigurationError(f"population size must be positive, got {n}")
        if not name:
            raise ConfigurationError("population name must be non-empty")
        self.name = name
        self.n = n
        self.model = model

    @property
    def n_synapse_types(self) -> int:
        """Synapse types of the underlying model."""
        return self.model.parameters.n_synapse_types

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"Population({self.name!r}, n={self.n}, "
            f"model={self.model.name})"
        )
