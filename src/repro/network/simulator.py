"""The three-phase time-step simulation loop (Section II-C).

Each simulated time step runs:

1. **Stimulus generation** — external sources forge spikes and inject
   them into their target populations' current input slots.
2. **Neuron computation** — every population's backend consumes its
   accumulated input, updates internal state, and reports which neurons
   fired. (This is the phase Flexon accelerates.)
3. **Synapse calculation** — the fired spikes are classified by target
   neuron through each projection, and their synaptic weights are
   accumulated into the input slots ``delay`` steps ahead.

The loop itself follows the engine layer's compile-once/step-many
discipline: the per-step schedule (stimulus routing, population order,
projection fan-out, plasticity bindings) is resolved once per run, and
input/fired buffers are reused rather than reallocated. Per-phase
wall-clock time and abstract operation counts are emitted through the
:class:`~repro.engine.hooks.PhaseHook` API; the built-in
:class:`~repro.engine.hooks.PhaseTimer` feeds the Figure 3 / Figure 13
cost models and the pytest benchmarks, and callers can attach their own
hooks for tracing or profiling. Each op count has exactly one counting
path: the phase stats are the source of truth, and the result's
convenience counters are derived from them, so "neuron updates" can
never drift from the neuron phase's operation count. State-recorder
sampling is timed separately (``SimulationResult.recording_seconds``)
and deliberately charged to *no* phase — it is measurement overhead,
not simulation work — so phase fractions both sum to one and reflect
only the three real phases.

Two observability seams ride on the loop without taxing it when off:

* ``hooks`` are dispatched through per-callback lists built once per
  run from which callbacks each hook actually overrides, so a hook
  that only implements ``on_run_end`` costs nothing per step.
  Per-population kernel spans (``on_population``) are only timed while
  a span-consuming hook is attached. Hook failures follow the
  semantics pinned in :mod:`repro.engine.hooks`: structured
  ``ReproError``\\ s propagate after the phase is closed, anything else
  is isolated into ``SimulationResult.hook_errors``.
* ``metrics`` accepts a
  :class:`~repro.telemetry.registry.MetricsRegistry`; the loop then
  observes each step's duration into a histogram, and at run end the
  phase totals, spike/queue counters, the backend's per-runtime
  counters (advances, saturation, fallbacks, activity), and the
  reliability diagnostics are published as ordinary counters/gauges.
  The JSON snapshot lands on ``SimulationResult.metrics``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.hooks import (
    PHASES,
    HookError,
    PhaseHook,
    PhaseStats,
    PhaseTimer,
)
from repro.errors import ReproError, SimulationError
from repro.network.backends import Backend, ReferenceBackend, RuntimeBackend
from repro.network.network import Network
from repro.network.recorder import SpikeRecorder, StateRecorder
from repro.reliability.diagnostics import RunDiagnostics
from repro.routing import DelayRing, SpikeRouter

__all__ = [
    "PHASES",
    "HookError",
    "PhaseStats",
    "SimulationResult",
    "Simulator",
]


@dataclass
class SimulationResult:
    """Everything a run produced: spikes, per-phase costs, counters.

    The convenience counters (``neuron_updates``, ``synaptic_events``,
    ``stimulus_events``) are exactly the operation counts of their
    phases — one counting path, no independent tallies.
    """

    network_name: str
    backend_name: str
    n_steps: int
    dt: float
    spikes: SpikeRecorder
    phases: Dict[str, PhaseStats]
    evaluations_per_step: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock spent sampling state recorders; charged to no phase.
    recording_seconds: float = 0.0
    #: What the reliability layer observed: solver fallbacks and
    #: fixed-point saturation accounting (empty == fault-free run).
    diagnostics: RunDiagnostics = field(default_factory=RunDiagnostics)
    #: User hooks isolated mid-run (empty == every hook behaved).
    hook_errors: List[HookError] = field(default_factory=list)
    #: JSON snapshot of the run's metrics registry (None when the run
    #: was not passed a registry).
    metrics: Optional[Dict[str, dict]] = None
    #: Alert summary from the health layer's :class:`HealthHook`
    #: (None when the run carried no alert rules).
    alerts: Optional[dict] = None

    @property
    def neuron_updates(self) -> int:
        """Total neuron updates (the neuron phase's op count)."""
        return self.phases["neuron"].operations

    @property
    def synaptic_events(self) -> int:
        """Total synaptic events (the synapse phase's op count)."""
        return self.phases["synapse"].operations

    @property
    def stimulus_events(self) -> int:
        """Total stimulus events (the stimulus phase's op count)."""
        return self.phases["stimulus"].operations

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.phases.values())

    def phase_fractions(self) -> Dict[str, float]:
        """Wall-clock share of each phase (sums to 1 when any time passed).

        Every canonical phase is always present in the result — a
        phase with no recorded stats (or a zero-duration run) reports
        a fraction of exactly 0.0 rather than going missing.
        """
        total = self.total_seconds
        fractions = {phase: 0.0 for phase in PHASES}
        if total <= 0.0:
            return fractions
        for phase, stats in self.phases.items():
            fractions[phase] = stats.seconds / total
        return fractions

    def total_spikes(self) -> int:
        return self.spikes.total_spikes()

    def to_stats_dict(self) -> dict:
        """The run's statistics as one JSON-serialisable document.

        This is what ``repro run --stats-json`` writes, so experiments
        consume structured output instead of scraping stdout.
        """
        phases = {
            name: {"seconds": stats.seconds, "operations": stats.operations}
            for name, stats in self.phases.items()
        }
        counters = {
            name: self.phases[phase].operations
            for name, phase in (
                ("neuron_updates", "neuron"),
                ("synaptic_events", "synapse"),
                ("stimulus_events", "stimulus"),
            )
            if phase in self.phases
        }
        counters["total_spikes"] = self.total_spikes()
        return {
            "schema": "repro-run-stats/2",
            "network": self.network_name,
            "backend": self.backend_name,
            "n_steps": self.n_steps,
            "dt": self.dt,
            "total_seconds": self.total_seconds,
            "recording_seconds": self.recording_seconds,
            "phases": phases,
            "phase_fractions": self.phase_fractions(),
            "counters": counters,
            "spike_digest": self.spikes.digest(),
            "spikes_per_population": {
                name: self.spikes.result(name).n_spikes
                for name in self.spikes.populations()
            },
            "evaluations_per_step": dict(self.evaluations_per_step),
            "diagnostics": self.diagnostics.to_dict(),
            "hook_errors": [asdict(error) for error in self.hook_errors],
            "metrics": self.metrics,
            "alerts": self.alerts,
        }


class Simulator:
    """Runs a :class:`~repro.network.network.Network` step by step."""

    def __init__(
        self,
        network: Network,
        backend: Optional[Backend] = None,
        dt: float = 1e-4,
        seed: int = 0,
    ):
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.network = network
        self.backend = backend if backend is not None else ReferenceBackend()
        self.dt = dt
        self.rng = np.random.default_rng(seed)
        self.backend.prepare(network)
        self._router = SpikeRouter.from_network(network)
        self._queues: Dict[str, DelayRing] = self._router.rings
        # Runtimes that understand the routing layer (the event-driven
        # monitors) get their population's ring bound once, so they can
        # consult exact event counts instead of scanning dense input.
        if isinstance(self.backend, RuntimeBackend):
            for name, runtime in self.backend.runtimes.items():
                runtime.bind_ring(self._router.ring(name))
        self._step = 0
        self._live_spikes: Optional[SpikeRecorder] = None

    @property
    def router(self) -> SpikeRouter:
        """The routing layer: every population's delay ring."""
        return self._router

    @property
    def queues(self) -> Dict[str, DelayRing]:
        """The per-population delay rings (checkpointing, fault models)."""
        return self._queues

    @property
    def live_spikes(self) -> Optional[SpikeRecorder]:
        """The recorder of the run in progress (None outside ``run``).

        Mid-run checkpoint capture reads this so a checkpoint can carry
        the spike history recorded so far.
        """
        return self._live_spikes

    # -- schedule compilation -------------------------------------------------

    def _compile_schedule(self):
        """Resolve the per-step work lists once, outside the hot loop.

        Everything the loop needs per step — which queue a stimulus
        feeds, each population's queue and size, where a projection's
        spikes land, which recorded populations a plasticity rule
        reads — is bound here so the loop performs no dict lookups or
        attribute chasing of its own.
        """
        network = self.network
        stimuli = [
            (stimulus, self._queues[stimulus.target.name], stimulus.syn_type)
            for stimulus in network.stimuli
        ]
        populations = [
            (name, self._queues[name], pop.n)
            for name, pop in network.populations.items()
        ]
        projections = [
            (
                projection,
                projection.pre.name,
                self._queues[projection.post.name],
                projection.syn_type,
            )
            for projection in network.projections
        ]
        plasticity = [
            (rule, rule.projection.pre.name, rule.projection.post.name)
            for rule in network.plasticity_rules
        ]
        return stimuli, populations, projections, plasticity

    @staticmethod
    def _hook_dispatch(hooks: Sequence[PhaseHook]):
        """Per-callback dispatch lists: only hooks that override a
        callback are called for it, so an attached hook costs exactly
        the callbacks it implements.
        """

        def overriding(callback: str) -> List[PhaseHook]:
            base = getattr(PhaseHook, callback)
            return [
                hook
                for hook in hooks
                if getattr(type(hook), callback) is not base
            ]

        span_hooks = [
            hook
            for hook in overriding("on_population")
            if getattr(hook, "wants_population_spans", True)
        ]
        return {
            "on_run_start": overriding("on_run_start"),
            "on_step_start": overriding("on_step_start"),
            "on_phase": overriding("on_phase"),
            "on_population": span_hooks,
            "on_run_end": overriding("on_run_end"),
        }

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        n_steps: int,
        record_spikes: bool = True,
        state_recorders: Sequence[StateRecorder] = (),
        hooks: Sequence[PhaseHook] = (),
        spikes: Optional[SpikeRecorder] = None,
        metrics=None,
    ) -> SimulationResult:
        """Simulate ``n_steps`` time steps and return the results.

        ``hooks`` receive the per-phase event stream (see
        :class:`~repro.engine.hooks.PhaseHook`); the built-in timer
        that produces ``result.phases`` is always attached. ``spikes``
        optionally supplies the recorder to append into — a resumed run
        passes ``Checkpoint.seed_recorder()`` so the result reports the
        full spike train, not just the resumed tail. ``metrics``
        optionally supplies a
        :class:`~repro.telemetry.registry.MetricsRegistry` the run
        publishes into (its JSON snapshot lands on
        ``result.metrics``).
        """
        if n_steps < 0:
            raise SimulationError(f"n_steps must be non-negative, got {n_steps}")
        recorder = spikes if spikes is not None else SpikeRecorder()
        self._live_spikes = recorder
        spikes_before = recorder.total_spikes()
        timer = PhaseTimer()
        timer_on_phase = timer.on_phase
        dispatch = self._hook_dispatch(tuple(hooks))
        # Hot-path dispatch tables pre-bind each hook's callback so the
        # step loop never pays per-event method binding; they are
        # rebuilt by ``isolate_failures`` whenever a hook is detached.
        step_dispatch = [(h, h.on_step_start) for h in dispatch["on_step_start"]]
        phase_dispatch = [(h, h.on_phase) for h in dispatch["on_phase"]]
        span_dispatch = [(h, h.on_population) for h in dispatch["on_population"]]
        hook_errors: List[HookError] = []
        failures: List[Tuple[PhaseHook, str, Exception]] = []

        def isolate_failures(step: int) -> None:
            """Detach every just-failed hook and record why (see
            repro.engine.hooks for the pinned semantics). A hook that
            raised from several callbacks before this end-of-step sweep
            is recorded once, for its first failure."""
            nonlocal step_dispatch, phase_dispatch, span_dispatch
            seen = set()
            for hook, callback, error in failures:
                if id(hook) in seen:
                    continue
                seen.add(id(hook))
                for lst in dispatch.values():
                    while hook in lst:
                        lst.remove(hook)
                record = HookError(
                    hook=type(hook).__name__,
                    callback=callback,
                    step=step,
                    error=repr(error),
                )
                hook_errors.append(record)
                warnings.warn(
                    f"simulation hook isolated: {record.describe()}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            failures.clear()
            step_dispatch = [
                (h, h.on_step_start) for h in dispatch["on_step_start"]
            ]
            phase_dispatch = [(h, h.on_phase) for h in dispatch["on_phase"]]
            span_dispatch = [
                (h, h.on_population) for h in dispatch["on_population"]
            ]

        observe_step = (
            metrics.histogram(
                "sim_step_seconds",
                "Wall-clock duration of one full simulated step.",
            ).observe
            if metrics is not None
            else None
        )
        stimuli, populations, projections, plasticity = self._compile_schedule()
        recorder_bindings = [
            (state_recorder, state_recorder.population)
            for state_recorder in state_recorders
        ]
        recording_seconds = 0.0
        fired_index: Dict[str, np.ndarray] = {}
        perf_counter = time.perf_counter
        dt = self.dt
        backend_advance = self.backend.advance

        for hook in dispatch["on_run_start"]:
            try:
                hook.on_run_start(self.network, n_steps)
            except ReproError:
                raise
            except Exception as error:
                failures.append((hook, "on_run_start", error))
        if failures:
            isolate_failures(self._step)

        try:
            for _ in range(n_steps):
                step = self._step
                for hook, callback in step_dispatch:
                    try:
                        callback(step)
                    except ReproError:
                        raise
                    except Exception as error:
                        failures.append((hook, "on_step_start", error))

                # Phase 1: stimulus generation
                start = perf_counter()
                events = 0
                for stimulus, queue, syn_type in stimuli:
                    idx, weights = stimulus.generate(step, self.rng)
                    queue.enqueue_now(idx, weights, syn_type)
                    events += idx.size
                stimulus_elapsed = perf_counter() - start
                timer_on_phase("stimulus", step, stimulus_elapsed, events)
                for hook, callback in phase_dispatch:
                    try:
                        callback("stimulus", step, stimulus_elapsed, events)
                    except ReproError:
                        raise
                    except Exception as error:
                        failures.append((hook, "on_phase", error))

                # Phase 2: neuron computation. The span-timed variant
                # duplicates the loop body so the common no-span path
                # pays zero extra clock reads.
                start = perf_counter()
                updates = 0
                if span_dispatch:
                    for name, queue, n_pop in populations:
                        pop_start = perf_counter()
                        fired = backend_advance(name, queue.current(), dt)
                        pop_elapsed = perf_counter() - pop_start
                        fired_index[name] = np.nonzero(fired)[0]
                        if record_spikes:
                            recorder.record_indices(
                                name, step, fired_index[name]
                            )
                        updates += n_pop
                        for hook, callback in span_dispatch:
                            try:
                                callback(name, step, pop_elapsed, n_pop)
                            except ReproError:
                                raise
                            except Exception as error:
                                failures.append(
                                    (hook, "on_population", error)
                                )
                else:
                    for name, queue, n_pop in populations:
                        fired = backend_advance(name, queue.current(), dt)
                        fired_index[name] = np.nonzero(fired)[0]
                        if record_spikes:
                            recorder.record_indices(
                                name, step, fired_index[name]
                            )
                        updates += n_pop
                neuron_elapsed = perf_counter() - start
                timer_on_phase("neuron", step, neuron_elapsed, updates)
                for hook, callback in phase_dispatch:
                    try:
                        callback("neuron", step, neuron_elapsed, updates)
                    except ReproError:
                        raise
                    except Exception as error:
                        failures.append((hook, "on_phase", error))

                # State-recorder sampling: measurement overhead, charged
                # to no phase (it used to be silently billed as neuron
                # time).
                if recorder_bindings:
                    start = perf_counter()
                    for state_recorder, population in recorder_bindings:
                        state_recorder.sample(self.backend.state_of(population))
                    recording_seconds += perf_counter() - start

                # Phase 3: synapse calculation (spike routing + plasticity)
                start = perf_counter()
                events = 0
                for projection, pre_name, post_queue, syn_type in projections:
                    fired_pre = fired_index.get(pre_name)
                    if fired_pre is None or fired_pre.size == 0:
                        continue
                    post_idx, weights, delays = projection.synapses_of(
                        fired_pre
                    )
                    post_queue.enqueue(post_idx, weights, delays, syn_type)
                    events += post_idx.size
                for rule, pre_name, post_name in plasticity:
                    rule.step(fired_index[pre_name], fired_index[post_name], dt)
                synapse_elapsed = perf_counter() - start
                timer_on_phase("synapse", step, synapse_elapsed, events)
                for hook, callback in phase_dispatch:
                    try:
                        callback("synapse", step, synapse_elapsed, events)
                    except ReproError:
                        raise
                    except Exception as error:
                        failures.append((hook, "on_phase", error))

                if observe_step is not None:
                    observe_step(
                        stimulus_elapsed + neuron_elapsed + synapse_elapsed
                    )
                if failures:
                    isolate_failures(step)

                self._router.rotate_all()
                self._step += 1
        finally:
            self._live_spikes = None

        evaluations = {
            name: self.backend.evaluations_per_step(name)
            for name, _, _ in populations
        }
        diagnostics = self._collect_diagnostics()
        if metrics is not None:
            self._publish_metrics(
                metrics,
                timer=timer,
                n_steps=n_steps,
                run_spikes=recorder.total_spikes() - spikes_before,
                recording_seconds=recording_seconds,
                evaluations=evaluations,
                hook_errors=hook_errors,
            )
        result = SimulationResult(
            network_name=self.network.name,
            backend_name=self.backend.name,
            n_steps=n_steps,
            dt=self.dt,
            spikes=recorder,
            phases=timer.phases,
            evaluations_per_step=evaluations,
            recording_seconds=recording_seconds,
            diagnostics=diagnostics,
            hook_errors=hook_errors,
            metrics=metrics.snapshot() if metrics is not None else None,
        )
        for hook in dispatch["on_run_end"]:
            try:
                hook.on_run_end(result)
            except ReproError:
                raise
            except Exception as error:
                failures.append((hook, "on_run_end", error))
        if failures:
            isolate_failures(self._step)
        return result

    # -- telemetry ------------------------------------------------------------

    def _publish_metrics(
        self,
        metrics,
        timer: PhaseTimer,
        n_steps: int,
        run_spikes: int,
        recording_seconds: float,
        evaluations: Dict[str, float],
        hook_errors: List[HookError],
    ) -> None:
        """Publish the run's observations into the metrics registry.

        Everything here is collect-time work — the hot loop's only
        registry interaction is the step-duration histogram. Lifetime
        tallies (queue enqueues, runtime advances, saturation clips)
        are published with ``set_total``, so re-running the same
        simulator against the same registry keeps counters monotone;
        use one registry per simulator.
        """
        for phase, stats in timer.phases.items():
            labels = {"phase": phase}
            metrics.counter(
                "sim_phase_seconds_total",
                "Wall-clock seconds spent per simulation phase.",
                labels,
            ).inc(stats.seconds)
            metrics.counter(
                "sim_phase_operations_total",
                "Abstract operations performed per simulation phase.",
                labels,
            ).inc(stats.operations)
        metrics.counter(
            "sim_steps_total", "Simulated time steps completed."
        ).inc(n_steps)
        metrics.counter(
            "sim_spikes_total", "Spikes recorded across all populations."
        ).inc(run_spikes)
        metrics.counter(
            "sim_recording_seconds_total",
            "Wall-clock seconds spent sampling state recorders.",
        ).inc(recording_seconds)
        metrics.counter(
            "sim_hook_errors_total",
            "User hooks isolated after raising an unexpected exception.",
        ).inc(len(hook_errors))
        for name, queue in self._queues.items():
            labels = {"population": name}
            metrics.counter(
                "spike_queue_enqueued_total",
                "Spike deliveries accumulated into the delay ring.",
                labels,
            ).set_total(queue.enqueued_events)
            metrics.gauge(
                "spike_queue_pending_weight",
                "Sum of in-flight synaptic weight awaiting delivery.",
                labels,
            ).set(queue.pending_weight())
            metrics.gauge(
                "spike_queue_pending_events",
                "In-flight deliveries awaiting their arrival step.",
                labels,
            ).set(queue.pending_total())
        self._router.publish_metrics(metrics)
        for rule in self.network.plasticity_rules:
            rule.publish_metrics(metrics)
        for name, value in evaluations.items():
            metrics.gauge(
                "runtime_evaluations_per_step",
                "Solver evaluations charged per step.",
                {"population": name},
            ).set(value)
        self.backend.publish_metrics(metrics)

    def collect_diagnostics(self) -> RunDiagnostics:
        """The reliability observations accumulated so far.

        Public because the health layer polls this mid-run: the
        saturation-growth and event monitors feed on live fallback and
        clip tallies, not just the end-of-run snapshot.
        """
        return self._collect_diagnostics()

    def _collect_diagnostics(self) -> RunDiagnostics:
        """Gather reliability observations from the backend's runtimes.

        Fallback events and saturation counters accumulate over the
        simulator's lifetime, so a result reflects everything observed
        up to its run's end.
        """
        diagnostics = RunDiagnostics()
        if not isinstance(self.backend, RuntimeBackend):
            return diagnostics
        for name, runtime in self.backend.runtimes.items():
            events = getattr(runtime, "fallback_events", None)
            if events:
                diagnostics.fallbacks.extend(events)
            stats = getattr(runtime, "saturation_stats", None)
            if stats is not None:
                diagnostics.saturation[name] = stats
        return diagnostics

    @property
    def current_step(self) -> int:
        """Number of steps simulated so far."""
        return self._step
