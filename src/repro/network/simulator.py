"""The three-phase time-step simulation loop (Section II-C).

Each simulated time step runs:

1. **Stimulus generation** — external sources forge spikes and inject
   them into their target populations' current input slots.
2. **Neuron computation** — every population's backend consumes its
   accumulated input, updates internal state, and reports which neurons
   fired. (This is the phase Flexon accelerates.)
3. **Synapse calculation** — the fired spikes are classified by target
   neuron through each projection, and their synaptic weights are
   accumulated into the input slots ``delay`` steps ahead.

The simulator instruments each phase with wall-clock time and with
abstract operation counts (neuron updates, synaptic events, stimulus
events); the Figure 3 / Figure 13 cost models consume the counts, and
the wall-clock numbers feed the pytest benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.network.backends import Backend, ReferenceBackend
from repro.network.network import Network
from repro.network.recorder import SpikeRecorder, StateRecorder
from repro.network.spike_queue import SpikeQueue

PHASES = ("stimulus", "neuron", "synapse")


@dataclass
class PhaseStats:
    """Accumulated cost of one phase across a run."""

    seconds: float = 0.0
    operations: int = 0

    def add(self, seconds: float, operations: int) -> None:
        self.seconds += seconds
        self.operations += operations


@dataclass
class SimulationResult:
    """Everything a run produced: spikes, per-phase costs, counters."""

    network_name: str
    backend_name: str
    n_steps: int
    dt: float
    spikes: SpikeRecorder
    phases: Dict[str, PhaseStats]
    neuron_updates: int
    synaptic_events: int
    stimulus_events: int
    evaluations_per_step: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.phases.values())

    def phase_fractions(self) -> Dict[str, float]:
        """Wall-clock share of each phase (sums to 1 when any time passed)."""
        total = self.total_seconds
        if total <= 0.0:
            return {phase: 0.0 for phase in PHASES}
        return {
            phase: stats.seconds / total for phase, stats in self.phases.items()
        }

    def total_spikes(self) -> int:
        return self.spikes.total_spikes()


class Simulator:
    """Runs a :class:`~repro.network.network.Network` step by step."""

    def __init__(
        self,
        network: Network,
        backend: Optional[Backend] = None,
        dt: float = 1e-4,
        seed: int = 0,
    ):
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.network = network
        self.backend = backend if backend is not None else ReferenceBackend()
        self.dt = dt
        self.rng = np.random.default_rng(seed)
        self.backend.prepare(network)
        depth = network.max_delay()
        self._queues: Dict[str, SpikeQueue] = {
            name: SpikeQueue(pop.n, pop.n_synapse_types, depth)
            for name, pop in network.populations.items()
        }
        self._step = 0

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        n_steps: int,
        record_spikes: bool = True,
        state_recorders: Sequence[StateRecorder] = (),
    ) -> SimulationResult:
        """Simulate ``n_steps`` time steps and return the results."""
        if n_steps < 0:
            raise SimulationError(f"n_steps must be non-negative, got {n_steps}")
        recorder = SpikeRecorder()
        phases = {phase: PhaseStats() for phase in PHASES}
        neuron_updates = 0
        synaptic_events = 0
        stimulus_events = 0
        pop_names = list(self.network.populations)

        for _ in range(n_steps):
            # Phase 1: stimulus generation
            start = time.perf_counter()
            events = 0
            for stimulus in self.network.stimuli:
                idx, weights = stimulus.generate(self._step, self.rng)
                self._queues[stimulus.target.name].enqueue_now(
                    idx, weights, stimulus.syn_type
                )
                events += idx.size
            phases["stimulus"].add(time.perf_counter() - start, events)
            stimulus_events += events

            # Phase 2: neuron computation
            start = time.perf_counter()
            fired_by_pop: Dict[str, np.ndarray] = {}
            for name in pop_names:
                inputs = self._queues[name].current()
                fired = self.backend.advance(name, inputs, self.dt)
                fired_by_pop[name] = np.nonzero(fired)[0]
                if record_spikes:
                    recorder.record(name, self._step, fired)
                neuron_updates += self.network.populations[name].n
            for state_recorder in state_recorders:
                state_recorder.sample(
                    self.backend.state_of(state_recorder.population)
                )
            phases["neuron"].add(
                time.perf_counter() - start, self.network.n_neurons
            )

            # Phase 3: synapse calculation (spike routing + plasticity)
            start = time.perf_counter()
            events = 0
            for projection in self.network.projections:
                fired_pre = fired_by_pop.get(projection.pre.name)
                if fired_pre is None or fired_pre.size == 0:
                    continue
                post_idx, weights, delays = projection.synapses_of(fired_pre)
                self._queues[projection.post.name].enqueue(
                    post_idx, weights, delays, projection.syn_type
                )
                events += post_idx.size
            for rule in self.network.plasticity_rules:
                projection = rule.projection
                rule.step(
                    fired_by_pop[projection.pre.name],
                    fired_by_pop[projection.post.name],
                    self.dt,
                )
            phases["synapse"].add(time.perf_counter() - start, events)
            synaptic_events += events

            for queue in self._queues.values():
                queue.rotate()
            self._step += 1

        evaluations = {
            name: self.backend.evaluations_per_step(name) for name in pop_names
        }
        return SimulationResult(
            network_name=self.network.name,
            backend_name=self.backend.name,
            n_steps=n_steps,
            dt=self.dt,
            spikes=recorder,
            phases=phases,
            neuron_updates=neuron_updates,
            synaptic_events=synaptic_events,
            stimulus_events=stimulus_events,
            evaluations_per_step=evaluations,
        )

    @property
    def current_step(self) -> int:
        """Number of steps simulated so far."""
        return self._step
