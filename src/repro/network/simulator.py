"""The three-phase time-step simulation loop (Section II-C).

Each simulated time step runs:

1. **Stimulus generation** — external sources forge spikes and inject
   them into their target populations' current input slots.
2. **Neuron computation** — every population's backend consumes its
   accumulated input, updates internal state, and reports which neurons
   fired. (This is the phase Flexon accelerates.)
3. **Synapse calculation** — the fired spikes are classified by target
   neuron through each projection, and their synaptic weights are
   accumulated into the input slots ``delay`` steps ahead.

The loop itself follows the engine layer's compile-once/step-many
discipline: the per-step schedule (stimulus routing, population order,
projection fan-out, plasticity bindings) is resolved once per run, and
input/fired buffers are reused rather than reallocated. Per-phase
wall-clock time and abstract operation counts are emitted through the
:class:`~repro.engine.hooks.PhaseHook` API; the built-in
:class:`~repro.engine.hooks.PhaseTimer` feeds the Figure 3 / Figure 13
cost models and the pytest benchmarks, and callers can attach their own
hooks for tracing or profiling. Each op count has exactly one counting
path: the phase stats are the source of truth, and the result's
convenience counters are derived from them, so "neuron updates" can
never drift from the neuron phase's operation count. State-recorder
sampling is timed separately (``SimulationResult.recording_seconds``)
and deliberately charged to *no* phase — it is measurement overhead,
not simulation work — so phase fractions both sum to one and reflect
only the three real phases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engine.hooks import PHASES, PhaseHook, PhaseStats, PhaseTimer
from repro.errors import SimulationError
from repro.network.backends import Backend, ReferenceBackend, RuntimeBackend
from repro.network.network import Network
from repro.network.recorder import SpikeRecorder, StateRecorder
from repro.network.spike_queue import SpikeQueue
from repro.reliability.diagnostics import RunDiagnostics

__all__ = [
    "PHASES",
    "PhaseStats",
    "SimulationResult",
    "Simulator",
]


@dataclass
class SimulationResult:
    """Everything a run produced: spikes, per-phase costs, counters.

    The convenience counters (``neuron_updates``, ``synaptic_events``,
    ``stimulus_events``) are exactly the operation counts of their
    phases — one counting path, no independent tallies.
    """

    network_name: str
    backend_name: str
    n_steps: int
    dt: float
    spikes: SpikeRecorder
    phases: Dict[str, PhaseStats]
    evaluations_per_step: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock spent sampling state recorders; charged to no phase.
    recording_seconds: float = 0.0
    #: What the reliability layer observed: solver fallbacks and
    #: fixed-point saturation accounting (empty == fault-free run).
    diagnostics: RunDiagnostics = field(default_factory=RunDiagnostics)

    @property
    def neuron_updates(self) -> int:
        """Total neuron updates (the neuron phase's op count)."""
        return self.phases["neuron"].operations

    @property
    def synaptic_events(self) -> int:
        """Total synaptic events (the synapse phase's op count)."""
        return self.phases["synapse"].operations

    @property
    def stimulus_events(self) -> int:
        """Total stimulus events (the stimulus phase's op count)."""
        return self.phases["stimulus"].operations

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.phases.values())

    def phase_fractions(self) -> Dict[str, float]:
        """Wall-clock share of each phase (sums to 1 when any time passed)."""
        total = self.total_seconds
        if total <= 0.0:
            return {phase: 0.0 for phase in PHASES}
        return {
            phase: stats.seconds / total for phase, stats in self.phases.items()
        }

    def total_spikes(self) -> int:
        return self.spikes.total_spikes()


class Simulator:
    """Runs a :class:`~repro.network.network.Network` step by step."""

    def __init__(
        self,
        network: Network,
        backend: Optional[Backend] = None,
        dt: float = 1e-4,
        seed: int = 0,
    ):
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.network = network
        self.backend = backend if backend is not None else ReferenceBackend()
        self.dt = dt
        self.rng = np.random.default_rng(seed)
        self.backend.prepare(network)
        depth = network.max_delay()
        self._queues: Dict[str, SpikeQueue] = {
            name: SpikeQueue(pop.n, pop.n_synapse_types, depth)
            for name, pop in network.populations.items()
        }
        self._step = 0
        self._live_spikes: Optional[SpikeRecorder] = None

    @property
    def queues(self) -> Dict[str, SpikeQueue]:
        """The per-population delay queues (checkpointing, fault models)."""
        return self._queues

    @property
    def live_spikes(self) -> Optional[SpikeRecorder]:
        """The recorder of the run in progress (None outside ``run``).

        Mid-run checkpoint capture reads this so a checkpoint can carry
        the spike history recorded so far.
        """
        return self._live_spikes

    # -- schedule compilation -------------------------------------------------

    def _compile_schedule(self):
        """Resolve the per-step work lists once, outside the hot loop.

        Everything the loop needs per step — which queue a stimulus
        feeds, each population's queue and size, where a projection's
        spikes land, which recorded populations a plasticity rule
        reads — is bound here so the loop performs no dict lookups or
        attribute chasing of its own.
        """
        network = self.network
        stimuli = [
            (stimulus, self._queues[stimulus.target.name], stimulus.syn_type)
            for stimulus in network.stimuli
        ]
        populations = [
            (name, self._queues[name], pop.n)
            for name, pop in network.populations.items()
        ]
        projections = [
            (
                projection,
                projection.pre.name,
                self._queues[projection.post.name],
                projection.syn_type,
            )
            for projection in network.projections
        ]
        plasticity = [
            (rule, rule.projection.pre.name, rule.projection.post.name)
            for rule in network.plasticity_rules
        ]
        return stimuli, populations, projections, plasticity

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        n_steps: int,
        record_spikes: bool = True,
        state_recorders: Sequence[StateRecorder] = (),
        hooks: Sequence[PhaseHook] = (),
        spikes: Optional[SpikeRecorder] = None,
    ) -> SimulationResult:
        """Simulate ``n_steps`` time steps and return the results.

        ``hooks`` receive the per-phase event stream (see
        :class:`~repro.engine.hooks.PhaseHook`); the built-in timer
        that produces ``result.phases`` is always attached. ``spikes``
        optionally supplies the recorder to append into — a resumed run
        passes ``Checkpoint.seed_recorder()`` so the result reports the
        full spike train, not just the resumed tail.
        """
        if n_steps < 0:
            raise SimulationError(f"n_steps must be non-negative, got {n_steps}")
        recorder = spikes if spikes is not None else SpikeRecorder()
        self._live_spikes = recorder
        timer = PhaseTimer()
        all_hooks: Tuple[PhaseHook, ...] = (timer, *hooks)
        stimuli, populations, projections, plasticity = self._compile_schedule()
        recorder_bindings = [
            (state_recorder, state_recorder.population)
            for state_recorder in state_recorders
        ]
        recording_seconds = 0.0
        fired_index: Dict[str, np.ndarray] = {}
        perf_counter = time.perf_counter
        dt = self.dt
        backend_advance = self.backend.advance

        for hook in all_hooks:
            hook.on_run_start(self.network, n_steps)

        try:
            for _ in range(n_steps):
                step = self._step
                for hook in all_hooks:
                    hook.on_step_start(step)

                # Phase 1: stimulus generation
                start = perf_counter()
                events = 0
                for stimulus, queue, syn_type in stimuli:
                    idx, weights = stimulus.generate(step, self.rng)
                    queue.enqueue_now(idx, weights, syn_type)
                    events += idx.size
                elapsed = perf_counter() - start
                for hook in all_hooks:
                    hook.on_phase("stimulus", step, elapsed, events)

                # Phase 2: neuron computation
                start = perf_counter()
                updates = 0
                for name, queue, n_pop in populations:
                    fired = backend_advance(name, queue.current(), dt)
                    fired_index[name] = np.nonzero(fired)[0]
                    if record_spikes:
                        recorder.record_indices(name, step, fired_index[name])
                    updates += n_pop
                elapsed = perf_counter() - start
                for hook in all_hooks:
                    hook.on_phase("neuron", step, elapsed, updates)

                # State-recorder sampling: measurement overhead, charged
                # to no phase (it used to be silently billed as neuron
                # time).
                if recorder_bindings:
                    start = perf_counter()
                    for state_recorder, population in recorder_bindings:
                        state_recorder.sample(self.backend.state_of(population))
                    recording_seconds += perf_counter() - start

                # Phase 3: synapse calculation (spike routing + plasticity)
                start = perf_counter()
                events = 0
                for projection, pre_name, post_queue, syn_type in projections:
                    fired_pre = fired_index.get(pre_name)
                    if fired_pre is None or fired_pre.size == 0:
                        continue
                    post_idx, weights, delays = projection.synapses_of(
                        fired_pre
                    )
                    post_queue.enqueue(post_idx, weights, delays, syn_type)
                    events += post_idx.size
                for rule, pre_name, post_name in plasticity:
                    rule.step(fired_index[pre_name], fired_index[post_name], dt)
                elapsed = perf_counter() - start
                for hook in all_hooks:
                    hook.on_phase("synapse", step, elapsed, events)

                for _, queue, _ in populations:
                    queue.rotate()
                self._step += 1
        finally:
            self._live_spikes = None

        evaluations = {
            name: self.backend.evaluations_per_step(name)
            for name, _, _ in populations
        }
        result = SimulationResult(
            network_name=self.network.name,
            backend_name=self.backend.name,
            n_steps=n_steps,
            dt=self.dt,
            spikes=recorder,
            phases=timer.phases,
            evaluations_per_step=evaluations,
            recording_seconds=recording_seconds,
            diagnostics=self._collect_diagnostics(),
        )
        for hook in all_hooks:
            hook.on_run_end(result)
        return result

    def _collect_diagnostics(self) -> RunDiagnostics:
        """Gather reliability observations from the backend's runtimes.

        Fallback events and saturation counters accumulate over the
        simulator's lifetime, so a result reflects everything observed
        up to its run's end.
        """
        diagnostics = RunDiagnostics()
        if not isinstance(self.backend, RuntimeBackend):
            return diagnostics
        for name, runtime in self.backend.runtimes.items():
            events = getattr(runtime, "fallback_events", None)
            if events:
                diagnostics.fallbacks.extend(events)
            stats = getattr(runtime, "saturation_stats", None)
            if stats is not None:
                diagnostics.saturation[name] = stats
        return diagnostics

    @property
    def current_step(self) -> int:
        """Number of steps simulated so far."""
        return self._step
