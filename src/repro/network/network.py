"""The Network container: populations, projections, and stimuli.

A :class:`Network` is a pure description — no state. It offers the
PyNN-flavoured builder API the paper's front-end discussion assumes
(Section VII-B): create populations, connect them, attach stimuli.
Backends materialise the state when a :class:`~repro.network.simulator.
Simulator` runs the network.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.models.base import NeuronModel
from repro.models.registry import create_model
from repro.network.population import Population
from repro.network.projection import Projection, connect
from repro.network.stimulus import Stimulus


class Network:
    """A spiking neural network description."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.populations: Dict[str, Population] = {}
        self.projections: List[Projection] = []
        self.stimuli: List[Stimulus] = []
        self.plasticity_rules: List = []

    # -- builders -----------------------------------------------------------

    def add_population(
        self, name: str, n: int, model, **model_kwargs
    ) -> Population:
        """Create and register a population.

        ``model`` is a :class:`~repro.models.base.NeuronModel` instance
        or a registered model name (resolved via the model registry).
        """
        if name in self.populations:
            raise ConfigurationError(f"population {name!r} already exists")
        if not isinstance(model, NeuronModel):
            model = create_model(model, **model_kwargs)
        population = Population(name, n, model)
        self.populations[name] = population
        return population

    def add_projection(self, projection: Projection) -> Projection:
        """Register an already-built projection."""
        for endpoint in (projection.pre, projection.post):
            if self.populations.get(endpoint.name) is not endpoint:
                raise ConfigurationError(
                    f"population {endpoint.name!r} is not part of this network"
                )
        self.projections.append(projection)
        return projection

    def connect(
        self,
        pre: str,
        post: str,
        probability: float = 1.0,
        weight: float = 0.1,
        syn_type: int = 0,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> Projection:
        """Random connectivity between two registered populations."""
        projection = connect(
            self._population(pre),
            self._population(post),
            probability=probability,
            weight=weight,
            syn_type=syn_type,
            rng=rng,
            **kwargs,
        )
        self.projections.append(projection)
        return projection

    def add_plasticity(self, projection: Projection, rule) -> None:
        """Make a projection plastic under the given rule.

        The rule (e.g. :class:`repro.plasticity.PairSTDP`) is attached
        to the projection and updated by the simulator during the
        synapse-calculation phase of every step.
        """
        if projection not in self.projections:
            raise ConfigurationError(
                f"projection {projection.name!r} is not part of this network"
            )
        rule.attach(projection)
        self.plasticity_rules.append(rule)

    def add_stimulus(self, stimulus: Stimulus) -> Stimulus:
        """Attach an external stimulus source."""
        if self.populations.get(stimulus.target.name) is not stimulus.target:
            raise ConfigurationError(
                f"stimulus target {stimulus.target.name!r} is not part of "
                "this network"
            )
        self.stimuli.append(stimulus)
        return stimulus

    # -- queries --------------------------------------------------------------

    def _population(self, name: str) -> Population:
        try:
            return self.populations[name]
        except KeyError:
            known = ", ".join(self.populations) or "<none>"
            raise ConfigurationError(
                f"unknown population {name!r}; known: {known}"
            ) from None

    @property
    def n_neurons(self) -> int:
        """Total neuron count across populations."""
        return sum(p.n for p in self.populations.values())

    @property
    def n_synapses(self) -> int:
        """Total synapse count across projections."""
        return sum(p.n_synapses for p in self.projections)

    def max_delay(self) -> int:
        """Largest synaptic delay in the network (>= 1)."""
        if not self.projections:
            return 1
        return max(p.max_delay for p in self.projections)

    def projections_into(self, population: str) -> List[Projection]:
        """Projections whose post-population has the given name."""
        return [p for p in self.projections if p.post.name == population]

    def projections_from(self, population: str) -> List[Projection]:
        """Projections whose pre-population has the given name."""
        return [p for p in self.projections if p.pre.name == population]

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, neurons={self.n_neurons}, "
            f"synapses={self.n_synapses}, stimuli={len(self.stimuli)})"
        )
