"""Simulation backends: who performs the neuron-computation phase.

The paper's framing is that the three phases of a time step are fixed,
but *where* neuron computation runs differs: on the CPU/GPU (NEST,
GeNN), or on a digital-neuron array. A :class:`Backend` owns the state
of every population and advances it one step at a time; the reference
backend here uses the float models and a software solver, and the
hardware backends in :mod:`repro.hardware.backend` run the fixed-point
Flexon models instead.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.models.base import State
from repro.network.network import Network
from repro.solvers import Solver, create_solver


class Backend(abc.ABC):
    """Owns population state and runs the neuron-computation phase."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.network: Optional[Network] = None

    @abc.abstractmethod
    def prepare(self, network: Network) -> None:
        """Allocate state for every population of ``network``."""

    @abc.abstractmethod
    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        """Advance one population one step; return the fired mask."""

    @abc.abstractmethod
    def state_of(self, population: str) -> State:
        """A float-valued view of one population's state (for recording)."""

    def evaluations_per_step(self, population: str) -> float:
        """Solver evaluations charged per step (cost-model input)."""
        return 1.0


class ReferenceBackend(Backend):
    """Float64 software backend — our stand-in for Brian/NEST.

    One solver instance per population (they keep independent
    evaluation counters). The solver kind applies network-wide, which
    matches how Table I labels each workload "Euler" or "RKF45".
    """

    def __init__(self, solver: str = "Euler"):
        super().__init__()
        self.solver_name = solver
        self.name = f"reference-{solver.lower()}"
        self._states: Dict[str, State] = {}
        self._solvers: Dict[str, Solver] = {}

    def prepare(self, network: Network) -> None:
        self.network = network
        self._states = {}
        self._solvers = {}
        for name, population in network.populations.items():
            self._states[name] = population.model.initial_state(population.n)
            self._solvers[name] = create_solver(self.solver_name)

    def _check_prepared(self, population: str) -> None:
        if self.network is None:
            raise SimulationError("backend not prepared; call prepare() first")
        if population not in self._states:
            raise SimulationError(f"unknown population {population!r}")

    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        self._check_prepared(population)
        model = self.network.populations[population].model
        return self._solvers[population].advance(
            model, self._states[population], inputs, dt
        )

    def state_of(self, population: str) -> State:
        self._check_prepared(population)
        return self._states[population]

    def evaluations_per_step(self, population: str) -> float:
        self._check_prepared(population)
        return self._solvers[population].evaluations_per_step()
