"""Simulation backends: who performs the neuron-computation phase.

The paper's framing is that the three phases of a time step are fixed,
but *where* neuron computation runs differs: on the CPU/GPU (NEST,
GeNN), or on a digital-neuron array. A :class:`Backend` owns the state
of every population and advances it one step at a time.

Since the engine refactor every backend in the repo executes through
one seam: :class:`RuntimeBackend` materialises a
:class:`~repro.engine.runtime.PopulationRuntime` per population at
``prepare`` time, and ``advance``/``state_of`` simply delegate to it.
Registering a new backend means subclassing :class:`RuntimeBackend`
and implementing the single ``build_runtime`` hook.

:class:`ReferenceBackend` is the float64 software backend — our
stand-in for Brian/NEST. With the Euler solver it compiles each
supported population into a
:class:`~repro.engine.runtime.CompiledRuntime` step plan (the
compile-once/step-many fast path, bit-identical to ``model.step``);
RKF45 populations and models without a plan run on the dict-state
:class:`~repro.engine.runtime.SolverRuntime` exactly as before.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.engine.runtime import (
    CompiledRuntime,
    PopulationRuntime,
    SolverRuntime,
)
from repro.engine.plan import supports_step_plan
from repro.errors import ConfigurationError, SimulationError
from repro.models.base import State
from repro.network.network import Network
from repro.network.population import Population
from repro.solvers import create_solver


class Backend(abc.ABC):
    """Owns population state and runs the neuron-computation phase."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.network: Optional[Network] = None

    @abc.abstractmethod
    def prepare(self, network: Network) -> None:
        """Allocate state for every population of ``network``."""

    @abc.abstractmethod
    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        """Advance one population one step; return the fired mask."""

    @abc.abstractmethod
    def state_of(self, population: str) -> State:
        """A float-valued view of one population's state (for recording)."""

    def evaluations_per_step(self, population: str) -> float:
        """Solver evaluations charged per step (cost-model input)."""
        return 1.0

    def publish_metrics(self, metrics) -> None:
        """Publish backend counters into a telemetry registry.

        The base backend has nothing to report; runtime-seam backends
        delegate to each population runtime.
        """


class RuntimeBackend(Backend):
    """Base class for backends that execute through population runtimes.

    ``prepare`` builds one :class:`PopulationRuntime` per population via
    the subclass's :meth:`build_runtime` hook; everything else is shared
    delegation (with the same error behaviour the seed backends had).
    """

    def __init__(self) -> None:
        super().__init__()
        self._runtimes: Dict[str, PopulationRuntime] = {}

    @abc.abstractmethod
    def build_runtime(self, population: Population) -> PopulationRuntime:
        """Materialise the execution engine for one population."""

    def prepare(self, network: Network) -> None:
        self.network = network
        self._runtimes = {
            name: self.build_runtime(population)
            for name, population in network.populations.items()
        }

    def runtime(self, population: str) -> PopulationRuntime:
        """The live runtime of one population (errors match the seed)."""
        if self.network is None:
            raise SimulationError("backend not prepared; call prepare() first")
        try:
            return self._runtimes[population]
        except KeyError:
            raise SimulationError(
                f"unknown population {population!r}"
            ) from None

    @property
    def runtimes(self) -> Dict[str, PopulationRuntime]:
        """All population runtimes, keyed by population name."""
        return self._runtimes

    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        return self.runtime(population).advance(inputs, dt)

    def state_of(self, population: str) -> State:
        return self.runtime(population).state()

    def evaluations_per_step(self, population: str) -> float:
        return self.runtime(population).evaluations_per_step()

    def publish_metrics(self, metrics) -> None:
        for runtime in self._runtimes.values():
            runtime.publish_metrics(metrics)


class ReferenceBackend(RuntimeBackend):
    """Float64 software backend — our stand-in for Brian/NEST.

    One runtime per population (they keep independent evaluation
    counters). The solver kind applies network-wide, which matches how
    Table I labels each workload "Euler" or "RKF45". ``use_engine``
    selects between the compiled step-plan fast path (default) and the
    historical dict-state solver path; the two produce identical spike
    trains, and the flag exists so benchmarks can compare them.

    ``fault_policy`` decides what happens when a compiled population's
    state goes numerically bad mid-run: ``"propagate"`` (default) lets
    the fault surface — attach a
    :class:`~repro.reliability.guard.NumericsGuard` to turn it into a
    structured error — while ``"fallback"`` wraps each compiled runtime
    in a :class:`~repro.reliability.fallback.FallbackRuntime` that
    re-seats the population onto the verbatim solver path and records
    the event in ``SimulationResult.diagnostics``.
    """

    FAULT_POLICIES = ("propagate", "fallback")

    def __init__(
        self,
        solver: str = "Euler",
        use_engine: bool = True,
        fault_policy: str = "propagate",
    ):
        super().__init__()
        if fault_policy not in self.FAULT_POLICIES:
            raise ConfigurationError(
                f"unknown fault_policy {fault_policy!r} "
                f"(choose from {', '.join(self.FAULT_POLICIES)})"
            )
        self.solver_name = solver
        self.use_engine = use_engine
        self.fault_policy = fault_policy
        self.name = f"reference-{solver.lower()}"

    def _solver_runtime(self, population: Population) -> SolverRuntime:
        return SolverRuntime(
            population.name,
            population.n,
            population.model,
            create_solver(self.solver_name),
        )

    def build_runtime(self, population: Population) -> PopulationRuntime:
        model = population.model
        if (
            self.use_engine
            and self.solver_name.lower() == "euler"
            and supports_step_plan(model)
        ):
            compiled = CompiledRuntime(population.name, population.n, model)
            if self.fault_policy == "fallback":
                # Imported here: the reliability package reaches back
                # into the network layer, so a module-level import
                # would be a cycle at package init.
                from repro.reliability.fallback import FallbackRuntime

                return FallbackRuntime(
                    compiled, lambda: self._solver_runtime(population)
                )
            return compiled
        return self._solver_runtime(population)
