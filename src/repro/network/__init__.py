"""SNN description and time-step simulation framework.

This package is the simulation substrate of the reproduction — the role
NEST / GeNN / Brian play in the paper. It provides populations,
projections (synapse groups with weights, types and delays), stimulus
generators, spike recording, and a three-phase time-step loop
(Section II-C): stimulus generation, neuron computation, and synapse
calculation. The simulator instruments each phase with wall-clock time
and operation counts, which drive the Figure 3 breakdown and the
Figure 13 cost models.
"""

from repro.network.population import Population
from repro.network.projection import Projection, connect
from repro.network.stimulus import PatternStimulus, PoissonStimulus, Stimulus
from repro.network.spike_queue import SpikeQueue
from repro.network.recorder import SpikeRecord, SpikeRecorder, StateRecorder
from repro.network.network import Network
from repro.network.backends import Backend, ReferenceBackend, RuntimeBackend
from repro.network.simulator import (
    PHASES,
    PhaseStats,
    SimulationResult,
    Simulator,
)
from repro.engine.hooks import HookError, PhaseHook, PhaseTimer, PhaseTrace

__all__ = [
    "Backend",
    "HookError",
    "Network",
    "PHASES",
    "PatternStimulus",
    "PhaseHook",
    "PhaseStats",
    "PhaseTimer",
    "PhaseTrace",
    "PoissonStimulus",
    "Population",
    "Projection",
    "ReferenceBackend",
    "RuntimeBackend",
    "SimulationResult",
    "Simulator",
    "SpikeQueue",
    "SpikeRecord",
    "SpikeRecorder",
    "StateRecorder",
    "Stimulus",
    "connect",
]
