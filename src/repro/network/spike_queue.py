"""Delay ring buffer carrying in-flight spike weights.

Output spikes propagate "after a certain number of time steps, or
delay, associated to each synapse" (Section II-C). Each population owns
one :class:`SpikeQueue`: a ring of per-step accumulation buffers of
shape ``(n_synapse_types, n)``. Enqueueing a spike adds its synaptic
weight into the slot ``delay`` steps ahead; at each step the simulator
pops the current slot as that population's accumulated input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class SpikeQueue:
    """Ring buffer of accumulated synaptic weights for one population."""

    def __init__(self, n: int, n_synapse_types: int, max_delay: int):
        if max_delay < 1:
            raise SimulationError(f"max_delay must be >= 1, got {max_delay}")
        self.n = n
        self.n_synapse_types = n_synapse_types
        self.depth = max_delay + 1
        self._ring = np.zeros(
            (self.depth, n_synapse_types, n), dtype=np.float64
        )
        self._head = 0
        #: Lifetime count of spike deliveries accumulated into the ring
        #: (telemetry; published as ``spike_queue_enqueued_total``).
        self.enqueued_events = 0

    def enqueue(
        self,
        post_idx: np.ndarray,
        weights: np.ndarray,
        delays: np.ndarray,
        syn_type: int,
    ) -> None:
        """Accumulate spike weights arriving ``delays`` steps from now."""
        if post_idx.size == 0:
            return
        if np.any(delays < 1) or np.any(delays >= self.depth):
            raise SimulationError(
                f"delay out of range 1..{self.depth - 1} for this queue"
            )
        slots = (self._head + delays) % self.depth
        np.add.at(self._ring, (slots, syn_type, post_idx), weights)
        self.enqueued_events += post_idx.size

    def enqueue_now(
        self, post_idx: np.ndarray, weights: np.ndarray, syn_type: int
    ) -> None:
        """Accumulate weights into the slot popped at the *current* step.

        Used by stimulus generation, which injects into the present
        time step before the neuron-computation phase runs.
        """
        if post_idx.size == 0:
            return
        np.add.at(self._ring, (self._head, syn_type, post_idx), weights)
        self.enqueued_events += post_idx.size

    def current(self) -> np.ndarray:
        """The ``(n_synapse_types, n)`` input accumulated for this step."""
        return self._ring[self._head]

    def rotate(self) -> None:
        """Clear the consumed slot and advance to the next step."""
        self._ring[self._head][:] = 0.0
        self._head = (self._head + 1) % self.depth

    def pending_total(self) -> float:
        """Sum of all queued weight (useful for conservation tests)."""
        return float(self._ring.sum())

    def snapshot(self) -> dict:
        """The full ring contents and head position (checkpointing)."""
        return {
            "ring": self._ring.copy(),
            "head": self._head,
            "enqueued_events": self.enqueued_events,
        }

    def restore(self, snapshot: dict) -> None:
        """Overwrite the ring from a :meth:`snapshot`."""
        ring = np.asarray(snapshot["ring"], dtype=np.float64)
        if ring.shape != self._ring.shape:
            raise SimulationError(
                f"snapshot ring shape {ring.shape} does not match "
                f"{self._ring.shape}"
            )
        head = int(snapshot["head"])
        if not 0 <= head < self.depth:
            raise SimulationError(f"snapshot head {head} out of range")
        self._ring[:] = ring
        self._head = head
        # Older checkpoints predate the telemetry counter.
        self.enqueued_events = int(snapshot.get("enqueued_events", 0))
