"""Back-compat home of the per-population delay ring.

The implementation moved to :mod:`repro.routing.ring` when spike
delivery became a routing layer of its own (shared by the simulator,
the event-driven runtimes, checkpointing, and the future sharded
exchange). :class:`SpikeQueue` remains as the historical name — it *is*
a :class:`~repro.routing.ring.DelayRing` — so existing imports, tests,
and checkpoints keep working unchanged.

Note one deliberate behaviour fix that rode along with the move:
``pending_total()`` now returns the exact integral number of in-flight
deliveries (event counts are integers end-to-end); the accumulated
float weight lives on ``pending_weight()``.
"""

from __future__ import annotations

from repro.routing.ring import DelayRing

__all__ = ["SpikeQueue"]


class SpikeQueue(DelayRing):
    """Ring buffer of accumulated synaptic weights for one population."""
