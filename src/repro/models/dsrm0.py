"""DSRM0 — the zeroth-order spike response model with decaying synapses.

Smith's digital DSRM0 neuron feeds input spikes through exponentially
decaying synaptic conductances (COBE) without reversal scaling: a
spike's influence on the membrane fades over the synaptic time constant
rather than landing instantaneously (Equation 4, COBE row).
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class DSRM0(FeatureModel):
    """Discrete SRM0 neuron (EXD + COBE + AR)."""

    name = "DSRM0"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3, tau_g=(5e-3, 10e-3), t_ref=2e-3
            )
        super().__init__(
            features_for_model("DSRM0"), parameters, name=self.name
        )
