"""Hodgkin-Huxley — the high-accuracy model Flexon does NOT support.

HH (Hodgkin & Huxley 1952) models the membrane as an RC circuit with
voltage-gated sodium and potassium channels; the gating variables
``m``, ``h``, ``n`` follow first-order kinetics with voltage-dependent
rates that involve exponentials *and divisions*. Section VII-A names
division as an operation Flexon lacks, so HH is the canonical model the
hybrid simulation path offloads back to the general-purpose processor.
This implementation exists to exercise exactly that path (mixed
AdEx + HH networks) and to serve as a "too expensive for practical use"
cost-model reference.

Units are the classic ones: membrane potential in mV (rest ~ -65 mV),
conductances in mS/cm^2, currents in uA/cm^2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.models.base import ModelParameters, NeuronModel, State


class HodgkinHuxley(NeuronModel):
    """Classic squid-axon Hodgkin-Huxley neuron."""

    name = "HH"

    #: Channel conductances [mS/cm^2] and reversal potentials [mV].
    g_na, e_na = 120.0, 50.0
    g_k, e_k = 36.0, -77.0
    g_l, e_l = 0.3, -54.387
    c_m = 1.0  #: membrane capacitance [uF/cm^2]
    v_spike = 0.0  #: spike detection threshold [mV]

    def __init__(self, parameters: Optional[ModelParameters] = None):
        super().__init__(parameters)

    def state_variable_names(self) -> Tuple[str, ...]:
        return ("v", "m", "h", "n", "above")

    def initial_state(self, n: int) -> State:
        v = np.full(n, -65.0, dtype=np.float64)
        state: State = {"v": v}
        # Gates start at their steady-state values at rest.
        am, bm, ah, bh, an, bn = self._rates(v)
        state["m"] = am / (am + bm)
        state["h"] = ah / (ah + bh)
        state["n"] = an / (an + bn)
        state["above"] = np.zeros(n, dtype=np.float64)
        return state

    @staticmethod
    def _rates(v: np.ndarray):
        """The six voltage-dependent rate functions (per ms)."""
        am = 0.1 * (v + 40.0) / (1.0 - np.exp(-(v + 40.0) / 10.0) + 1e-12)
        bm = 4.0 * np.exp(-(v + 65.0) / 18.0)
        ah = 0.07 * np.exp(-(v + 65.0) / 20.0)
        bh = 1.0 / (1.0 + np.exp(-(v + 35.0) / 10.0))
        an = 0.01 * (v + 55.0) / (1.0 - np.exp(-(v + 55.0) / 10.0) + 1e-12)
        bn = 0.125 * np.exp(-(v + 65.0) / 80.0)
        return am, bm, ah, bh, an, bn

    def _currents(self, state: State) -> np.ndarray:
        v = state["v"]
        i_na = self.g_na * state["m"] ** 3 * state["h"] * (v - self.e_na)
        i_k = self.g_k * state["n"] ** 4 * (v - self.e_k)
        i_l = self.g_l * (v - self.e_l)
        return -(i_na + i_k + i_l)

    #: Largest internal Euler substep [ms]. HH kinetics are stiff: at
    #: the simulator's 0.1 ms step the gates diverge, so the model
    #: substeps internally — the very cost that makes HH "not
    #: acceptable for practical uses" on general-purpose hosts.
    MAX_SUBSTEP_MS = 0.01

    def step(self, state: State, inputs: np.ndarray, dt: float) -> np.ndarray:
        ms = dt * 1e3
        substeps = max(1, int(np.ceil(ms / self.MAX_SUBSTEP_MS)))
        h = ms / substeps
        injected = inputs.sum(axis=0)
        fired = np.zeros(state["v"].shape[0], dtype=bool)
        for _ in range(substeps):
            v = state["v"]
            current = injected + self._currents(state)
            am, bm, ah, bh, an, bn = self._rates(v)
            for gate, alpha, beta in (
                ("m", am, bm),
                ("h", ah, bh),
                ("n", an, bn),
            ):
                x = state[gate]
                x += h * (alpha * (1.0 - x) - beta * x)
                np.clip(x, 0.0, 1.0, out=x)
            v += h * current / self.c_m
            np.clip(v, -120.0, 70.0, out=v)
            # A spike is an upward crossing of v_spike.
            above = v > self.v_spike
            fired |= above & (state["above"] <= 0.0)
            state["above"] = above.astype(np.float64)
        return fired

    def derivatives(self, state: State) -> State:
        v = state["v"]
        am, bm, ah, bh, an, bn = self._rates(v)
        return {
            "v": self._currents(state) / self.c_m * 1e3,
            "m": (am * (1.0 - state["m"]) - bm * state["m"]) * 1e3,
            "h": (ah * (1.0 - state["h"]) - bh * state["h"]) * 1e3,
            "n": (an * (1.0 - state["n"]) - bn * state["n"]) * 1e3,
            "above": np.zeros_like(v),
        }

    def ops_per_update(self):
        # Six rate functions: exponentials plus divisions dominate.
        return {"mul": 24, "add": 22, "exp": 6, "cmp": 1}
