"""Reference neuron models (float ground truth).

The paper verifies its RTL "by comparing the output spikes with those of
Brian, a CPU-based SNN simulator" (Section VI-A). This package is our
Brian substitute: software reference implementations of every neuron
model in Tables I and III, in double-precision floating point.

The workhorse is :class:`~repro.models.feature_model.FeatureModel`,
which implements the paper's extended-LIF semantics (Equations 2-8)
generically from a :class:`~repro.features.FeatureSet`. The named
models (LIF, LLIF, ..., AdEx) are configured instances with literature
parameter defaults. :mod:`repro.models.hh` adds the Hodgkin-Huxley
model, which Flexon does *not* support — it exists to exercise the
Section VII-A offloading path. :mod:`repro.models.izhikevich` also
ships the native (v, u) Izhikevich formulation as an independent
cross-check of the feature-based mapping.
"""

from repro.models.base import ModelParameters, NeuronModel
from repro.models.feature_model import FeatureModel
from repro.models.registry import available_models, create_model
from repro.models.lif import LIF
from repro.models.llif import LLIF
from repro.models.slif import SLIF
from repro.models.dsrm0 import DSRM0
from repro.models.dlif import DLIF
from repro.models.qif import QIF
from repro.models.eif import EIF
from repro.models.izhikevich import Izhikevich, NativeIzhikevich
from repro.models.adex import AdEx, AdExCOBA
from repro.models.pynn import IFCondExpGsfaGrr, IFPscAlpha
from repro.models.hh import HodgkinHuxley

__all__ = [
    "AdEx",
    "AdExCOBA",
    "DLIF",
    "DSRM0",
    "EIF",
    "FeatureModel",
    "HodgkinHuxley",
    "IFCondExpGsfaGrr",
    "IFPscAlpha",
    "Izhikevich",
    "LIF",
    "LLIF",
    "ModelParameters",
    "NativeIzhikevich",
    "NeuronModel",
    "QIF",
    "SLIF",
    "available_models",
    "create_model",
]
