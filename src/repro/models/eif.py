"""EIF — exponential integrate-and-fire (Fourcaud-Trocme et al.).

EIF uses an exponential spike-initiation term (EXI, Equation 5): near
the threshold the drive grows as ``delta_T * exp((v - theta)/delta_T)``,
giving a soft, biologically realistic spike onset. The sharpness factor
``delta_T`` controls how abrupt the onset is.
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class EIF(FeatureModel):
    """Exponential integrate-and-fire (EXD + COBE + REV + EXI + AR)."""

    name = "EIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3,
                tau_g=(5e-3, 10e-3),
                v_g=(4.33, -1.0),
                delta_t=0.133,
                v_theta=2.0,
                t_ref=2e-3,
            )
        super().__init__(
            features_for_model("EIF"), parameters, name=self.name
        )
