"""Leaky Integrate-and-Fire — the paper's baseline model (Equation 2).

LIF combines current-based accumulation (CUB) with exponential membrane
decay (EXD): the membrane potential relaxes exponentially toward the
resting voltage and input spike weights are added instantly.
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class LIF(FeatureModel):
    """Baseline leaky integrate-and-fire neuron (CUB + EXD)."""

    name = "LIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(tau=20e-3)
        super().__init__(
            features_for_model("LIF"), parameters, name=self.name
        )
