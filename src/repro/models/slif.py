"""LIF with step inputs (SLIF), one of Smith's four digital neurons.

SLIF is the baseline LIF model plus an absolute refractory period:
exponential decay, instant (current-based) input accumulation, and a
post-spike window during which input spikes are ignored (Equation 7).
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class SLIF(FeatureModel):
    """LIF with step inputs (EXD + CUB + AR)."""

    name = "SLIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(tau=20e-3, t_ref=2e-3)
        super().__init__(
            features_for_model("SLIF"), parameters, name=self.name
        )
