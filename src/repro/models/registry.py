"""Name-based neuron-model factory.

The workloads of Table I and the experiment harnesses refer to models
by name; this registry resolves those names (and a few PyNN-style
aliases) to constructors. Custom models can be registered at runtime,
which the Section VII-A hybrid-simulation example uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import UnknownModelError
from repro.models.adex import AdEx, AdExCOBA
from repro.models.base import ModelParameters, NeuronModel
from repro.models.dlif import DLIF
from repro.models.dsrm0 import DSRM0
from repro.models.eif import EIF
from repro.models.hh import HodgkinHuxley
from repro.models.izhikevich import Izhikevich, NativeIzhikevich
from repro.models.lif import LIF
from repro.models.llif import LLIF
from repro.models.pynn import IFCondExpGsfaGrr, IFPscAlpha
from repro.models.qif import QIF
from repro.models.slif import SLIF

ModelFactory = Callable[..., NeuronModel]

_REGISTRY: Dict[str, ModelFactory] = {
    "LIF": LIF,
    "LLIF": LLIF,
    "SLIF": SLIF,
    "DSRM0": DSRM0,
    "DLIF": DLIF,
    "QIF": QIF,
    "EIF": EIF,
    "Izhikevich": Izhikevich,
    "NativeIzhikevich": NativeIzhikevich,
    "AdEx": AdEx,
    "AdEx_COBA": AdExCOBA,
    "IF_psc_alpha": IFPscAlpha,
    "IF_cond_exp_gsfa_grr": IFCondExpGsfaGrr,
    "HH": HodgkinHuxley,
}

_ALIASES: Dict[str, str] = {
    # PyNN / Table I spellings
    "if_psc_alpha": "IF_psc_alpha",
    "if_cond_exp_gsfa_grr": "IF_cond_exp_gsfa_grr",
    "izhikevich": "Izhikevich",
    "adex": "AdEx",
    "adexcoba": "AdEx_COBA",
    "adex_coba": "AdEx_COBA",
    "hodgkinhuxley": "HH",
    "hodgkin-huxley": "HH",
    "lif": "LIF",
    "llif": "LLIF",
    "slif": "SLIF",
    "dsrm0": "DSRM0",
    "dlif": "DLIF",
    "qif": "QIF",
    "eif": "EIF",
    "hh": "HH",
}


def canonical_name(name: str) -> str:
    """Resolve an alias to the canonical registry key."""
    if name in _REGISTRY:
        return name
    lowered = name.lower()
    if lowered in _ALIASES:
        return _ALIASES[lowered]
    raise UnknownModelError(
        f"unknown neuron model {name!r}; known: {', '.join(sorted(_REGISTRY))}"
    )


def create_model(
    name: str, parameters: Optional[ModelParameters] = None, **kwargs
) -> NeuronModel:
    """Instantiate a neuron model by (possibly aliased) name."""
    factory = _REGISTRY[canonical_name(name)]
    if parameters is not None:
        return factory(parameters=parameters, **kwargs)
    return factory(**kwargs)


def register_model(name: str, factory: ModelFactory) -> None:
    """Register a custom model constructor under ``name``."""
    _REGISTRY[name] = factory


def available_models() -> List[str]:
    """Sorted canonical names of all registered models."""
    return sorted(_REGISTRY)
