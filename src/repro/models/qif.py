"""QIF — quadratic integrate-and-fire (Neurogrid's neuron model).

QIF replaces instant spike initiation with a quadratic drive term
(QDI, Equation 5): past the critical voltage the membrane accelerates
toward the firing voltage on its own, and a spike is emitted only once
``v`` exceeds ``v_theta`` (> theta), not theta itself.
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class QIF(FeatureModel):
    """Quadratic integrate-and-fire (EXD + COBE + REV + QDI + AR)."""

    name = "QIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3,
                tau_g=(5e-3, 10e-3),
                v_g=(4.33, -1.0),
                v_c=0.5,
                v_theta=2.0,
                t_ref=2e-3,
            )
        super().__init__(
            features_for_model("QIF"), parameters, name=self.name
        )
