"""Linear-Leak Integrate-and-Fire (LLIF) — the TrueNorth-style model.

LLIF replaces LIF's exponential decay with a fixed linear decrement
(LID, Equation 3), which removes the need for a multiplier — the reason
Nere et al. and IBM TrueNorth adopt it. The decay clamps at the resting
voltage, reproducing the steady state of the paper's Figure 4.
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class LLIF(FeatureModel):
    """Linear-leak integrate-and-fire neuron (LID + CUB + AR)."""

    name = "LLIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            # A leak that drains one threshold unit in ~50 ms.
            parameters = ModelParameters(leak_rate=20.0, t_ref=2e-3)
        super().__init__(
            features_for_model("LLIF"), parameters, name=self.name
        )
