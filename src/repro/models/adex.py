"""AdEx — adaptive exponential integrate-and-fire (Brette & Gerstner).

AdEx is the most feature-rich model in Table III: exponential decay and
spike initiation, conductance-based inputs with reversal voltages,
spike-triggered adaptation, and subthreshold oscillation. The paper
highlights it as the model that needs 7 of the 12 features at once.

:class:`AdExCOBA` swaps the exponential synaptic kernel for the alpha
function (COBA), matching the "AdEx with COBA" Table III row; it is the
model behind the Destexhe workloads of Table I (their variations tweak
parameters, not structure).
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


def _default_adex_parameters() -> ModelParameters:
    return ModelParameters(
        tau=20e-3,
        tau_g=(5e-3, 10e-3),
        v_g=(4.33, -1.0),
        delta_t=0.133,
        v_theta=2.0,
        tau_w=144e-3,  # Brette & Gerstner's tau_w
        # In our +w coupling convention the subthreshold constant is
        # negative (the stored hardware constant eps_m*a absorbs the
        # sign): w opposes deviations of v from v_w, giving damped
        # subthreshold oscillation instead of runaway feedback.
        a=-0.02,
        v_w=0.0,
        b=0.08,
        t_ref=2e-3,
    )


class AdEx(FeatureModel):
    """Adaptive exponential IF (EXD+COBE+REV+EXI+ADT+SBT+AR)."""

    name = "AdEx"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = _default_adex_parameters()
        super().__init__(
            features_for_model("AdEx"), parameters, name=self.name
        )


class AdExCOBA(FeatureModel):
    """AdEx with alpha-function conductances (COBA instead of COBE)."""

    name = "AdEx_COBA"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = _default_adex_parameters()
        super().__init__(
            features_for_model("AdEx_COBA"), parameters, name=self.name
        )
