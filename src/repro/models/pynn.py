"""PyNN standard-cell models referenced in Tables I and III.

``IF_psc_alpha`` (used by the Brunel workload) is a LIF neuron with
alpha-shaped post-synaptic *currents*: the alpha kernel (COBA) without
reversal scaling. ``IF_cond_exp_gsfa_grr`` (used by the Muller et al.
workload) is a conductance-based LIF with spike-frequency adaptation
(the ``gsfa`` conductance, our ``w``) and a relative-refractory
conductance (``grr``, our ``r``) — the only Table III model using RR.
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class IFPscAlpha(FeatureModel):
    """PyNN IF_psc_alpha: LIF with alpha-function PSCs (EXD+COBA+AR)."""

    name = "IF_psc_alpha"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3, tau_g=(2e-3, 2e-3), t_ref=2e-3
            )
        super().__init__(
            features_for_model("IF_psc_alpha"), parameters, name=self.name
        )


class IFCondExpGsfaGrr(FeatureModel):
    """PyNN IF_cond_exp_gsfa_grr: conductance LIF + adaptation + RR."""

    name = "IF_cond_exp_gsfa_grr"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3,
                tau_g=(5e-3, 10e-3),
                v_g=(4.33, -1.0),
                tau_w=110e-3,  # sfa decay
                b=0.05,  # q_sfa
                tau_r=1.97e-3,  # rr decay
                q_r=0.3,  # q_rr
                v_rr=-1.0,  # E_rr below rest
                v_ar=-0.5,  # E_sfa
                t_ref=2e-3,
            )
        super().__init__(
            features_for_model("IF_cond_exp_gsfa_grr"),
            parameters,
            name=self.name,
        )
