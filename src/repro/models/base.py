"""Neuron model base classes and parameter handling.

All voltages are expressed in the paper's *shift & scale* units
(Section IV-B1): the resting voltage is 0 and the threshold voltage is
1.0 by default. Time constants are in seconds. Per-step quantities
(``eps_m = dt / tau`` etc.) are derived at simulation time so the same
parameter set works for any time step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: A neuron population's state: variable name -> float64 array of length n.
State = Dict[str, np.ndarray]


@dataclass(frozen=True)
class ModelParameters:
    """Constants of the extended LIF family (Equations 2-8).

    Only the constants used by a model's enabled features matter; the
    rest are ignored. Defaults are biologically plausible values mapped
    into scaled units where 1 voltage unit = (threshold - rest), i.e.
    roughly 15 mV for a -65 mV rest / -50 mV threshold neuron.
    """

    # -- core LIF (Equation 2) ------------------------------------------
    tau: float = 20e-3  #: membrane time constant [s]
    v_rest: float = 0.0  #: resting voltage v0 (scaled)
    theta: float = 1.0  #: threshold voltage (scaled)
    v_reset: Optional[float] = None  #: post-spike voltage; None -> v_rest

    # -- LID (Equation 3) ------------------------------------------------
    leak_rate: float = 10.0  #: linear decay rate [scaled volts / s]

    # -- input spike accumulation (Equation 4) ---------------------------
    n_synapse_types: int = 2  #: e.g. excitatory and inhibitory
    tau_g: Tuple[float, ...] = (5e-3, 10e-3)  #: conductance decay [s] per type
    v_g: Tuple[float, ...] = (4.33, -1.0)  #: reversal voltage per type

    # -- spike initiation (Equation 5) ------------------------------------
    v_theta: float = 2.0  #: firing voltage for QDI/EXI (> theta)
    delta_t: float = 0.133  #: EXI sharpness factor
    v_c: float = 0.5  #: QDI critical voltage

    # -- spike-triggered current (Equation 6) ----------------------------
    tau_w: float = 100e-3  #: adaptation decay time constant [s]
    a: float = 0.02  #: SBT subthreshold coupling constant
    v_w: float = 0.2  #: SBT oscillation target voltage
    b: float = 0.05  #: spike-triggered jump size

    # -- refractory (Equations 7, 8) --------------------------------------
    t_ref: float = 2e-3  #: AR period [s]
    tau_r: float = 2e-3  #: RR decay time constant [s]
    q_r: float = 0.3  #: RR jump size
    v_rr: float = -1.0  #: RR reversal voltage
    v_ar: float = -0.5  #: adaptation reversal voltage (Equation 8)

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {self.tau}")
        if self.n_synapse_types < 1:
            raise ConfigurationError("need at least one synapse type")
        if len(self.tau_g) < self.n_synapse_types:
            raise ConfigurationError(
                f"tau_g has {len(self.tau_g)} entries for "
                f"{self.n_synapse_types} synapse types"
            )
        if len(self.v_g) < self.n_synapse_types:
            raise ConfigurationError(
                f"v_g has {len(self.v_g)} entries for "
                f"{self.n_synapse_types} synapse types"
            )
        if any(t <= 0 for t in self.tau_g[: self.n_synapse_types]):
            raise ConfigurationError("conductance time constants must be > 0")
        if self.theta <= self.v_rest:
            raise ConfigurationError("theta must exceed v_rest")

    @property
    def reset_voltage(self) -> float:
        """Post-spike voltage (v_reset, defaulting to v_rest)."""
        return self.v_rest if self.v_reset is None else self.v_reset

    def with_overrides(self, **changes) -> "ModelParameters":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def eps_m(self, dt: float) -> float:
        """Per-step membrane decay factor ``dt / tau``."""
        return dt / self.tau

    def eps_g(self, dt: float) -> Tuple[float, ...]:
        """Per-step conductance decay factors, one per synapse type."""
        return tuple(dt / t for t in self.tau_g[: self.n_synapse_types])

    def eps_w(self, dt: float) -> float:
        """Per-step adaptation decay factor."""
        return dt / self.tau_w

    def eps_r(self, dt: float) -> float:
        """Per-step relative-refractory decay factor."""
        return dt / self.tau_r

    def refractory_steps(self, dt: float) -> int:
        """AR counter reload value cnt_max for the given time step."""
        return max(1, int(round(self.t_ref / dt)))

    def derived(self, dt: float) -> "DerivedConstants":
        """The per-step constants this parameter set lowers to at ``dt``.

        This is the feature-lowering entry point: everything a per-step
        update kernel needs that does not depend on the population state
        is folded into one cached bundle, so neither the float models
        nor the compiled engine plans recompute ``dt / tau`` (and
        friends) on every step. The arithmetic matches the historical
        inline expressions exactly, so cached and uncached paths are
        bit-identical.
        """
        return _derive_constants(self, dt)


@dataclass(frozen=True)
class DerivedConstants:
    """Per-step scalars lowered from a ``ModelParameters`` at a fixed dt.

    Products such as ``one_minus_eps_g`` are precomputed in the exact
    float64 expression order used by
    :meth:`~repro.models.feature_model.FeatureModel.step`, which is what
    lets the compiled engine kernels stay bit-identical to the
    dict-state reference path.
    """

    dt: float
    eps_m: float
    eps_g: Tuple[float, ...]
    one_minus_eps_g: Tuple[float, ...]
    eps_w: float
    one_minus_eps_w: float
    eps_r: float
    one_minus_eps_r: float
    #: LID decrement per step (``leak_rate * dt``).
    leak_max: float
    #: SBT subthreshold gain per step (``eps_m * a``).
    sbt_gain: float
    #: AR counter reload value.
    cnt_reload: int


@lru_cache(maxsize=512)
def _derive_constants(parameters: ModelParameters, dt: float) -> DerivedConstants:
    eps_m = parameters.eps_m(dt)
    eps_g = parameters.eps_g(dt)
    eps_w = parameters.eps_w(dt)
    eps_r = parameters.eps_r(dt)
    return DerivedConstants(
        dt=dt,
        eps_m=eps_m,
        eps_g=eps_g,
        one_minus_eps_g=tuple(1.0 - e for e in eps_g),
        eps_w=eps_w,
        one_minus_eps_w=1.0 - eps_w,
        eps_r=eps_r,
        one_minus_eps_r=1.0 - eps_r,
        leak_max=parameters.leak_rate * dt,
        sbt_gain=eps_m * parameters.a,
        cnt_reload=parameters.refractory_steps(dt),
    )


class NeuronModel(abc.ABC):
    """A population-level neuron model.

    Models are *vectorised*: every method operates on all ``n`` neurons
    of a population at once. State is a plain dict of float64 arrays so
    solvers and recorders can treat it uniformly.
    """

    #: Human-readable canonical name, set by subclasses.
    name: str = "abstract"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        self.parameters = parameters if parameters is not None else ModelParameters()

    # -- state ------------------------------------------------------------

    @abc.abstractmethod
    def state_variable_names(self) -> Tuple[str, ...]:
        """Names of the per-neuron state variables, ``v`` first."""

    def initial_state(self, n: int) -> State:
        """Fresh state for ``n`` neurons, every variable at its rest value."""
        state = {
            name: np.zeros(n, dtype=np.float64)
            for name in self.state_variable_names()
        }
        state["v"][:] = self.parameters.v_rest
        return state

    # -- dynamics ----------------------------------------------------------

    @abc.abstractmethod
    def step(self, state: State, inputs: np.ndarray, dt: float) -> np.ndarray:
        """Advance one time step in place; return the boolean fired mask.

        ``inputs`` has shape ``(n_synapse_types, n)`` and holds the
        accumulated synaptic weights delivered this step (the output of
        the synapse-calculation phase).
        """

    def derivatives(self, state: State) -> State:
        """Continuous-time right-hand sides for adaptive solvers.

        Only the smooth part of the dynamics belongs here; resets,
        refractory counters, and input-spike jumps are discrete events
        handled by :meth:`step` / the simulator. Models that are
        inherently discrete (e.g. LLIF) may not support this.
        """
        raise NotImplementedError(
            f"{self.name} does not define continuous dynamics"
        )

    def apply_input_jumps(self, state: State, inputs: np.ndarray) -> None:
        """Apply this step's accumulated input weights as state jumps.

        Used by adaptive solvers (which integrate only the smooth part):
        spike arrivals are instantaneous jumps applied between solver
        steps. Default: add both synapse-type rows directly to ``v``
        (current-based behaviour).
        """
        state["v"] += inputs.sum(axis=0)

    def fire_and_reset(self, state: State, dt: float) -> np.ndarray:
        """Check the firing condition, apply resets; return fired mask.

        Used by adaptive solvers after integrating the smooth dynamics.
        """
        raise NotImplementedError(
            f"{self.name} does not define a separate fire/reset phase"
        )

    # -- introspection ------------------------------------------------------

    def ops_per_update(self) -> Dict[str, int]:
        """Approximate arithmetic-operation counts for one Euler update.

        Used by the CPU/GPU cost models (Figure 3 / 13). Keys: ``mul``,
        ``add``, ``exp``, ``cmp``. Subclasses refine this.
        """
        return {"mul": 2, "add": 3, "exp": 0, "cmp": 1}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
