"""Izhikevich's simple model, in two formulations.

:class:`Izhikevich` is the paper's feature-based mapping (Table III):
EXD + COBE + REV + QDI + ADT + AR. The quadratic initiation supplies
the ``0.04 v^2``-style acceleration and the adaptation current plays the
role of Izhikevich's recovery variable ``u``.

:class:`NativeIzhikevich` is the original two-variable formulation
(Izhikevich 2003)::

    v' = 0.04 v^2 + 5 v + 140 - u + I
    u' = a (b v - u)
    if v >= 30 mV: v <- c, u <- u + d

kept in its native millivolt units. It exists as an independent
cross-check: tests verify that both formulations produce the same
qualitative behaviours (tonic spiking, adaptation) even though their
state spaces differ.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.features import features_for_model
from repro.models.base import ModelParameters, NeuronModel, State
from repro.models.feature_model import FeatureModel


class Izhikevich(FeatureModel):
    """Feature-based Izhikevich model (EXD+COBE+REV+QDI+ADT+AR)."""

    name = "Izhikevich"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            parameters = ModelParameters(
                tau=20e-3,
                tau_g=(5e-3, 10e-3),
                v_g=(4.33, -1.0),
                v_c=0.5,
                v_theta=2.0,
                tau_w=100e-3,
                b=0.1,
                t_ref=1e-3,
            )
        super().__init__(
            features_for_model("Izhikevich"), parameters, name=self.name
        )


class NativeIzhikevich(NeuronModel):
    """Izhikevich's original (v, u) formulation in millivolt units.

    The regime is set by the classic ``(a, b, c, d)`` quadruple;
    defaults give regular (tonic) spiking. Inputs are interpreted as
    currents in the model's native units; both synapse-type rows of the
    input array are summed (inhibitory weights should be negative).
    """

    name = "NativeIzhikevich"

    def __init__(
        self,
        a: float = 0.02,
        b: float = 0.2,
        c: float = -65.0,
        d: float = 8.0,
        parameters: Optional[ModelParameters] = None,
    ):
        super().__init__(parameters)
        self.a = a
        self.b = b
        self.c = c
        self.d = d

    def state_variable_names(self) -> Tuple[str, ...]:
        return ("v", "u")

    def initial_state(self, n: int) -> State:
        state = {
            "v": np.full(n, self.c, dtype=np.float64),
            "u": np.full(n, self.b * self.c, dtype=np.float64),
        }
        return state

    def step(self, state: State, inputs: np.ndarray, dt: float) -> np.ndarray:
        # The canonical formulation advances in 1 ms units; dt arrives
        # in seconds.
        ms = dt * 1e3
        v = state["v"]
        u = state["u"]
        current = inputs.sum(axis=0)
        dv = 0.04 * v * v + 5.0 * v + 140.0 - u + current
        du = self.a * (self.b * v - u)
        v += ms * dv
        u += ms * du
        fired = v >= 30.0
        v[fired] = self.c
        u[fired] += self.d
        return fired

    def derivatives(self, state: State) -> State:
        v = state["v"]
        u = state["u"]
        return {
            # per second: the native equations are per millisecond
            "v": (0.04 * v * v + 5.0 * v + 140.0 - u) * 1e3,
            "u": self.a * (self.b * v - u) * 1e3,
        }

    def ops_per_update(self):
        return {"mul": 5, "add": 6, "exp": 0, "cmp": 1}
