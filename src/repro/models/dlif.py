"""DLIF — LIF with decaying synaptic conductances and reversal voltages.

DLIF extends DSRM0 with reversal-voltage scaling (REV): a conductance's
contribution shrinks as the membrane potential approaches the synapse
type's reversal voltage (Equation 4). This is the model used by three
of the ten Table I workloads (Brette et al., Vogels et al.,
Vogels-Abbott).
"""

from __future__ import annotations

from typing import Optional

from repro.features import features_for_model
from repro.models.base import ModelParameters
from repro.models.feature_model import FeatureModel


class DLIF(FeatureModel):
    """Conductance-based LIF with reversal (EXD + COBE + REV + AR)."""

    name = "DLIF"

    def __init__(self, parameters: Optional[ModelParameters] = None):
        if parameters is None:
            # Vogels-Abbott style: excitatory reversal well above
            # threshold, inhibitory reversal below rest.
            parameters = ModelParameters(
                tau=20e-3,
                tau_g=(5e-3, 10e-3),
                v_g=(4.33, -1.0),
                t_ref=5e-3,
            )
        super().__init__(
            features_for_model("DLIF"), parameters, name=self.name
        )
