"""Generic feature-driven neuron model (Equations 2-8 in float64).

This is the paper's central observation turned into software: a neuron
model is a combination of biologically common features, so one engine
parameterised by a :class:`~repro.features.FeatureSet` simulates every
model in Table III. The Flexon hardware models implement *exactly* the
same discrete semantics in fixed point, which is what makes the
spike-equivalence validation of Section VI-A meaningful.

Discrete-step semantics (one call to :meth:`FeatureModel.step`):

1. **Refractory gating (AR)** — while the counter is positive, the
   accumulated input weights are suppressed (Equation 7).
2. **Synaptic kernels** — CUB passes inputs straight through; COBE
   integrates them into exponentially decaying conductances; COBA runs
   the alpha-function cascade through the auxiliary ``y`` variables
   (Equation 4).
3. **Reversal scaling (REV)** — each conductance's contribution is
   scaled by ``v_g,i - v`` (Equation 4).
4. **Membrane drive** — EXD adds the leak ``v0 - v``; QDI adds the
   quadratic term; EXI adds the exponential term (Equations 3, 5).
   These compose additively, matching the hardware's adder tree
   (Table V composes e.g. "QDI + EXD").
5. **LID** — linear decay is applied outside the ``eps_m`` scaling and
   is clamped so it stops at the resting voltage (the steady state in
   the paper's Figure 4); synaptic input is accumulated directly.
6. **Spike-triggered current** — ADT decays ``w``; SBT adds the
   subthreshold drive (Equation 6); RR decays both ``w`` and ``r`` and
   couples them through reversal terms (Equation 8).
7. **Fire & reset** — threshold is ``v_theta`` when a non-instant
   spike initiation (QDI/EXI) is enabled, ``theta`` otherwise; on fire
   the membrane resets and ``w``/``r``/``cnt`` jump (Equations 5-8).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.features import Feature, FeatureSet
from repro.models.base import ModelParameters, NeuronModel, State

_E = math.e


class FeatureModel(NeuronModel):
    """A neuron model assembled from biologically common features."""

    name = "feature-model"

    def __init__(
        self,
        features: FeatureSet,
        parameters: Optional[ModelParameters] = None,
        name: Optional[str] = None,
    ):
        super().__init__(parameters)
        self.features = features
        if name is not None:
            self.name = name
        self._vars = features.state_variables(
            self.parameters.n_synapse_types
        )

    # -- state ------------------------------------------------------------

    def state_variable_names(self) -> Tuple[str, ...]:
        return self._vars

    # -- discrete step (the hardware-equivalent semantics) -----------------

    def step(self, state: State, inputs: np.ndarray, dt: float) -> np.ndarray:
        p = self.parameters
        f = self.features
        n_types = p.n_synapse_types
        if inputs.shape[0] != n_types:
            raise SimulationError(
                f"expected {n_types} input rows, got {inputs.shape[0]}"
            )
        v = state["v"]
        if inputs.shape[1] != v.shape[0]:
            raise SimulationError(
                f"input width {inputs.shape[1]} != population size {v.shape[0]}"
            )
        d = p.derived(dt)
        eps_m = d.eps_m
        eps_g = d.eps_g

        # 1. absolute refractory gates the inputs of silenced neurons
        if Feature.AR in f:
            gated = inputs * (state["cnt"] <= 0.0)
        else:
            gated = inputs

        # 2-3. synaptic kernels and reversal scaling
        syn = np.zeros_like(v)
        use_rev = Feature.REV in f
        for i in range(n_types):
            if Feature.COBA in f:
                y = state[f"y{i}"]
                y *= 1.0 - eps_g[i]
                y += gated[i]
                g = state[f"g{i}"]
                g *= 1.0 - eps_g[i]
                g += (_E * eps_g[i]) * y
                contribution = g
            elif Feature.COBE in f:
                g = state[f"g{i}"]
                g *= 1.0 - eps_g[i]
                g += gated[i]
                contribution = g
            else:  # CUB: instantaneous, no stored conductance
                contribution = gated[i]
            if use_rev:
                syn += (p.v_g[i] - v) * contribution
            else:
                syn += contribution

        # 4-5. membrane update
        if Feature.LID in f:
            # Linear decay clamps at the resting voltage: the decrement
            # never pulls v below v_rest (Figure 4's steady state).
            leak = np.minimum(d.leak_max, np.maximum(v - p.v_rest, 0.0))
            v_new = v + syn - leak
        else:
            drive = syn + (p.v_rest - v)
            if Feature.QDI in f:
                drive = drive + (p.v_rest - v) * (p.v_c - v)
            if Feature.EXI in f:
                drive = drive + p.delta_t * np.exp((v - p.theta) / p.delta_t)
            v_new = v + eps_m * drive

        # 6. spike-triggered current and relative refractory (use old v)
        if Feature.RR in f:
            w = state["w"]
            r = state["r"]
            w *= d.one_minus_eps_w
            r *= d.one_minus_eps_r
            v_new = v_new + r * (p.v_rr - v) + w * (p.v_ar - v)
        elif Feature.SBT in f:
            w = state["w"]
            w *= d.one_minus_eps_w
            w += d.sbt_gain * (v - p.v_w)
            v_new = v_new + w
        elif Feature.ADT in f:
            w = state["w"]
            w *= d.one_minus_eps_w
            v_new = v_new + w

        # 7. fire & reset
        threshold = p.v_theta if f.spike_initiation is not None else p.theta
        fired = v_new > threshold
        v_new[fired] = p.reset_voltage
        # Spike-triggered jumps. In RR mode the w/r "conductances" are
        # reversal-coupled (Equation 8), so they must *grow* on a spike
        # for the coupling toward the sub-rest reversal voltages to
        # inhibit — the PyNN gsfa/grr semantics. (The paper writes the
        # jumps with a minus sign, absorbing it into the constants.)
        # In direct-coupling mode (ADT/SBT) the current itself is added
        # to v, so the jump is negative.
        if Feature.RR in f:
            state["w"][fired] += p.b
            state["r"][fired] += p.q_r
        elif f.has_adaptation_state:
            state["w"][fired] -= p.b
        if Feature.AR in f:
            cnt = state["cnt"]
            np.maximum(cnt - 1.0, 0.0, out=cnt)
            cnt[fired] = float(d.cnt_reload)
        state["v"] = v_new
        return fired

    # -- continuous dynamics (for RKF45 ground truth) -----------------------

    def derivatives(self, state: State) -> State:
        """Standard continuous-time form of the enabled features.

        The discrete per-step couplings of Equations 6 and 8 correspond
        to currents scaled by ``tau / dt``; here the conventional
        neuroscience form (couplings divided by tau) is used, which is
        what the RKF45-solved workloads of Table I integrate.
        LID is inherently discrete and unsupported here.
        """
        p = self.parameters
        f = self.features
        if Feature.LID in f:
            raise NotImplementedError("LID has no continuous form")
        v = state["v"]
        out: State = {}
        syn = np.zeros_like(v)
        for i in range(p.n_synapse_types):
            if Feature.COBA in f:
                y = state[f"y{i}"]
                g = state[f"g{i}"]
                out[f"y{i}"] = -y / p.tau_g[i]
                out[f"g{i}"] = (_E * y - g) / p.tau_g[i]
                contribution = g
            elif Feature.COBE in f:
                g = state[f"g{i}"]
                out[f"g{i}"] = -g / p.tau_g[i]
                contribution = g
            else:
                contribution = np.zeros_like(v)
            if Feature.REV in f:
                syn += (p.v_g[i] - v) * contribution
            else:
                syn += contribution
        drive = syn + (p.v_rest - v)
        if Feature.QDI in f:
            drive = drive + (p.v_rest - v) * (p.v_c - v)
        if Feature.EXI in f:
            # The exponent is capped a little above the firing point:
            # beyond v_theta a spike is emitted at the step boundary
            # anyway, so resolving the divergence more finely only
            # wastes adaptive-solver substeps.
            cap = (p.v_theta - p.theta) / p.delta_t + 2.0
            drive = drive + p.delta_t * np.exp(
                np.minimum((v - p.theta) / p.delta_t, cap)
            )
        if Feature.RR in f:
            w = state["w"]
            r = state["r"]
            drive = drive + r * (p.v_rr - v) + w * (p.v_ar - v)
            out["w"] = -w / p.tau_w
            out["r"] = -r / p.tau_r
        elif Feature.SBT in f:
            w = state["w"]
            drive = drive + w
            out["w"] = (p.a * (v - p.v_w) - w) / p.tau_w
        elif Feature.ADT in f:
            w = state["w"]
            drive = drive + w
            out["w"] = -w / p.tau_w
        out["v"] = drive / p.tau
        if Feature.AR in f:
            out["cnt"] = np.zeros_like(v)  # counters do not flow
        return out

    # -- adaptive-solver hooks ------------------------------------------------

    def apply_input_jumps(self, state: State, inputs: np.ndarray) -> None:
        """Deliver this step's input weights as instantaneous jumps.

        CUB adds straight to the membrane potential; COBE jumps the
        conductances; COBA jumps the alpha-cascade ``y`` variables.
        AR gating applies exactly as in :meth:`step`.
        """
        f = self.features
        if Feature.AR in f:
            gated = inputs * (state["cnt"] <= 0.0)
        else:
            gated = inputs
        for i in range(self.parameters.n_synapse_types):
            if Feature.COBA in f:
                state[f"y{i}"] += gated[i]
            elif Feature.COBE in f:
                state[f"g{i}"] += gated[i]
            else:
                state["v"] += gated[i]

    def fire_and_reset(self, state: State, dt: float) -> np.ndarray:
        """Threshold check, resets, and refractory bookkeeping."""
        p = self.parameters
        f = self.features
        threshold = p.v_theta if f.spike_initiation is not None else p.theta
        v = state["v"]
        fired = v > threshold
        v[fired] = p.reset_voltage
        if Feature.RR in f:
            state["w"][fired] += p.b
            state["r"][fired] += p.q_r
        elif f.has_adaptation_state:
            state["w"][fired] -= p.b
        if Feature.AR in f:
            cnt = state["cnt"]
            np.maximum(cnt - 1.0, 0.0, out=cnt)
            cnt[fired] = float(p.refractory_steps(dt))
        return fired

    # -- cost-model introspection -------------------------------------------

    def ops_per_update(self) -> Dict[str, int]:
        """Arithmetic ops for one Euler update of one neuron.

        Counts multiplies, adds, exponentials and comparisons implied by
        the enabled features; the CPU/GPU cost models scale these by
        per-op costs and, for RKF45, by the number of stage evaluations.
        """
        f = self.features
        n_types = self.parameters.n_synapse_types
        muls, adds, exps, cmps = 0, 0, 0, 1  # threshold compare
        if Feature.LID in f:
            adds += 2
            cmps += 1  # leak clamp
        else:
            muls += 1  # eps_m * drive
            adds += 2
        for _ in range(n_types):
            if Feature.COBA in f:
                muls += 3
                adds += 3
            elif Feature.COBE in f:
                muls += 1
                adds += 2
            else:
                adds += 1
            if Feature.REV in f:
                muls += 1
                adds += 1
        if Feature.QDI in f:
            muls += 2
            adds += 2
        if Feature.EXI in f:
            muls += 2
            adds += 2
            exps += 1
        if Feature.SBT in f:
            muls += 3
            adds += 3
        elif Feature.ADT in f:
            muls += 1
            adds += 1
        if Feature.RR in f:
            muls += 4
            adds += 5
        if Feature.AR in f:
            adds += 1
            cmps += 1
        return {"mul": muls, "add": adds, "exp": exps, "cmp": cmps}
