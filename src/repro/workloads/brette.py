"""Brette et al. [28]: the simulator-review benchmark network.

Table I row: 2.4 K neurons, 2.4 M synapses, DLIF (conductance-based
LIF with reversal voltages), integrated with RKF45. The underlying
network is the classic COBA benchmark of the Brette et al. simulator
review — 80/20 random connectivity with conductance synapses.
"""

from __future__ import annotations

from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="Brette et al.",
    paper_neurons=2_400,
    paper_synapses=2_400_000,
    model_name="DLIF",
    solver="RKF45",
    framework="NEST",
    description="COBA benchmark network from the simulator review",
)


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the Brette et al. network at the given scale."""
    return build_ei_network(
        SPEC,
        scale,
        seed,
        exc_weight=0.012,
        inh_weight=0.10,  # positive: inhibition acts through v_g[1] < 0
        stimulus_rate_hz=300.0,
        stimulus_weight=0.02,
    )
