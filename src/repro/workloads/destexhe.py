"""Destexhe [30]: self-sustained irregular states and Up/Down states.

Two Table I rows come from this work, both using the adaptive
exponential integrate-and-fire model with RKF45:

* **Destexhe-LTS** — 500 neurons, 20 K synapses. A thalamocortical
  network whose inhibitory population contains low-threshold-spiking
  (LTS) cells: stronger adaptation coupling sustains rebound activity.
* **Destexhe-UpDown** — 2.5 K neurons, 100 K synapses, "a variation of
  AdEx": large slow adaptation makes the network alternate between
  active Up states and silent Down states.

Both use three synapse types (AMPA, NMDA, GABA — the paper's example
of SNNs with more than two types), which is also what makes their
folded-Flexon microprograms long enough that the single-cycle baseline
Flexon wins on latency for exactly these two workloads (Section VI-C).
"""

from __future__ import annotations

from repro.models.base import ModelParameters
from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

LTS_SPEC = WorkloadSpec(
    name="Destexhe-LTS",
    paper_neurons=500,
    paper_synapses=20_000,
    model_name="AdEx",
    solver="RKF45",
    framework="NEST",
    n_synapse_types=3,
    description="thalamocortical network with LTS interneurons",
)

UPDOWN_SPEC = WorkloadSpec(
    name="Destexhe-UpDown",
    paper_neurons=2_500,
    paper_synapses=100_000,
    model_name="AdEx",
    solver="RKF45",
    framework="NEST",
    n_synapse_types=3,
    description="AdEx variation alternating Up and Down states",
)


def _adex_parameters(tau_w: float, a: float, b: float) -> ModelParameters:
    return ModelParameters(
        tau=20e-3,
        n_synapse_types=3,
        tau_g=(5e-3, 100e-3, 10e-3),  # AMPA, NMDA, GABA
        v_g=(4.33, 4.33, -1.0),
        delta_t=0.133,
        v_theta=2.0,
        tau_w=tau_w,
        a=a,
        v_w=0.0,
        b=b,
        t_ref=2.5e-3,
    )


def build_lts(scale: float = 1.0, seed: int = 0) -> Network:
    """Destexhe-LTS: rebound-prone AdEx with strong subthreshold a."""
    return build_ei_network(
        LTS_SPEC,
        scale,
        seed,
        exc_weight=0.02,
        inh_weight=0.40,
        stimulus_rate_hz=400.0,
        stimulus_weight=0.18,
        parameters=_adex_parameters(tau_w=200e-3, a=-0.08, b=0.05),
    )


def build_updown(scale: float = 1.0, seed: int = 0) -> Network:
    """Destexhe-UpDown: slow, strong spike-triggered adaptation."""
    return build_ei_network(
        UPDOWN_SPEC,
        scale,
        seed,
        exc_weight=0.04,
        inh_weight=0.20,
        stimulus_rate_hz=250.0,
        stimulus_weight=0.09,
        parameters=_adex_parameters(tau_w=500e-3, a=-0.02, b=0.12),
    )
