"""Nowotny et al. [33]: insect olfactory one-shot odour recognition.

Table I row: 1,220 neurons, 202 K synapses, Izhikevich model, GeNN
("GPU" note, forward Euler). The model is the antennal-lobe /
mushroom-body circuit: a projection-neuron population fans out onto a
larger Kenyon-cell population with strong lateral inhibition, which we
capture as an asymmetric two-population network with dense
feed-forward divergence.
"""

from __future__ import annotations

import numpy as np

from repro.models.registry import create_model
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus
from repro.workloads.builders import DT
from repro.workloads.spec import WorkloadSpec, scaled_probability

SPEC = WorkloadSpec(
    name="Nowotny et al.",
    paper_neurons=1_220,
    paper_synapses=202_000,
    model_name="Izhikevich",
    solver="Euler",
    framework="GeNN",
    description="olfactory antennal-lobe / mushroom-body circuit",
)


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the Nowotny et al. network at the given scale."""
    rng = np.random.default_rng(seed)
    network = Network(SPEC.name)
    n_total = SPEC.scaled_neurons(scale)
    # ~1:5 projection-neuron : Kenyon-cell split, plus inhibition.
    n_pn = max(10, n_total // 6)
    n_kc = max(20, n_total - 2 * n_pn)
    n_ln = max(5, n_total - n_pn - n_kc)
    pn = network.add_population("pn", n_pn, create_model(SPEC.model_name))
    network.add_population("kc", n_kc, create_model(SPEC.model_name))
    network.add_population("ln", n_ln, create_model(SPEC.model_name))
    p = scaled_probability(SPEC, scale)
    # Dense feed-forward divergence PN -> KC carries most synapses.
    network.connect(
        "pn", "kc", probability=min(1.0, 4 * p), weight=0.03,
        syn_type=0, delay_steps=5, delay_jitter=10, rng=rng,
    )
    network.connect(
        "pn", "ln", probability=min(1.0, 2 * p), weight=0.03,
        syn_type=0, delay_steps=5, delay_jitter=5, rng=rng,
    )
    # Lateral inhibition from LNs onto both PN and KC layers.
    network.connect(
        "ln", "pn", probability=min(1.0, 2 * p), weight=0.15,
        syn_type=1, delay_steps=5, delay_jitter=5, rng=rng,
    )
    network.connect(
        "ln", "kc", probability=min(1.0, 2 * p), weight=0.15,
        syn_type=1, delay_steps=5, delay_jitter=5, rng=rng,
    )
    # Odour input drives the projection neurons.
    network.add_stimulus(
        PoissonStimulus(
            pn, rate_hz=500.0, weight=0.05, dt=DT, syn_type=0, n_sources=15
        )
    )
    return network
