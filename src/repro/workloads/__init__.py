"""The ten SNN workloads of Table I.

Each workload module builds the network of one prior-work SNN: the same
neuron model, ODE solver, excitatory/inhibitory structure and
neuron:synapse ratio as the paper's Table I row. Sizes are *scalable*
(``scale=1.0`` reproduces the paper's counts; smaller scales keep CI
fast) — the experiment harnesses measure per-neuron/per-synapse rates
at a reduced scale and evaluate the cost models at full scale.
"""

from repro.workloads.spec import WorkloadSpec, validate_scale
from repro.workloads.registry import (
    WORKLOADS,
    build_workload,
    get_spec,
    workload_names,
)

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "get_spec",
    "validate_scale",
    "workload_names",
]
