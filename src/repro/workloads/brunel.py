"""Brunel [29]: sparsely connected excitatory/inhibitory network.

Table I row: 5 K neurons, 2.5 M synapses, PyNN's IF_psc_alpha
(alpha-shaped post-synaptic currents), forward Euler. Brunel's network
is the canonical 80/20 sparse random network whose regimes (regular/
irregular, synchronous/asynchronous) depend on the inhibition-to-
excitation ratio g; we build the g = 5 inhibition-dominated regime.
"""

from __future__ import annotations

from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="Brunel",
    paper_neurons=5_000,
    paper_synapses=2_500_000,
    model_name="IF_psc_alpha",
    solver="Euler",
    framework="NEST",
    description="sparse random E/I network, inhibition-dominated regime",
)


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the Brunel network at the given scale."""
    # IF_psc_alpha has no reversal voltages: inhibition needs negative
    # weights (the alpha-current kernel adds g directly to the drive).
    # Strong individual synapses with a weak-mean external drive put
    # the network in Brunel's fluctuation-driven asynchronous-irregular
    # state (CV of the ISI ~ 1, low population synchrony) — verified by
    # tests/network/test_analysis.py.
    return build_ei_network(
        SPEC,
        scale,
        seed,
        exc_weight=0.4,
        inh_weight=-2.0,  # g = 5
        stimulus_rate_hz=100.0,
        stimulus_weight=0.4,
        n_stimulus_sources=5,
    )
