"""Registry of the ten Table I workloads."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import UnknownModelError
from repro.network.network import Network
from repro.workloads import brette, brunel, destexhe, izhikevich_net
from repro.workloads import muller, nowotny, potjans, vogels
from repro.workloads.spec import WorkloadSpec, validate_scale

Builder = Callable[[float, int], Network]

#: name -> (spec, builder), in Table I order.
WORKLOADS: Dict[str, Tuple[WorkloadSpec, Builder]] = {
    "Brette et al.": (brette.SPEC, brette.build),
    "Brunel": (brunel.SPEC, brunel.build),
    "Destexhe-LTS": (destexhe.LTS_SPEC, destexhe.build_lts),
    "Destexhe-UpDown": (destexhe.UPDOWN_SPEC, destexhe.build_updown),
    "Izhikevich": (izhikevich_net.SPEC, izhikevich_net.build),
    "Muller et al.": (muller.SPEC, muller.build),
    "Nowotny et al.": (nowotny.SPEC, nowotny.build),
    "Potjans-Diesmann": (potjans.SPEC, potjans.build),
    "Vogels et al.": (vogels.VOGELS_SPEC, vogels.build_vogels),
    "Vogels-Abbott": (vogels.VOGELS_ABBOTT_SPEC, vogels.build_vogels_abbott),
}


def workload_names() -> List[str]:
    """Workload names in Table I order."""
    return list(WORKLOADS)


def get_spec(name: str) -> WorkloadSpec:
    """The Table I spec for a workload name."""
    try:
        return WORKLOADS[name][0]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise UnknownModelError(
            f"unknown workload {name!r}; known: {known}"
        ) from None


def build_workload(name: str, scale: float = 1.0, seed: int = 0) -> Network:
    """Build one Table I workload at the given scale."""
    try:
        _, builder = WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise UnknownModelError(
            f"unknown workload {name!r}; known: {known}"
        ) from None
    return builder(validate_scale(scale), seed)
