"""Shared topology builders for the Table I workloads.

Most of the collected SNNs follow the cortical 80/20
excitatory/inhibitory recipe with random connectivity and Poisson
background drive; :func:`build_ei_network` captures that shape. The
few structured workloads (Potjans-Diesmann's layered microcircuit)
build their own topology on top of the same primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import ModelParameters
from repro.models.registry import create_model
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus
from repro.workloads.spec import WorkloadSpec, scaled_probability

#: Default simulation time step (the paper's 0.1 ms).
DT = 1e-4


def build_ei_network(
    spec: WorkloadSpec,
    scale: float,
    seed: int,
    exc_weight: float,
    inh_weight: float,
    stimulus_rate_hz: float,
    stimulus_weight: float,
    parameters: Optional[ModelParameters] = None,
    exc_fraction: float = 0.8,
    delay_steps: int = 10,
    delay_jitter: int = 10,
    n_stimulus_sources: int = 10,
) -> Network:
    """A standard 80/20 excitatory/inhibitory random network.

    ``exc_weight``/``inh_weight`` are in the model's input units
    (currents for CUB models, conductance jumps otherwise);
    ``inh_weight`` is applied on synapse type 1.
    """
    rng = np.random.default_rng(seed)
    network = Network(spec.name)
    n_total = spec.scaled_neurons(scale)
    n_exc = max(10, int(round(n_total * exc_fraction)))
    n_inh = max(5, n_total - n_exc)

    def make_model():
        return create_model(spec.model_name, parameters=parameters)

    exc = network.add_population("exc", n_exc, make_model())
    network.add_population("inh", n_inh, make_model())
    p = scaled_probability(spec, scale)
    for pre, post in (("exc", "exc"), ("exc", "inh")):
        network.connect(
            pre,
            post,
            probability=p,
            weight=exc_weight,
            weight_std=exc_weight * 0.1,
            syn_type=0,
            delay_steps=delay_steps,
            delay_jitter=delay_jitter,
            rng=rng,
        )
    for pre, post in (("inh", "exc"), ("inh", "inh")):
        network.connect(
            pre,
            post,
            probability=p,
            weight=inh_weight,
            weight_std=abs(inh_weight) * 0.1,
            syn_type=1,
            delay_steps=delay_steps,
            delay_jitter=delay_jitter,
            rng=rng,
        )
    network.add_stimulus(
        PoissonStimulus(
            exc,
            rate_hz=stimulus_rate_hz,
            weight=stimulus_weight,
            dt=DT,
            syn_type=0,
            n_sources=n_stimulus_sources,
        )
    )
    return network
