"""Potjans-Diesmann [34]: the cell-type-specific cortical microcircuit.

Table I row: 8 K neurons, 3 M synapses, DSRM0, forward Euler. The full
model has eight populations — excitatory and inhibitory cells in
layers 2/3, 4, 5 and 6 — with a measured layer-to-layer connectivity
matrix. We reproduce the eight-population structure with the
connectivity matrix condensed from the original paper (probabilities
rescaled to hit Table I's synapse count at scale 1.0) and layer-specific
external drive.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.models.registry import create_model
from repro.network.network import Network
from repro.network.stimulus import PoissonStimulus
from repro.workloads.builders import DT
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="Potjans-Diesmann",
    paper_neurons=8_000,
    paper_synapses=3_000_000,
    model_name="DSRM0",
    solver="Euler",
    framework="NEST",
    description="eight-population layered cortical microcircuit",
)

#: Population share of each layer group (condensed from the original).
LAYER_FRACTIONS: Dict[str, float] = {
    "L23e": 0.268, "L23i": 0.076,
    "L4e": 0.283, "L4i": 0.071,
    "L5e": 0.063, "L5i": 0.014,
    "L6e": 0.186, "L6i": 0.039,
}

#: Relative connection probabilities (pre -> post), condensed from the
#: Potjans-Diesmann Table 5 map; rescaled at build time so the total
#: synapse count matches the Table I row.
_P = {
    ("L23e", "L23e"): 0.101, ("L23e", "L23i"): 0.135,
    ("L23i", "L23e"): 0.169, ("L23i", "L23i"): 0.137,
    ("L4e", "L23e"): 0.088, ("L4e", "L4e"): 0.050, ("L4e", "L4i"): 0.079,
    ("L4i", "L4e"): 0.160, ("L4i", "L4i"): 0.160,
    ("L23e", "L5e"): 0.100, ("L5e", "L5e"): 0.083, ("L5e", "L5i"): 0.060,
    ("L5i", "L5e"): 0.373, ("L5i", "L5i"): 0.316,
    ("L5e", "L6e"): 0.057, ("L6e", "L6e"): 0.040, ("L6e", "L6i"): 0.066,
    ("L6i", "L6e"): 0.225, ("L6i", "L6i"): 0.144,
    ("L6e", "L4e"): 0.032, ("L4e", "L5e"): 0.051,
}


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the layered microcircuit at the given scale."""
    rng = np.random.default_rng(seed)
    network = Network(SPEC.name)
    n_total = SPEC.scaled_neurons(scale)
    sizes = {
        layer: max(5, int(round(fraction * n_total)))
        for layer, fraction in LAYER_FRACTIONS.items()
    }
    for layer, size in sizes.items():
        network.add_population(layer, size, create_model(SPEC.model_name))

    # Rescale the probability map so total synapses match the spec.
    expected = sum(
        p * sizes[pre] * sizes[post] for (pre, post), p in _P.items()
    )
    target = SPEC.scaled_synapses(scale)
    rescale = min(4.0, target / max(1.0, expected))
    for (pre, post), p in _P.items():
        inhibitory = pre.endswith("i")
        network.connect(
            pre,
            post,
            probability=min(1.0, p * rescale),
            # DSRM0 has no reversal voltages: inhibition is negative.
            weight=-0.06 if inhibitory else 0.015,
            syn_type=1 if inhibitory else 0,
            delay_steps=8,
            delay_jitter=10,
            rng=rng,
        )

    # Layer-specific thalamic/background drive (L4 strongest).
    for layer, rate in (("L4e", 900.0), ("L4i", 900.0), ("L23e", 500.0),
                        ("L6e", 500.0)):
        network.add_stimulus(
            PoissonStimulus(
                network.populations[layer],
                rate_hz=rate,
                weight=0.02,
                dt=DT,
                syn_type=0,
                n_sources=20,
            )
        )
    return network
