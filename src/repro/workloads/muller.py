"""Muller et al. [32]: high-conductance-state microcircuits.

Table I row: 1,728 neurons, 762 K synapses, PyNN's
IF_cond_exp_gsfa_grr (conductance LIF with spike-frequency adaptation
and relative refractory), RKF45. The model studies cortical neurons in
the high-conductance regime, driven by sustained synaptic bombardment —
hence the strong Poisson background here.
"""

from __future__ import annotations

from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="Muller et al.",
    paper_neurons=1_728,
    paper_synapses=762_000,
    model_name="IF_cond_exp_gsfa_grr",
    solver="RKF45",
    framework="NEST",
    description="high-conductance-state cortical microcircuit",
)


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the Muller et al. network at the given scale."""
    return build_ei_network(
        SPEC,
        scale,
        seed,
        exc_weight=0.015,
        inh_weight=0.12,
        stimulus_rate_hz=600.0,
        stimulus_weight=0.02,
        n_stimulus_sources=25,
    )
