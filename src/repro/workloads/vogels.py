"""The two Vogels workloads of Table I.

* **Vogels et al. [35]** — 10 K neurons, 1.92 M synapses, DLIF, RKF45:
  the inhibitory-plasticity network in which inhibition is tuned to
  balance excitation (we build it at its balanced operating point).
* **Vogels-Abbott [36]** — 4 K neurons, 320 K synapses, DLIF, RKF45:
  the signal-propagation/logic-gating network, a sparse conductance-
  based E/I network in the self-sustained irregular regime.
"""

from __future__ import annotations

from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

VOGELS_SPEC = WorkloadSpec(
    name="Vogels et al.",
    paper_neurons=10_000,
    paper_synapses=1_920_000,
    model_name="DLIF",
    solver="RKF45",
    framework="NEST",
    description="inhibition-balanced sensory-pathway network",
)

VOGELS_ABBOTT_SPEC = WorkloadSpec(
    name="Vogels-Abbott",
    paper_neurons=4_000,
    paper_synapses=320_000,
    model_name="DLIF",
    solver="RKF45",
    framework="NEST",
    description="signal propagation and logic gating network",
)


def build_vogels(scale: float = 1.0, seed: int = 0) -> Network:
    """Vogels et al.: balanced E/I with strong tuned inhibition."""
    return build_ei_network(
        VOGELS_SPEC,
        scale,
        seed,
        exc_weight=0.012,
        inh_weight=0.15,
        stimulus_rate_hz=350.0,
        stimulus_weight=0.02,
        n_stimulus_sources=15,
    )


def build_vogels_abbott(scale: float = 1.0, seed: int = 0) -> Network:
    """Vogels-Abbott: sparse self-sustained irregular activity."""
    return build_ei_network(
        VOGELS_ABBOTT_SPEC,
        scale,
        seed,
        exc_weight=0.02,
        inh_weight=0.18,
        stimulus_rate_hz=250.0,
        stimulus_weight=0.03,
        n_stimulus_sources=10,
    )
