"""Workload specifications: the rows of Table I."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def validate_scale(scale) -> float:
    """``scale`` as a positive finite float, or a field-level error.

    Every scaled-build entry point funnels through this, so a workload
    built with ``scale="0.1"`` or ``scale=-1`` fails with a
    :class:`~repro.errors.ConfigurationError` naming the field instead
    of a ``TypeError`` from an arithmetic comparison deep in a builder.
    """
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise ConfigurationError(f"scale must be a number, got {scale!r}")
    if not math.isfinite(scale) or scale <= 0:
        raise ConfigurationError(
            f"scale must be positive and finite, got {scale}"
        )
    return float(scale)


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table I row: structure, neuron model, solver, framework."""

    name: str
    paper_neurons: int
    paper_synapses: int
    model_name: str
    solver: str  #: "Euler" or "RKF45" (the Notes column)
    framework: str  #: "NEST" (CPU) or "GeNN" (the two GPU rows)
    n_synapse_types: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"workload name must be a non-empty string, got {self.name!r}"
            )
        for key in ("paper_neurons", "paper_synapses", "n_synapse_types"):
            value = getattr(self, key)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"workload {self.name!r}: {key} must be an integer, "
                    f"got {value!r}"
                )
        if self.paper_neurons <= 0 or self.paper_synapses <= 0:
            raise ConfigurationError(
                f"workload {self.name!r}: paper neuron/synapse counts "
                f"must be positive, got {self.paper_neurons} / "
                f"{self.paper_synapses}"
            )
        if self.n_synapse_types < 1:
            raise ConfigurationError(
                f"workload {self.name!r}: n_synapse_types must be >= 1, "
                f"got {self.n_synapse_types}"
            )
        if self.solver not in ("Euler", "RKF45"):
            raise ConfigurationError(
                f"workload {self.name!r}: unknown solver {self.solver!r} "
                "(choose 'Euler' or 'RKF45')"
            )
        if self.framework not in ("NEST", "GeNN"):
            raise ConfigurationError(
                f"workload {self.name!r}: unknown framework "
                f"{self.framework!r} (choose 'NEST' or 'GeNN')"
            )

    def scaled_neurons(self, scale: float) -> int:
        """Neuron count at the given scale (>= 20 to stay meaningful)."""
        scale = validate_scale(scale)
        return max(20, int(round(self.paper_neurons * scale)))

    def scaled_synapses(self, scale: float) -> int:
        """Synapse count at the given scale.

        Synapses scale with the *square* of the neuron scale so the
        connection probability — and hence per-neuron input statistics
        and firing rates — stays constant across scales.
        """
        n_ratio = self.scaled_neurons(scale) / self.paper_neurons
        return max(10, int(round(self.paper_synapses * n_ratio * n_ratio)))

    def connection_probability(self) -> float:
        """Mean pairwise connection probability implied by the row."""
        return min(1.0, self.paper_synapses / self.paper_neurons**2)

    def fan_in(self) -> float:
        """Average synapses per neuron."""
        return self.paper_synapses / self.paper_neurons

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.paper_neurons} neurons, "
            f"{self.paper_synapses} synapses, {self.model_name} "
            f"({self.solver}, {self.framework})"
        )


def scaled_probability(spec: WorkloadSpec, scale: float) -> float:
    """Connection probability to use at a given scale.

    Keeping p constant preserves per-neuron fan-in *fraction*; for very
    small scales the probability is floored so networks stay connected.
    """
    p = spec.connection_probability()
    return min(1.0, max(p, 2.0 / math.sqrt(spec.scaled_neurons(scale))))
