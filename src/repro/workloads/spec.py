"""Workload specifications: the rows of Table I."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table I row: structure, neuron model, solver, framework."""

    name: str
    paper_neurons: int
    paper_synapses: int
    model_name: str
    solver: str  #: "Euler" or "RKF45" (the Notes column)
    framework: str  #: "NEST" (CPU) or "GeNN" (the two GPU rows)
    n_synapse_types: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if self.paper_neurons <= 0 or self.paper_synapses <= 0:
            raise ConfigurationError("paper counts must be positive")
        if self.solver not in ("Euler", "RKF45"):
            raise ConfigurationError(f"unknown solver {self.solver!r}")
        if self.framework not in ("NEST", "GeNN"):
            raise ConfigurationError(f"unknown framework {self.framework!r}")

    def scaled_neurons(self, scale: float) -> int:
        """Neuron count at the given scale (>= 20 to stay meaningful)."""
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        return max(20, int(round(self.paper_neurons * scale)))

    def scaled_synapses(self, scale: float) -> int:
        """Synapse count at the given scale.

        Synapses scale with the *square* of the neuron scale so the
        connection probability — and hence per-neuron input statistics
        and firing rates — stays constant across scales.
        """
        n_ratio = self.scaled_neurons(scale) / self.paper_neurons
        return max(10, int(round(self.paper_synapses * n_ratio * n_ratio)))

    def connection_probability(self) -> float:
        """Mean pairwise connection probability implied by the row."""
        return min(1.0, self.paper_synapses / self.paper_neurons**2)

    def fan_in(self) -> float:
        """Average synapses per neuron."""
        return self.paper_synapses / self.paper_neurons

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.paper_neurons} neurons, "
            f"{self.paper_synapses} synapses, {self.model_name} "
            f"({self.solver}, {self.framework})"
        )


def scaled_probability(spec: WorkloadSpec, scale: float) -> float:
    """Connection probability to use at a given scale.

    Keeping p constant preserves per-neuron fan-in *fraction*; for very
    small scales the probability is floored so networks stay connected.
    """
    p = spec.connection_probability()
    return min(1.0, max(p, 2.0 / math.sqrt(spec.scaled_neurons(scale))))
