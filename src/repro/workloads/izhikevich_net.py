"""Izhikevich [31]: the pulse-coupled 10 K network of the 2003 paper.

Table I row: 10 K neurons, 10 M synapses, Izhikevich's simple model,
simulated with GeNN (the "GPU" note) — i.e. forward Euler. The original
network mixes regular-spiking excitatory cells with fast-spiking
inhibitory cells at 80/20 and dense random coupling (p = 0.1).
"""

from __future__ import annotations

from repro.network.network import Network
from repro.workloads.builders import build_ei_network
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="Izhikevich",
    paper_neurons=10_000,
    paper_synapses=10_000_000,
    model_name="Izhikevich",
    solver="Euler",
    framework="GeNN",
    description="pulse-coupled network from Izhikevich (2003)",
)


def build(scale: float = 1.0, seed: int = 0) -> Network:
    """Build the Izhikevich network at the given scale."""
    return build_ei_network(
        SPEC,
        scale,
        seed,
        exc_weight=0.02,
        inh_weight=0.12,
        stimulus_rate_hz=400.0,
        stimulus_weight=0.04,
        n_stimulus_sources=15,
    )
