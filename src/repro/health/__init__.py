"""Simulation health monitoring: detectors, alert rules, resources.

The layer that turns the observability plane from a dashboard into a
watchdog: :mod:`~repro.health.detectors` classify the live run's signal
streams, :mod:`~repro.health.alerts` runs declarative rules with a
pending→firing→resolved state machine over them, and
:mod:`~repro.health.resources` samples per-process RSS/CPU/FDs for both
the local exposition and the worker heartbeat protocol.
"""

from repro.health.alerts import (
    ALERTS_SCHEMA,
    Alert,
    AlertManager,
    AlertRule,
    HealthHook,
    HealthMonitor,
    load_alert_rules,
    parse_alert_rules,
)
from repro.health.detectors import (
    EventMonitor,
    EwmaBaseline,
    HealthSignal,
    SaturationDetector,
    SpikeRateDetector,
    StragglerDetector,
)
from repro.health.resources import (
    ResourceSampler,
    declare_process_metrics,
    read_cpu_seconds,
    read_open_fds,
    read_rss_bytes,
)

__all__ = [
    "ALERTS_SCHEMA",
    "Alert",
    "AlertManager",
    "AlertRule",
    "EventMonitor",
    "EwmaBaseline",
    "HealthHook",
    "HealthMonitor",
    "HealthSignal",
    "ResourceSampler",
    "SaturationDetector",
    "SpikeRateDetector",
    "StragglerDetector",
    "declare_process_metrics",
    "load_alert_rules",
    "parse_alert_rules",
    "read_cpu_seconds",
    "read_open_fds",
    "read_rss_bytes",
]
