"""The alert rules engine: declarative rules over live health signals.

An :class:`AlertRule` names a condition — either a detector signal
(``detector`` + optional ``kind``/``subject``) or a metric selector
(``metric`` + optional ``labels``) compared against a ``threshold`` —
and the :class:`AlertManager` runs the Prometheus-style state machine
over it::

    inactive --condition true--> pending --held for_seconds--> firing
       ^                            |                             |
       |                 condition false                 condition false
       +----------------------------+                             v
                                                              resolved

``pending`` debounces (a condition must hold ``for_seconds`` before
anyone is paged); ``firing``/``resolved`` transitions publish ``alert``
events on the SSE bus, update the status board's ``alerts`` block
(rendered by ``repro top``), bump the ``alerts_*`` metrics, and are
kept (bounded) in each alert's transition history so ``GET /alerts``
can show that a rule fired *and* recovered.

Rules load from a JSON spec (``repro run/sweep --alerts SPEC``); see
``examples/alerts.json`` and :func:`parse_alert_rules` for the format.

Two drivers evaluate the manager:

* :class:`HealthHook` — a :class:`~repro.engine.hooks.PhaseHook` for
  single-process runs, following ``ServeHook``'s hot-loop discipline
  (one deque-free counter bump per step; detectors, registry reads,
  and the state machine run at most once per ``publish_interval``);
* :class:`HealthMonitor` — a clock-throttled driver for contexts with
  no phase stream: the shard coordinator ticks it from its barrier
  loop, and ``repro sweep`` runs it on a background thread.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.hooks import PHASES, PhaseHook
from repro.errors import ConfigurationError
from repro.health.detectors import (
    EventMonitor,
    HealthSignal,
    SaturationDetector,
    SpikeRateDetector,
    StragglerDetector,
)
from repro.health.resources import ResourceSampler

__all__ = [
    "ALERTS_SCHEMA",
    "Alert",
    "AlertManager",
    "AlertRule",
    "HealthHook",
    "HealthMonitor",
    "load_alert_rules",
    "parse_alert_rules",
]

ALERTS_SCHEMA = "repro-alerts/1"

#: Seconds between health evaluations (matches ServeHook's cadence).
DEFAULT_EVAL_INTERVAL = 0.25

#: Transition-history entries kept per alert.
HISTORY_LIMIT = 16

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting condition.

    Exactly one of ``detector`` / ``metric`` selects the source:

    * detector rules match :class:`HealthSignal` streams — optionally
      narrowed by ``kind`` (the classification) and ``subject``; with
      a ``threshold`` the matching signal's value is compared with
      ``op``, without one the signal's presence is the condition;
    * metric rules read one family from the run's
      :class:`~repro.telemetry.registry.MetricsRegistry` (children
      matched by the ``labels`` subset are summed; histograms
      contribute their observation count) and always compare
      ``op``/``threshold``.
    """

    name: str
    detector: str = ""
    kind: str = ""
    subject: str = ""
    metric: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    op: str = ">"
    threshold: Optional[float] = None
    for_seconds: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("alert rule needs a name")
        if bool(self.detector) == bool(self.metric):
            raise ConfigurationError(
                f"alert rule {self.name!r} must select exactly one of "
                f"'detector' or 'metric'"
            )
        if self.op not in _OPS:
            raise ConfigurationError(
                f"alert rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {sorted(_OPS)})"
            )
        if self.metric and self.threshold is None:
            raise ConfigurationError(
                f"alert rule {self.name!r}: metric rules need a threshold"
            )
        if self.for_seconds < 0:
            raise ConfigurationError(
                f"alert rule {self.name!r}: for_seconds must be >= 0"
            )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "op": self.op,
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
        }
        if self.detector:
            out["detector"] = self.detector
            if self.kind:
                out["kind"] = self.kind
            if self.subject:
                out["subject"] = self.subject
        else:
            out["metric"] = self.metric
            if self.labels:
                out["labels"] = dict(self.labels)
        if self.description:
            out["description"] = self.description
        return out


def parse_alert_rules(document) -> List[AlertRule]:
    """Build rules from a parsed ``--alerts`` JSON document.

    Accepts either ``{"rules": [...]}`` (optionally carrying the
    ``repro-alerts/1`` schema stamp) or a bare rule list. Unknown keys
    are rejected — a typoed ``for_second`` must not silently disarm a
    rule someone is counting on.
    """
    if isinstance(document, dict):
        schema = document.get("schema")
        if schema is not None and schema != ALERTS_SCHEMA:
            raise ConfigurationError(
                f"unsupported alerts schema {schema!r} "
                f"(expected {ALERTS_SCHEMA!r})"
            )
        rules_raw = document.get("rules")
    else:
        rules_raw = document
    if not isinstance(rules_raw, list) or not rules_raw:
        raise ConfigurationError(
            "alerts spec must carry a non-empty 'rules' list"
        )
    known = {
        "name", "detector", "kind", "subject", "metric", "labels",
        "op", "threshold", "for_seconds", "severity", "description",
    }
    rules: List[AlertRule] = []
    for raw in rules_raw:
        if not isinstance(raw, dict):
            raise ConfigurationError(f"alert rule must be an object: {raw!r}")
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"alert rule {raw.get('name', '?')!r} has unknown "
                f"key(s): {sorted(unknown)}"
            )
        labels = raw.get("labels") or {}
        if not isinstance(labels, dict):
            raise ConfigurationError(
                f"alert rule {raw.get('name', '?')!r}: labels must be "
                f"an object"
            )
        threshold = raw.get("threshold")
        rules.append(
            AlertRule(
                name=str(raw.get("name", "")),
                detector=str(raw.get("detector", "")),
                kind=str(raw.get("kind", "")),
                subject=str(raw.get("subject", "")),
                metric=str(raw.get("metric", "")),
                labels=tuple(sorted(
                    (str(k), str(v)) for k, v in labels.items()
                )),
                op=str(raw.get("op", ">")),
                threshold=None if threshold is None else float(threshold),
                for_seconds=float(raw.get("for_seconds", 0.0)),
                severity=str(raw.get("severity", "warning")),
                description=str(raw.get("description", "")),
            )
        )
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate alert rule names in {names}")
    return rules


def load_alert_rules(path: str) -> List[AlertRule]:
    """Load and validate an ``--alerts`` JSON spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ConfigurationError(
            f"cannot read alerts spec {path!r}: {error}"
        ) from error
    except ValueError as error:
        raise ConfigurationError(
            f"alerts spec {path!r} is not valid JSON: {error}"
        ) from error
    return parse_alert_rules(document)


@dataclass
class Alert:
    """The live state of one rule against one subject."""

    rule: str
    subject: str
    severity: str
    state: str = "pending"
    value: float = 0.0
    message: str = ""
    #: Evaluation-clock timestamps of the lifecycle edges.
    since: float = 0.0
    fired_at: Optional[float] = None
    resolved_at: Optional[float] = None
    #: Bounded ``(state, at, value)`` transition history.
    history: List[dict] = field(default_factory=list)

    def push(self, state: str, at: float, value: float) -> None:
        self.state = state
        self.history.append({"state": state, "at": at, "value": value})
        del self.history[:-HISTORY_LIMIT]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "severity": self.severity,
            "state": self.state,
            "value": self.value,
            "message": self.message,
            "since": self.since,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "history": list(self.history),
        }


class AlertManager:
    """Runs every rule's state machine over each evaluation's inputs.

    Thread-safe: the sharded path evaluates from the coordinator loop
    while HTTP threads read :meth:`document`, and the sweep path
    evaluates from a background thread.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule],
        status=None,
        bus=None,
        metrics=None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate alert rule names: {names}")
        self.rules = tuple(rules)
        self.status = status
        self.bus = bus
        self.metrics = metrics
        self._lock = threading.Lock()
        self._alerts: Dict[Tuple[str, str], Alert] = {}
        self._fired_rules: List[str] = []

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self,
        now: float,
        signals: Sequence[HealthSignal] = (),
        metrics=None,
    ) -> None:
        """Advance every rule's state machine one evaluation.

        ``now`` is the caller's clock (monotonic in production, driven
        directly in tests); ``signals`` are the detectors' current
        findings; ``metrics`` is the registry metric rules read from.
        """
        transitions = []
        with self._lock:
            for rule in self.rules:
                conditions = list(self._conditions(rule, signals, metrics))
                for subject, value, message in conditions:
                    transitions += self._advance(
                        rule, subject, True, value, message, now
                    )
                # Any tracked alert of this rule whose condition did
                # not reappear this round is now false.
                active_subjects = {s for s, _v, _m in conditions}
                for (rule_name, subject), alert in list(self._alerts.items()):
                    if rule_name != rule.name:
                        continue
                    if subject in active_subjects:
                        continue
                    if alert.state in ("pending", "firing"):
                        transitions += self._advance(
                            rule, subject, False, alert.value, alert.message,
                            now,
                        )
        self._publish(transitions)

    def _conditions(self, rule, signals, metrics):
        """Yield ``(subject, value, message)`` for every true condition."""
        if rule.detector:
            for signal in signals:
                if signal.detector != rule.detector:
                    continue
                if rule.kind and signal.kind != rule.kind:
                    continue
                if rule.subject and signal.subject != rule.subject:
                    continue
                if rule.threshold is not None and not _OPS[rule.op](
                    signal.value, rule.threshold
                ):
                    continue
                yield signal.subject, signal.value, signal.message
            return
        if metrics is None:
            return
        value = metrics.value_of(rule.metric, dict(rule.labels))
        if value is None:
            return
        if _OPS[rule.op](value, rule.threshold):
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in rule.labels) + "}"
                if rule.labels
                else ""
            )
            yield (
                rule.metric,
                value,
                f"{rule.metric}{label_text} = {value:g} "
                f"{rule.op} {rule.threshold:g}",
            )

    @staticmethod
    def _transition(alert) -> dict:
        # Snapshot at transition time: a for_seconds=0 rule moves
        # pending -> firing within one evaluate, and publishing the
        # live Alert later would report both edges as "firing".
        return {
            "rule": alert.rule,
            "subject": alert.subject,
            "state": alert.state,
            "severity": alert.severity,
            "value": alert.value,
            "message": alert.message,
        }

    def _advance(self, rule, subject, condition, value, message, now):
        """One state-machine step for (rule, subject); returns transitions."""
        key = (rule.name, subject)
        alert = self._alerts.get(key)
        transitions = []
        if condition:
            if alert is None or alert.state == "resolved":
                alert = Alert(
                    rule=rule.name, subject=subject,
                    severity=rule.severity, since=now,
                    value=value, message=message,
                )
                alert.push("pending", now, value)
                self._alerts[key] = alert
                transitions.append(self._transition(alert))
            alert.value = value
            alert.message = message
            if (
                alert.state == "pending"
                and now - alert.since >= rule.for_seconds
            ):
                alert.fired_at = now
                alert.push("firing", now, value)
                self._fired_rules.append(rule.name)
                transitions.append(self._transition(alert))
        elif alert is not None:
            if alert.state == "pending":
                # Never fired: the debounce did its job; forget it.
                del self._alerts[key]
            elif alert.state == "firing":
                alert.resolved_at = now
                alert.push("resolved", now, value)
                transitions.append(self._transition(alert))
        return transitions

    # -- publishing --------------------------------------------------------

    def _publish(self, transitions) -> None:
        for edge in transitions:
            if self.bus is not None:
                self.bus.publish("alert", dict(edge))
            if self.metrics is not None and edge["state"] == "firing":
                self.metrics.counter(
                    "alerts_fired_total",
                    "Alert rules that transitioned to firing.",
                    {"rule": edge["rule"]},
                ).inc()
        if self.metrics is not None:
            counts = self.counts()
            self.metrics.gauge(
                "alerts_firing", "Alert instances currently firing."
            ).set(counts["firing"])
            self.metrics.gauge(
                "alerts_pending", "Alert instances pending their duration."
            ).set(counts["pending"])
        if self.status is not None:
            self.status.update(alerts=self.status_block())

    # -- views -------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {"pending": 0, "firing": 0, "resolved": 0}
        for alert in self._alerts.values():
            counts[alert.state] += 1
        return counts

    def status_block(self) -> dict:
        """The compact ``alerts`` block on ``/status`` / ``repro top``."""
        counts = self.counts()
        active = [
            f"[{a.severity}] {a.rule} ({a.subject}): {a.message}"
            for a in sorted(
                self._alerts.values(), key=lambda a: (a.rule, a.subject)
            )
            if a.state == "firing"
        ]
        return {
            "rules": len(self.rules),
            "pending": counts["pending"],
            "firing": counts["firing"],
            "resolved": counts["resolved"],
            "fired_total": len(self._fired_rules),
            "active": active[:8],
        }

    def document(self) -> dict:
        """The full ``GET /alerts`` document."""
        with self._lock:
            alerts = [
                self._alerts[key].to_dict() for key in sorted(self._alerts)
            ]
            return {
                "schema": ALERTS_SCHEMA,
                "rules": [rule.to_dict() for rule in self.rules],
                "counts": self.counts(),
                "fired_total": len(self._fired_rules),
                "alerts": alerts,
            }

    def summary(self) -> dict:
        """The compact summary stats-json and the ledger carry."""
        with self._lock:
            counts = self.counts()
            return {
                "rules": len(self.rules),
                "fired": sorted(set(self._fired_rules)),
                "fired_total": len(self._fired_rules),
                **counts,
            }


class HealthHook(PhaseHook):
    """Drives detectors + alert rules from a live simulator's run.

    Hot-loop discipline (the ServeHook contract): ``on_phase`` does one
    integer bump and one monotonic read per step, and bails unless the
    evaluation interval elapsed. The throttled evaluation reads the
    live spike recorder's per-population tallies (O(populations) int
    reads), the backend's reliability diagnostics, and the process
    resource sampler, then advances the alert state machines.
    """

    #: No per-population kernel spans needed: rates come from the
    #: spike recorder, not from timing.
    wants_population_spans = False

    def __init__(
        self,
        manager: AlertManager,
        simulator=None,
        metrics=None,
        publish_interval: float = DEFAULT_EVAL_INTERVAL,
        rate_detector: Optional[SpikeRateDetector] = None,
        saturation_detector: Optional[SaturationDetector] = None,
        event_monitor: Optional[EventMonitor] = None,
        resources: Optional[ResourceSampler] = None,
    ) -> None:
        self.manager = manager
        self.simulator = simulator
        self.metrics = metrics
        self.publish_interval = publish_interval
        self.rates = (
            rate_detector if rate_detector is not None else SpikeRateDetector()
        )
        self.saturation = (
            saturation_detector
            if saturation_detector is not None
            else SaturationDetector()
        )
        self.events = (
            event_monitor if event_monitor is not None else EventMonitor()
        )
        self.resources = (
            resources if resources is not None else ResourceSampler()
        )
        self._population_sizes: Dict[str, int] = {}
        self._spike_marks: Dict[str, int] = {}
        self._window_steps = 0
        self._last_eval = 0.0
        self._dt = 1e-4

    # -- PhaseHook callbacks ----------------------------------------------

    def on_run_start(self, network, n_steps: int) -> None:
        self._population_sizes = {
            name: population.n
            for name, population in network.populations.items()
        }
        self._spike_marks = {name: 0 for name in self._population_sizes}
        self._window_steps = 0
        self._last_eval = time.monotonic()
        if self.simulator is not None:
            self._dt = self.simulator.dt

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        if phase != PHASES[-1]:
            return
        self._window_steps += 1
        now = time.monotonic()
        if now - self._last_eval < self.publish_interval:
            return
        self._evaluate(now)

    def on_run_end(self, result) -> None:
        self._evaluate(time.monotonic(), result=result)
        result.alerts = self.manager.summary()

    # -- throttled evaluation ---------------------------------------------

    def _evaluate(self, now: float, result=None) -> None:
        window_steps = self._window_steps
        self._window_steps = 0
        self._last_eval = now
        self._observe_rates(window_steps)
        self._observe_reliability(result)
        if self.metrics is not None:
            self.resources.publish(self.metrics)
        signals = (
            self.rates.signals()
            + self.saturation.signals()
            + self.events.signals()
        )
        self.manager.evaluate(now, signals, metrics=self.metrics)

    def _observe_rates(self, window_steps: int) -> None:
        if window_steps <= 0 or self.simulator is None:
            return
        recorder = self.simulator.live_spikes
        if recorder is None:
            return
        window_seconds = window_steps * self._dt
        counts = recorder.counts()
        for name, n_neurons in self._population_sizes.items():
            total = counts.get(name, 0)
            delta = total - self._spike_marks.get(name, 0)
            self._spike_marks[name] = total
            if n_neurons <= 0:
                continue
            rate_hz = delta / (n_neurons * window_seconds)
            self.rates.observe(name, rate_hz)

    def _observe_reliability(self, result=None) -> None:
        if result is not None:
            diagnostics = result.diagnostics
            self.events.observe("hook-error", len(result.hook_errors))
        elif self.simulator is not None:
            diagnostics = self.simulator.collect_diagnostics()
        else:
            return
        for population, stats in diagnostics.saturation.items():
            self.saturation.observe(population, stats.total_clipped)
        self.events.observe("fallback", len(diagnostics.fallbacks))
        self.events.observe("degraded", len(diagnostics.degraded))


class HealthMonitor:
    """Clock-throttled health driver for non-PhaseHook contexts.

    The shard coordinator feeds :meth:`barrier_wait` /
    :meth:`resource_sample` inline and calls :meth:`tick` from its
    barrier loop; ``repro sweep`` instead calls :meth:`start` to tick
    from a daemon thread while the supervisor blocks. Both paths end
    with :meth:`finish`, which forces a final evaluation so
    no-longer-true conditions resolve before the summary is recorded.
    """

    def __init__(
        self,
        manager: AlertManager,
        straggler: Optional[StragglerDetector] = None,
        event_monitor: Optional[EventMonitor] = None,
        resources: Optional[ResourceSampler] = None,
        metrics=None,
        interval: float = DEFAULT_EVAL_INTERVAL,
    ) -> None:
        self.manager = manager
        self.straggler = (
            straggler if straggler is not None else StragglerDetector()
        )
        self.events = (
            event_monitor if event_monitor is not None else EventMonitor()
        )
        self.resources = (
            resources if resources is not None else ResourceSampler()
        )
        self.metrics = metrics
        self.interval = interval
        self._lock = threading.Lock()
        self._last_eval = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- inputs ------------------------------------------------------------

    def barrier_wait(self, shard, wait_seconds: float) -> None:
        with self._lock:
            self.straggler.observe(shard, wait_seconds)
        if wait_seconds > self.straggler.min_seconds:
            # A wait this long is already alert-worthy, and barrier
            # epochs can complete in milliseconds — waiting for the
            # next throttled tick could let the peak age out of the
            # detector's window before any rule ever sees it. Healthy
            # waits never cross the floor, so the hot path is safe.
            self.tick(force=True)

    def resource_sample(self, shard, sample: dict) -> None:
        with self._lock:
            self.straggler.attribute(shard, sample)

    def event_total(self, kind: str, total: int) -> None:
        with self._lock:
            self.events.observe(kind, total)

    # -- evaluation --------------------------------------------------------

    def tick(self, force: bool = False) -> None:
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_eval < self.interval:
                return
            self._last_eval = now
            signals = self.straggler.signals() + self.events.signals()
        if self.metrics is not None:
            self.resources.publish(self.metrics)
        self.manager.evaluate(now, signals, metrics=self.metrics)

    def finish(self) -> None:
        """Stop any background thread and run one final evaluation."""
        self.stop()
        self.tick(force=True)

    # -- background driving (repro sweep) ----------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.tick(force=True)

        self._thread = threading.Thread(
            target=loop, name="repro-health", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
