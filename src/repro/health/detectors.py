"""Streaming anomaly detectors over the live run's signal streams.

Each detector consumes one stream the simulation already produces —
per-population spike rates, fixed-point saturation tallies, per-shard
barrier waits, reliability events — and classifies the current state
into zero or more :class:`HealthSignal` records. Detectors hold only
bounded state (EWMA scalars, small deques), never raise on odd input,
and do no I/O: the alert rules engine (:mod:`repro.health.alerts`)
decides what a signal *means*; detectors only say what they *see*.

Observation is cheap (a few float updates per call) but still happens
at the throttled evaluation cadence, not in the hot loop — the
:class:`~repro.health.alerts.HealthHook` follows ``ServeHook``'s
discipline and only feeds detectors once per publish interval.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

__all__ = [
    "EventMonitor",
    "EwmaBaseline",
    "HealthSignal",
    "SaturationDetector",
    "SpikeRateDetector",
    "StragglerDetector",
]


@dataclass(frozen=True)
class HealthSignal:
    """One detector's current finding about one subject."""

    #: Detector family, e.g. ``"spike-rate"`` — what rules select on.
    detector: str
    #: What the finding is about (population, ``shard3``, event kind).
    subject: str
    #: Classification within the family (``silent``, ``exploding``,
    #: ``drifting``, ``saturation-growth``, ``straggler``, ...).
    kind: str
    #: The observed value the classification was made on.
    value: float
    #: The threshold it was compared against (0.0 when not threshold-based).
    threshold: float
    #: Human-readable one-liner for /alerts, SSE, and ``repro top``.
    message: str

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "subject": self.subject,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


class EwmaBaseline:
    """Exponentially-weighted mean/variance of a scalar stream.

    The standard streaming baseline: ``mean`` tracks the recent level,
    ``std`` the recent spread, and :meth:`zscore` measures how far a
    new observation sits from both. ``alpha`` is the usual smoothing
    factor (higher = faster to adapt, quicker to forgive anomalies).
    """

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = alpha
        self.mean = 0.0
        self.variance = 0.0
        self.samples = 0

    def update(self, value: float) -> None:
        self.samples += 1
        if self.samples == 1:
            self.mean = value
            self.variance = 0.0
            return
        delta = value - self.mean
        self.mean += self.alpha * delta
        # Exponentially-weighted variance (West 1979 form).
        self.variance = (1.0 - self.alpha) * (
            self.variance + self.alpha * delta * delta
        )

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def zscore(self, value: float) -> float:
        """Distance of ``value`` from the baseline, in baseline stds.

        A dead-flat baseline (std 0) uses a small floor proportional
        to the mean so a genuinely changed level still registers
        rather than dividing by zero.
        """
        floor = max(1e-9, 0.05 * abs(self.mean))
        return (value - self.mean) / max(self.std, floor)


class SpikeRateDetector:
    """Windowed per-population firing-rate monitor.

    Fed one mean rate (Hz per neuron over the publish window) per
    population per evaluation. Classifies against a trailing EWMA
    baseline:

    * ``silent`` — the population stopped firing while its baseline
      says it used to fire;
    * ``exploding`` — the rate jumped past ``explode_ratio`` times the
      baseline (and past ``min_rate_hz``, so a near-silent population
      waking up is not an explosion);
    * ``drifting`` — the rate's z-score against the EWMA baseline
      exceeds ``z_threshold`` without qualifying as either above.

    The first ``warmup`` observations per population only train the
    baseline — start-up transients never alert.
    """

    name = "spike-rate"

    def __init__(
        self,
        z_threshold: float = 4.0,
        explode_ratio: float = 5.0,
        min_rate_hz: float = 0.5,
        warmup: int = 4,
        alpha: float = 0.2,
    ) -> None:
        self.z_threshold = z_threshold
        self.explode_ratio = explode_ratio
        self.min_rate_hz = min_rate_hz
        self.warmup = warmup
        self.alpha = alpha
        self._baselines: Dict[str, EwmaBaseline] = {}
        self._signals: Dict[str, HealthSignal] = {}

    def observe(self, population: str, rate_hz: float) -> None:
        baseline = self._baselines.get(population)
        if baseline is None:
            baseline = EwmaBaseline(self.alpha)
            self._baselines[population] = baseline
        if baseline.samples < self.warmup:
            baseline.update(rate_hz)
            self._signals.pop(population, None)
            return
        signal = self._classify(population, rate_hz, baseline)
        if signal is None:
            self._signals.pop(population, None)
            # Only healthy observations train the baseline — an
            # anomaly must not drag the reference toward itself.
            baseline.update(rate_hz)
        else:
            self._signals[population] = signal

    def _classify(self, population, rate_hz, baseline):
        mean = baseline.mean
        if rate_hz <= 0.0 and mean >= self.min_rate_hz:
            return HealthSignal(
                self.name, population, "silent", rate_hz, self.min_rate_hz,
                f"population {population!r} went silent "
                f"(baseline {mean:.2f} Hz)",
            )
        if (
            rate_hz >= self.min_rate_hz
            and mean > 0.0
            and rate_hz > self.explode_ratio * mean
        ):
            return HealthSignal(
                self.name, population, "exploding", rate_hz,
                self.explode_ratio * mean,
                f"population {population!r} exploding: {rate_hz:.2f} Hz "
                f"vs baseline {mean:.2f} Hz",
            )
        z = baseline.zscore(rate_hz)
        if abs(z) > self.z_threshold:
            return HealthSignal(
                self.name, population, "drifting", rate_hz, self.z_threshold,
                f"population {population!r} drifting: {rate_hz:.2f} Hz is "
                f"{z:+.1f} sigma from baseline {mean:.2f} Hz",
            )
        return None

    def signals(self) -> List[HealthSignal]:
        return [self._signals[key] for key in sorted(self._signals)]


class SaturationDetector:
    """Fixed-point saturation *growth* monitor.

    Fed each population's cumulative clip tally (from
    :class:`~repro.fixedpoint.SaturationStats`) per evaluation; signals
    while clips grew since the previous evaluation by more than
    ``growth_threshold``. A population that clipped once during
    warm-up and then stabilised stops signalling — it is runaway
    growth, not history, that indicates a run going numerically bad.
    """

    name = "saturation"

    def __init__(self, growth_threshold: int = 0) -> None:
        self.growth_threshold = growth_threshold
        self._last: Dict[str, int] = {}
        self._signals: Dict[str, HealthSignal] = {}

    def observe(self, population: str, total_clipped: int) -> None:
        previous = self._last.get(population, 0)
        self._last[population] = total_clipped
        growth = total_clipped - previous
        if growth > self.growth_threshold:
            self._signals[population] = HealthSignal(
                self.name, population, "saturation-growth",
                float(growth), float(self.growth_threshold),
                f"population {population!r} clipped {growth} value(s) "
                f"since the last check ({total_clipped} total)",
            )
        else:
            self._signals.pop(population, None)

    def signals(self) -> List[HealthSignal]:
        return [self._signals[key] for key in sorted(self._signals)]


class StragglerDetector:
    """Barrier-skew monitor over per-shard barrier wait samples.

    Fed every ``shard_barrier_wait_seconds`` observation the shard
    coordinator makes. A shard signals as a straggler while the *peak*
    wait in its recent window exceeds both ``min_seconds`` (an
    absolute floor, so microsecond jitter between fast shards never
    alerts) and ``skew_ratio`` times the median of its *peers'* peaks
    (a relative test, so a uniformly slow network does not blame one
    shard). The peak ages out of the bounded window, so a recovered
    shard resolves after ``window`` healthy epochs.

    Resource samples shipped from the workers (:meth:`attribute`)
    annotate the signal, turning "shard 1 is slow" into "shard 1 is
    slow and its RSS doubled".
    """

    name = "straggler"

    def __init__(
        self,
        skew_ratio: float = 4.0,
        min_seconds: float = 0.5,
        window: int = 8,
    ) -> None:
        self.skew_ratio = skew_ratio
        self.min_seconds = min_seconds
        self.window = window
        self._waits: Dict[str, Deque[float]] = {}
        self._resources: Dict[str, dict] = {}

    def observe(self, shard, wait_seconds: float) -> None:
        key = str(shard)
        waits = self._waits.get(key)
        if waits is None:
            waits = deque(maxlen=self.window)
            self._waits[key] = waits
        waits.append(wait_seconds)

    def attribute(self, shard, sample: dict) -> None:
        """Attach the latest resource sample for skew attribution."""
        self._resources[str(shard)] = dict(sample)

    def signals(self) -> List[HealthSignal]:
        peaks = {
            key: max(waits) for key, waits in self._waits.items() if waits
        }
        out: List[HealthSignal] = []
        for key in sorted(peaks):
            peak = peaks[key]
            peers = sorted(peaks[k] for k in peaks if k != key)
            peer_median = peers[(len(peers) - 1) // 2] if peers else 0.0
            threshold = max(self.min_seconds, self.skew_ratio * peer_median)
            if peak <= threshold:
                continue
            message = (
                f"shard {key} straggling: peak barrier wait {peak:.2f}s "
                f"vs peer median {peer_median:.3f}s"
            )
            resources = self._resources.get(key)
            if resources and resources.get("rss_bytes"):
                message += (
                    f" (rss {resources['rss_bytes'] / 1e6:.0f} MB, "
                    f"cpu {resources.get('cpu_seconds', 0.0):.1f}s)"
                )
            out.append(
                HealthSignal(
                    self.name, f"shard{key}", "straggler",
                    peak, threshold, message,
                )
            )
        return out


class EventMonitor:
    """Reliability-event monitor: fallbacks, degradations, hook errors.

    Fed cumulative counts per evaluation; signals while the count grew
    within the last ``linger`` evaluations, so a discrete event stays
    visible long enough for a ``for_seconds`` alert rule to latch it,
    then clears.
    """

    name = "events"

    def __init__(self, linger: int = 4) -> None:
        self.linger = linger
        self._last: Dict[str, int] = {}
        self._fresh: Dict[str, int] = {}
        self._totals: Dict[str, int] = {}

    def observe(self, kind: str, total: int) -> None:
        previous = self._last.get(kind, 0)
        self._last[kind] = total
        self._totals[kind] = total
        if total > previous:
            self._fresh[kind] = self.linger
        elif kind in self._fresh:
            self._fresh[kind] -= 1
            if self._fresh[kind] <= 0:
                del self._fresh[kind]

    def signals(self) -> List[HealthSignal]:
        out: List[HealthSignal] = []
        for kind in sorted(self._fresh):
            total = self._totals.get(kind, 0)
            out.append(
                HealthSignal(
                    self.name, kind, kind, float(total), 0.0,
                    f"{total} {kind} event(s) observed",
                )
            )
        return out
