"""Per-process resource telemetry: RSS, CPU time, open FDs.

Stdlib-only, by the same rule as the rest of the observability plane:
``/proc/self/statm`` supplies the resident set size on Linux,
:func:`resource.getrusage` supplies cumulative CPU time (and the RSS
high-water mark as a fallback where ``/proc`` is absent), and
``/proc/self/fd`` supplies the open-descriptor count where it exists.
Every read degrades gracefully — a platform without a source reports
``0.0`` / ``None`` for that field rather than raising — so the sampler
is safe to run unconditionally on any POSIX-ish host.

The same sampler serves three consumers:

* the main process publishes the standard ``process_*`` families on
  its own ``/metrics`` exposition (:func:`declare_process_metrics`
  pins the names, types, and help strings — the golden exposition
  test locks them byte-for-byte);
* supervision and sharding workers attach ``rss_bytes`` /
  ``cpu_seconds`` to their heartbeat messages, so the parent exposes
  per-job / per-shard gauges without a second wire protocol;
* the health layer's straggler detector uses the shipped samples to
  *attribute* barrier skew (a slow shard that is also swapping looks
  different from one starved of CPU).
"""

from __future__ import annotations

import os
import time
from typing import Optional, Tuple

__all__ = [
    "ResourceSampler",
    "declare_process_metrics",
    "read_cpu_seconds",
    "read_open_fds",
    "read_rss_bytes",
]

#: Pinned family names (the Prometheus standard process metrics).
PROCESS_RSS = "process_resident_memory_bytes"
PROCESS_CPU = "process_cpu_seconds_total"
PROCESS_FDS = "process_open_fds"

_HELP_RSS = "Resident set size of this process in bytes."
_HELP_CPU = "Total user and system CPU time spent by this process."
_HELP_FDS = "Open file descriptors held by this process."


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        return 4096


def read_rss_bytes() -> float:
    """Current resident set size in bytes (0.0 when unreadable).

    Prefers ``/proc/self/statm`` (instantaneous, Linux); falls back to
    ``getrusage``'s high-water mark elsewhere (monotone, so still a
    usable memory-pressure signal, just not a live one).
    """
    try:
        with open("/proc/self/statm", "rb") as statm:
            fields = statm.read().split()
        return float(int(fields[1]) * _page_size())
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is kilobytes on Linux, bytes on macOS; both are a
        # sane order of magnitude for an alert threshold, and the
        # /proc path above covers Linux anyway.
        return float(usage.ru_maxrss) * 1024.0
    except Exception:
        return 0.0


def read_cpu_seconds() -> float:
    """Cumulative user+system CPU seconds (0.0 when unreadable)."""
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        return float(usage.ru_utime + usage.ru_stime)
    except Exception:
        try:
            return float(time.process_time())
        except Exception:
            return 0.0


def read_open_fds() -> Optional[int]:
    """Open descriptor count, or ``None`` where /proc is absent."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def declare_process_metrics(metrics) -> Tuple[object, object, object]:
    """Register the ``process_*`` families; returns (rss, cpu, fds).

    One declaration path shared by the live sampler and the golden
    exposition test, so the pinned names/help/types can never drift
    from what a running plane actually exposes.
    """
    rss = metrics.gauge(PROCESS_RSS, _HELP_RSS)
    cpu = metrics.counter(PROCESS_CPU, _HELP_CPU)
    fds = metrics.gauge(PROCESS_FDS, _HELP_FDS)
    return rss, cpu, fds


class ResourceSampler:
    """Samples this process's resource usage and publishes it.

    ``sample()`` returns a plain dict (what workers attach to their
    heartbeat messages); ``publish(metrics)`` additionally lands the
    values on the pinned ``process_*`` families. CPU seconds are
    published with ``set_total`` and clamped monotone, so a registry
    scraped mid-``getrusage``-glitch never sees a counter go down.
    """

    def __init__(self) -> None:
        self._cpu_floor = 0.0

    def sample(self) -> dict:
        cpu = max(self._cpu_floor, read_cpu_seconds())
        self._cpu_floor = cpu
        return {
            "rss_bytes": read_rss_bytes(),
            "cpu_seconds": cpu,
            "open_fds": read_open_fds(),
        }

    def publish(self, metrics) -> dict:
        """Sample and publish onto ``metrics``; returns the sample."""
        values = self.sample()
        rss, cpu, fds = declare_process_metrics(metrics)
        rss.set(values["rss_bytes"])
        cpu.set_total(values["cpu_seconds"])
        if values["open_fds"] is not None:
            fds.set(values["open_fds"])
        return values
